"""The 11 NoBench queries plus the paper's added random-update task,
expressed for each of the four benchmarked systems (paper section 6).

Query inventory (NoBench / Argo, WebDB 2013):

====  =====================================================================
Q1    project two dense top-level keys (``str1``, ``num``)
Q2    project two nested keys (``nested_obj.str``, ``nested_obj.num``)
Q3    project two co-occurring sparse keys (same cluster)
Q4    project two non-co-occurring sparse keys (different clusters)
Q5    equality selection on ``str1`` (point lookup)
Q6    numeric range on ``num`` (~0.1% selectivity)
Q7    numeric range on the dynamically typed ``dyn1``
Q8    array containment: term = ANY(``nested_arr``)
Q9    equality on a sparse key
Q10   COUNT(*) GROUP BY ``thousandth`` over a ~10% ``num`` range
Q11   self-join: ``left.nested_obj.str = right.str1`` with a selective
      filter on the left side
UPD   ``UPDATE ... SET sparse_588 = 'DUMMY' WHERE sparse_589 = <value>``
      (paper section 6.6, ~1/10000 selectivity)
====  =====================================================================

Every adapter exposes ``run(query_id) -> int`` (result row count) so the
harness can time identical logical work across systems and verify result
cardinalities agree.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from ..baselines.eav import EavStore
from ..baselines.mongo import MongoDatabase, client_side_join
from ..baselines.pgjson import PgJsonStore
from ..core.sinew import SinewConfig, SinewDB
from ..rdbms.database import DatabaseConfig
from .generator import NoBenchParams

QUERY_IDS = ["q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8", "q9", "q10", "q11"]
TABLE = "nobench_main"


class NoBenchAdapter:
    """Common interface every benchmarked system implements."""

    name: str

    def load(self, documents: Iterable[Mapping[str, Any]]) -> None:
        raise NotImplementedError

    def prepare(self) -> None:
        """Post-load settling (schema analysis, statistics)."""

    def storage_bytes(self) -> int:
        raise NotImplementedError

    def run(self, query_id: str) -> int:
        """Execute one query; returns the number of result rows."""
        return getattr(self, query_id)()

    def update(self) -> int:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Sinew
# ---------------------------------------------------------------------------


class SinewNoBench(NoBenchAdapter):
    """Sinew with the paper's materialization policy (section 6.1)."""

    name = "Sinew"

    def __init__(self, params: NoBenchParams, config: SinewConfig | None = None):
        self.params = params
        self.sdb = SinewDB("sinew_nobench", config)
        self.sdb.create_collection(TABLE)

    def load(self, documents: Iterable[Mapping[str, Any]]) -> None:
        self.sdb.load(TABLE, documents)

    def prepare(self) -> None:
        self.sdb.settle(TABLE)

    def storage_bytes(self) -> int:
        return self.sdb.storage_bytes(TABLE)

    def materialized_keys(self) -> list[str]:
        return sorted(
            key for key, _type, storage in self.sdb.logical_schema(TABLE)
            if storage in ("physical", "dirty")
        )

    def _count(self, sql: str) -> int:
        return len(self.sdb.query(sql))

    def sql_for(self, query_id: str) -> str:
        """The exact SQL a NoBench query id runs.

        Exposed so harnesses (the bench gate in particular) can re-run a
        query through ``sdb.query`` and collect its ``exec_stats`` without
        duplicating the statement text here.
        """
        p = self.params
        statements = {
            "q1": f"SELECT str1, num FROM {TABLE}",
            "q2": f'SELECT "nested_obj.str", "nested_obj.num" FROM {TABLE}',
            "q3": f"SELECT {p.q3_key_a}, {p.q3_key_b} FROM {TABLE}",
            "q4": f"SELECT {p.q4_key_a}, {p.q4_key_b} FROM {TABLE}",
            "q5": f"SELECT * FROM {TABLE} WHERE str1 = '{p.q5_str1}'",
            "q6": (
                f"SELECT * FROM {TABLE} "
                f"WHERE num BETWEEN {p.q6_low} AND {p.q6_high}"
            ),
            "q7": (
                f"SELECT * FROM {TABLE} "
                f"WHERE dyn1 BETWEEN {p.q7_low} AND {p.q7_high}"
            ),
            "q8": f"SELECT * FROM {TABLE} WHERE '{p.q8_term}' = ANY(nested_arr)",
            "q9": f"SELECT * FROM {TABLE} WHERE {p.q9_key} = '{p.q9_value}'",
            "q10": (
                f"SELECT thousandth, count(*) FROM {TABLE} "
                f"WHERE num BETWEEN {p.q10_low} AND {p.q10_high} "
                f"GROUP BY thousandth"
            ),
            "q11": (
                f"SELECT * FROM {TABLE} l, {TABLE} r "
                f'WHERE l."nested_obj.str" = r.str1 '
                f"AND l.num BETWEEN {p.q11_low} AND {p.q11_high}"
            ),
        }
        return statements[query_id]

    def q1(self) -> int:
        return self._count(self.sql_for("q1"))

    def q2(self) -> int:
        return self._count(self.sql_for("q2"))

    def q3(self) -> int:
        return self._count(self.sql_for("q3"))

    def q4(self) -> int:
        return self._count(self.sql_for("q4"))

    def q5(self) -> int:
        return self._count(self.sql_for("q5"))

    def q6(self) -> int:
        return self._count(self.sql_for("q6"))

    def q7(self) -> int:
        return self._count(self.sql_for("q7"))

    def q8(self) -> int:
        return self._count(self.sql_for("q8"))

    def q9(self) -> int:
        return self._count(self.sql_for("q9"))

    def q10(self) -> int:
        return self._count(self.sql_for("q10"))

    def q11(self) -> int:
        return self._count(self.sql_for("q11"))

    def update(self) -> int:
        p = self.params
        result = self.sdb.execute(
            f"UPDATE {TABLE} SET {p.update_set_key} = 'DUMMY' "
            f"WHERE {p.update_where_key} = '{p.update_where_value}'"
        )
        return result.rowcount


# ---------------------------------------------------------------------------
# MongoDB
# ---------------------------------------------------------------------------


class MongoNoBench(NoBenchAdapter):
    """The MongoDB-like document store."""

    name = "MongoDB"

    def __init__(self, params: NoBenchParams, disk_budget_bytes: int | None = None):
        self.params = params
        self.client = MongoDatabase("mongo_nobench", disk_budget_bytes)
        self.collection = self.client.collection(TABLE)

    def load(self, documents: Iterable[Mapping[str, Any]]) -> None:
        self.collection.insert_many(documents)

    def storage_bytes(self) -> int:
        return self.collection.total_bytes

    def q1(self) -> int:
        return len(self.collection.find({}, ["str1", "num"]))

    def q2(self) -> int:
        return len(self.collection.find({}, ["nested_obj.str", "nested_obj.num"]))

    def q3(self) -> int:
        p = self.params
        return len(self.collection.find({}, [p.q3_key_a, p.q3_key_b]))

    def q4(self) -> int:
        p = self.params
        return len(self.collection.find({}, [p.q4_key_a, p.q4_key_b]))

    def q5(self) -> int:
        return len(self.collection.find({"str1": self.params.q5_str1}))

    def q6(self) -> int:
        p = self.params
        return len(
            self.collection.find({"num": {"$gte": p.q6_low, "$lte": p.q6_high}})
        )

    def q7(self) -> int:
        p = self.params
        return len(
            self.collection.find({"dyn1": {"$gte": p.q7_low, "$lte": p.q7_high}})
        )

    def q8(self) -> int:
        # Mongo array semantics: equality matches any element.
        return len(self.collection.find({"nested_arr": self.params.q8_term}))

    def q9(self) -> int:
        p = self.params
        return len(self.collection.find({p.q9_key: p.q9_value}))

    def q10(self) -> int:
        p = self.params
        return len(
            self.collection.aggregate(
                [
                    {"$match": {"num": {"$gte": p.q10_low, "$lte": p.q10_high}}},
                    {"$group": {"_id": "$thousandth", "count": {"$sum": 1}}},
                ]
            )
        )

    def q11(self) -> int:
        p = self.params
        output = client_side_join(
            self.client,
            left=self.collection,
            right=self.collection,
            left_key="nested_obj.str",
            right_key="str1",
            left_filter={"num": {"$gte": p.q11_low, "$lte": p.q11_high}},
        )
        joined = len(output)
        self.client.drop_collection("_join_out")
        self.client.drop_collection("_join_out_left")
        self.client.drop_collection("_join_out_right")
        return joined

    def update(self) -> int:
        p = self.params
        return self.collection.update_many(
            {p.update_where_key: p.update_where_value},
            {"$set": {p.update_set_key: "DUMMY"}},
        )


# ---------------------------------------------------------------------------
# EAV
# ---------------------------------------------------------------------------


class EavNoBench(NoBenchAdapter):
    """The entity-attribute-value shredding system."""

    name = "EAV"

    def __init__(self, params: NoBenchParams, config: DatabaseConfig | None = None):
        self.params = params
        self.store = EavStore("eav_nobench", config)
        self.store.create_collection(TABLE)

    def load(self, documents: Iterable[Mapping[str, Any]]) -> None:
        self.store.load(TABLE, documents)

    def prepare(self) -> None:
        self.store.analyze(TABLE)

    def storage_bytes(self) -> int:
        return self.store.storage_bytes(TABLE)

    def q1(self) -> int:
        return len(self.store.project(TABLE, ["str1", "num"]))

    def q2(self) -> int:
        return len(self.store.project(TABLE, ["nested_obj.str", "nested_obj.num"]))

    def _sparse_projection(self, key_a: str, key_b: str) -> int:
        """Sparse projections pivot in the mapping layer (an inner join
        would drop objects having only one of the keys)."""
        relation = f"{TABLE}_eav"
        result = self.store.db.execute(
            f"SELECT oid, key_name, str_val FROM {relation} "
            f"WHERE key_name IN ('{key_a}', '{key_b}')"
        )
        objects: dict[int, dict[str, str]] = {}
        for oid, key_name, str_val in result.rows:
            objects.setdefault(oid, {})[key_name] = str_val
        return len(objects)

    def q3(self) -> int:
        return self._sparse_projection(self.params.q3_key_a, self.params.q3_key_b)

    def q4(self) -> int:
        return self._sparse_projection(self.params.q4_key_a, self.params.q4_key_b)

    def _selected_objects(self, key: str, predicate_sql: str) -> int:
        result = self.store.select_objects(TABLE, key, predicate_sql)
        return len(self.store.reconstruct(result.rows))

    def q5(self) -> int:
        return self._selected_objects("str1", f"b.str_val = '{self.params.q5_str1}'")

    def q6(self) -> int:
        p = self.params
        return self._selected_objects(
            "num", f"b.num_val BETWEEN {p.q6_low} AND {p.q6_high}"
        )

    def q7(self) -> int:
        p = self.params
        return self._selected_objects(
            "dyn1", f"b.num_val BETWEEN {p.q7_low} AND {p.q7_high}"
        )

    def q8(self) -> int:
        return self._selected_objects(
            "nested_arr", f"b.str_val = '{self.params.q8_term}'"
        )

    def q9(self) -> int:
        p = self.params
        return self._selected_objects(p.q9_key, f"b.str_val = '{p.q9_value}'")

    def q10(self) -> int:
        p = self.params
        relation = f"{TABLE}_eav"
        result = self.store.db.execute(
            f"SELECT g.num_val, count(*) FROM {relation} n, {relation} g "
            f"WHERE n.oid = g.oid AND n.key_name = 'num' "
            f"AND g.key_name = 'thousandth' "
            f"AND n.num_val BETWEEN {p.q10_low} AND {p.q10_high} "
            f"GROUP BY g.num_val"
        )
        return len(result)

    def q11(self) -> int:
        p = self.params
        result = self.store.join(
            TABLE,
            left_key="nested_obj.str",
            right_key="str1",
            left_predicate_sql=(
                f"f.key_name = 'num' AND f.num_val BETWEEN {p.q11_low} AND {p.q11_high}"
            ),
            projected_key="str1",
        )
        return len(result)

    def update(self) -> int:
        p = self.params
        return self.store.update(
            TABLE,
            set_key=p.update_set_key,
            set_value="DUMMY",
            where_key=p.update_where_key,
            where_value=p.update_where_value,
        )


# ---------------------------------------------------------------------------
# Postgres JSON
# ---------------------------------------------------------------------------


class PgJsonNoBench(NoBenchAdapter):
    """JSON text in a column; every access re-parses (section 6.1)."""

    name = "PG JSON"

    def __init__(self, params: NoBenchParams, config: DatabaseConfig | None = None):
        self.params = params
        self.store = PgJsonStore("pgjson_nobench", config)
        self.store.create_collection(TABLE)

    def load(self, documents: Iterable[Mapping[str, Any]]) -> None:
        self.store.load(TABLE, documents)

    def prepare(self) -> None:
        self.store.analyze(TABLE)

    def storage_bytes(self) -> int:
        return self.store.storage_bytes(TABLE)

    def _count(self, sql: str) -> int:
        return len(self.store.query(sql))

    def q1(self) -> int:
        return self._count(
            f"SELECT json_get_text(data, 'str1'), json_get_num(data, 'num') FROM {TABLE}"
        )

    def q2(self) -> int:
        return self._count(
            f"SELECT json_get_text(data, 'nested_obj.str'), "
            f"json_get_num(data, 'nested_obj.num') FROM {TABLE}"
        )

    def q3(self) -> int:
        p = self.params
        return self._count(
            f"SELECT json_get_text(data, '{p.q3_key_a}'), "
            f"json_get_text(data, '{p.q3_key_b}') FROM {TABLE}"
        )

    def q4(self) -> int:
        p = self.params
        return self._count(
            f"SELECT json_get_text(data, '{p.q4_key_a}'), "
            f"json_get_text(data, '{p.q4_key_b}') FROM {TABLE}"
        )

    def q5(self) -> int:
        return self._count(
            f"SELECT * FROM {TABLE} "
            f"WHERE json_get_text(data, 'str1') = '{self.params.q5_str1}'"
        )

    def q6(self) -> int:
        p = self.params
        return self._count(
            f"SELECT * FROM {TABLE} "
            f"WHERE json_get_num(data, 'num') BETWEEN {p.q6_low} AND {p.q6_high}"
        )

    def q7(self) -> int:
        """Q7 raises TypeCastError: dyn1 maps to values of multiple types
        and Postgres's cast aborts on the first string (section 6.4)."""
        p = self.params
        return self._count(
            f"SELECT * FROM {TABLE} "
            f"WHERE json_get_num(data, 'dyn1') BETWEEN {p.q7_low} AND {p.q7_high}"
        )

    def q8(self) -> int:
        """Array containment is inexpressible; the paper used an
        approximate (technically incorrect) LIKE over the array text."""
        return self._count(
            f"SELECT * FROM {TABLE} "
            f"WHERE json_get_text(data, 'nested_arr') LIKE '%{self.params.q8_term}%'"
        )

    def q9(self) -> int:
        p = self.params
        return self._count(
            f"SELECT * FROM {TABLE} "
            f"WHERE json_get_text(data, '{p.q9_key}') = '{p.q9_value}'"
        )

    def q10(self) -> int:
        p = self.params
        return self._count(
            f"SELECT json_get_num(data, 'thousandth'), count(*) FROM {TABLE} "
            f"WHERE json_get_num(data, 'num') BETWEEN {p.q10_low} AND {p.q10_high} "
            f"GROUP BY json_get_num(data, 'thousandth')"
        )

    def q11(self) -> int:
        p = self.params
        return self._count(
            f"SELECT l.id, r.id FROM {TABLE} l, {TABLE} r "
            f"WHERE json_get_text(l.data, 'nested_obj.str') = "
            f"json_get_text(r.data, 'str1') "
            f"AND json_get_num(l.data, 'num') BETWEEN {p.q11_low} AND {p.q11_high}"
        )

    def update(self) -> int:
        """Updates decode + re-encode the whole JSON text per matched row."""
        import json as json_module

        p = self.params
        table = self.store.db.table(TABLE)
        data_position = table.schema.position_of("data")
        updated = 0
        with self.store.db.txn_manager.autocommit() as txn:
            matches = []
            for rid, row in table.scan():
                document = json_module.loads(row[data_position])
                if document.get(p.update_where_key) == p.update_where_value:
                    matches.append((rid, row, document))
            for rid, row, document in matches:
                document[p.update_set_key] = "DUMMY"
                new_row = list(row)
                new_row[data_position] = json_module.dumps(
                    document, separators=(",", ":")
                )
                old = table.update(rid, tuple(new_row))
                txn.log_update(
                    TABLE,
                    rid,
                    table.tuple_bytes(tuple(new_row)),
                    undo=lambda rid=rid, old=old: table.update(rid, old),
                )
                updated += 1
        return updated
