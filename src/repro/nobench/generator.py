"""The NoBench data generator (Chasseur, Li & Patel, WebDB 2013).

The paper runs all experiments on NoBench data: "Each record has
approximately fifteen keys, ten of which are randomly selected from a pool
of 1000 possible keys, and the remainder of which are either a string,
integer, boolean, nested array, or nested document.  Two dynamically typed
columns, dyn1 and dyn2, take either a string, integer, or boolean value"
(paper section 6).

Record layout generated here (record ``i`` of ``n``):

==============  ==========================================================
``str1``        unique base32-encoded string (cardinality = n)
``str2``        base32 string from a pool of 1000 (low cardinality)
``num``         pseudo-random permutation of [0, n) (dense, unique)
``bool``        alternating true/false (cardinality 2)
``dyn1``        int / string / bool, split ~ evenly by record
``dyn2``        string-dominant dynamic type
``nested_obj``  ``{"str": <some record's str1>, "num": <int>}``
``nested_arr``  5 strings drawn from a 100-term pool
``thousandth``  ``num % 1000`` (cardinality 1000)
``sparse_XXX``  10 keys from one of 100 clusters of the 1000-key pool,
                each key therefore ~1% dense; values are base32 strings
                from a pool of 100
==============  ==========================================================

Under the paper's materialization policy (density >= 60% and cardinality
> 200) exactly ``str1``, ``num``, ``nested_arr``, ``nested_obj`` and
``thousandth`` qualify, matching section 6.1.

Everything is deterministic in (seed, n) so every benchmarked system loads
byte-identical documents and query parameters are reproducible.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass
from typing import Any, Iterator

#: Sparse-key pool: sparse_000 .. sparse_999, in 100 clusters of 10.
SPARSE_POOL = 1000
SPARSE_PER_RECORD = 10
SPARSE_CLUSTERS = SPARSE_POOL // SPARSE_PER_RECORD

#: Distinct values used for sparse attributes and str2.  str2's pool stays
#: below the 200-cardinality materialization threshold so that, as in the
#: paper's evaluation, str2 is NOT materialized despite being dense.
SPARSE_VALUE_POOL = 100
STR2_POOL = 100

#: Term pool for nested_arr elements.
ARRAY_TERM_POOL = 100
ARRAY_LENGTH = 5

_KNUTH = 2654435761  # Knuth multiplicative hash constant


def base32_string(value: int) -> str:
    """NoBench-style base32 value strings (e.g. 'GBRDCMBQGA======')."""
    return base64.b32encode(str(value).encode("ascii")).decode("ascii")


def _mix(seed: int, record: int, salt: int) -> int:
    """Deterministic 64-bit mix for per-record pseudo-randomness."""
    x = (seed * 0x9E3779B97F4A7C15 + record * _KNUTH + salt * 0x517CC1B7) & (
        2**64 - 1
    )
    x ^= x >> 33
    x = (x * 0xFF51AFD7ED558CCD) & (2**64 - 1)
    x ^= x >> 29
    return x


@dataclass
class NoBenchGenerator:
    """Deterministic NoBench document stream."""

    n_records: int
    seed: int = 42

    # ------------------------------------------------------------------
    # record pieces
    # ------------------------------------------------------------------

    def num_of(self, record: int) -> int:
        """A pseudo-random permutation of [0, n)."""
        # multiplicative permutation over the next power of two, rejected
        # into range (cycle walking keeps it a bijection)
        size = 1
        while size < self.n_records:
            size <<= 1
        value = record
        while True:
            value = (value * 0x9E3779B1 + self.seed) % size
            if value < self.n_records:
                return value

    def str1_of(self, record: int) -> str:
        return base32_string(record + 1_000_000)

    def dyn1_of(self, record: int) -> Any:
        mode = _mix(self.seed, record, 1) % 3
        if mode == 0:
            return int(_mix(self.seed, record, 2) % self.n_records)
        if mode == 1:
            return base32_string(_mix(self.seed, record, 3) % self.n_records)
        return bool(_mix(self.seed, record, 4) % 2)

    def dyn2_of(self, record: int) -> Any:
        # string-dominant but below the 60% density threshold per attribute
        # (an attribute is a (key, type) pair), so neither dyn2 attribute is
        # materialized -- matching the paper's policy outcome.
        mode = _mix(self.seed, record, 5) % 7
        if mode < 4:
            return base32_string(_mix(self.seed, record, 6) % STR2_POOL)
        return int(_mix(self.seed, record, 7) % self.n_records)

    def sparse_cluster_of(self, record: int) -> int:
        return _mix(self.seed, record, 8) % SPARSE_CLUSTERS

    def sparse_value_of(self, record: int, key_index: int) -> str:
        """Sparse attribute values.

        Key index 0 of each cluster draws from a pool of 2 values, giving
        Q9 a ~0.5% match rate (large enough that EAV's reconstruction
        exhausts the disk budget at the larger scale, per the paper);
        the other indexes draw from a pool of 100, keeping the update
        task's WHERE on key index 9 at the paper's ~1/10000 selectivity.
        """
        pool = 2 if key_index == 0 else SPARSE_VALUE_POOL
        return base32_string(_mix(self.seed, record, 100 + key_index) % pool)

    def nested_arr_of(self, record: int) -> list[str]:
        return [
            "term_" + base32_string(_mix(self.seed, record, 200 + j) % ARRAY_TERM_POOL)
            for j in range(ARRAY_LENGTH)
        ]

    def record(self, record: int) -> dict[str, Any]:
        """Generate NoBench record ``record`` (0-based)."""
        num = self.num_of(record)
        cluster = self.sparse_cluster_of(record)
        document: dict[str, Any] = {
            "str1": self.str1_of(record),
            "str2": base32_string(_mix(self.seed, record, 9) % STR2_POOL),
            "num": num,
            "bool": record % 2 == 0,
            "dyn1": self.dyn1_of(record),
            "dyn2": self.dyn2_of(record),
            "nested_obj": {
                "str": self.str1_of(_mix(self.seed, record, 10) % self.n_records),
                "num": int(_mix(self.seed, record, 11) % self.n_records),
            },
            "nested_arr": self.nested_arr_of(record),
            "thousandth": num % 1000,
        }
        for key_index in range(SPARSE_PER_RECORD):
            key = f"sparse_{cluster * SPARSE_PER_RECORD + key_index:03d}"
            document[key] = self.sparse_value_of(record, key_index)
        return document

    def documents(self) -> Iterator[dict[str, Any]]:
        for record in range(self.n_records):
            yield self.record(record)

    # ------------------------------------------------------------------
    # deterministic query parameters
    # ------------------------------------------------------------------

    def params(self) -> "NoBenchParams":
        """Query parameters scaled to this dataset (same for all systems)."""
        n = self.n_records
        # Q6: ~0.1% of num values; Q10: ~10%
        q6_low = n // 3
        q6_high = q6_low + max(1, n // 1000) - 1
        q10_low = n // 5
        q10_high = q10_low + max(1, n // 10) - 1
        # Q7: range over dyn1's integer domain (~0.33% of [0, n); only a
        # third of the records carry an integer dyn1, so ~0.1% match)
        q7_low = n // 4
        q7_high = q7_low + max(1, n // 300) - 1
        # Q11: selective num filter on the left side (~0.25%)
        q11_low = n // 2
        q11_high = q11_low + max(1, n // 400) - 1
        # sparse keys: one cluster pair for Q3 (co-occurring), far keys for Q4
        q3_cluster = 11
        sample_record = self._record_in_cluster(58)
        q9_key = f"sparse_{58 * SPARSE_PER_RECORD:03d}"
        q9_value = self.sparse_value_of(sample_record, 0)
        update_record = self._record_in_cluster(58)
        return NoBenchParams(
            q3_key_a=f"sparse_{q3_cluster * SPARSE_PER_RECORD:03d}",
            q3_key_b=f"sparse_{q3_cluster * SPARSE_PER_RECORD + 9:03d}",
            q4_key_a=f"sparse_{22 * SPARSE_PER_RECORD:03d}",
            q4_key_b=f"sparse_{33 * SPARSE_PER_RECORD + 1:03d}",
            q5_str1=self.str1_of(n // 7),
            q6_low=q6_low,
            q6_high=q6_high,
            q7_low=q7_low,
            q7_high=q7_high,
            q8_term=self.nested_arr_of(n // 3)[0],
            q9_key=q9_key,
            q9_value=q9_value,
            q10_low=q10_low,
            q10_high=q10_high,
            q11_low=q11_low,
            q11_high=q11_high,
            update_set_key="sparse_588",
            update_where_key="sparse_589",
            update_where_value=self.sparse_value_of(update_record, 9),
        )

    def _record_in_cluster(self, cluster: int) -> int:
        """The first record whose sparse keys come from ``cluster``."""
        for record in range(self.n_records):
            if self.sparse_cluster_of(record) == cluster:
                return record
        return 0


@dataclass(frozen=True)
class NoBenchParams:
    """Concrete parameters for the 11 queries + the update task."""

    q3_key_a: str
    q3_key_b: str
    q4_key_a: str
    q4_key_b: str
    q5_str1: str
    q6_low: int
    q6_high: int
    q7_low: int
    q7_high: int
    q8_term: str
    q9_key: str
    q9_value: str
    q10_low: int
    q10_high: int
    q11_low: int
    q11_high: int
    update_set_key: str
    update_where_key: str
    update_where_value: str
