"""The NoBench benchmark: generator, query suite, and per-system adapters."""

from .generator import NoBenchGenerator, NoBenchParams, base32_string
from .queries import (
    QUERY_IDS,
    EavNoBench,
    MongoNoBench,
    NoBenchAdapter,
    PgJsonNoBench,
    SinewNoBench,
)

__all__ = [
    "EavNoBench",
    "MongoNoBench",
    "NoBenchAdapter",
    "NoBenchGenerator",
    "NoBenchParams",
    "PgJsonNoBench",
    "QUERY_IDS",
    "SinewNoBench",
    "base32_string",
]
