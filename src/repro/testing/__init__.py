"""Test-support subsystems (fault injection, deterministic schedules).

Production code never imports this package at module load time; the
components hold an optional ``faults`` attribute (duck-typed, default
``None``) that tests populate with a :class:`~repro.testing.faults.FaultInjector`.
"""

from .faults import (  # noqa: F401
    DaemonKilled,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    known_points,
    register_point,
)
