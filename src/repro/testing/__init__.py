"""Test-support subsystems (fault injection, latch tracking, schedules).

Production code never imports this package at module load time; the
components hold an optional ``faults`` attribute (duck-typed, default
``None``) that tests populate with a :class:`~repro.testing.faults.FaultInjector`,
and latch call sites consult the :func:`repro.latching.latch_tracker`
hook, which lazily pulls in :mod:`.latch_tracker` only when tracking is
switched on (``REPRO_DEBUG_LATCHES=1`` or an explicit enable).
"""

from .faults import (  # noqa: F401
    DaemonKilled,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    known_points,
    register_point,
)
from .latch_tracker import (  # noqa: F401
    LatchOrderError,
    LatchOrderTracker,
    disable_latch_tracking,
    enable_latch_tracking,
)
