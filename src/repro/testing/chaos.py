"""Full-stack chaos harness: concurrent retrying clients vs. injected faults.

``run_chaos`` boots a durable :class:`~repro.core.SinewDB` behind a live
:class:`~repro.service.server.SinewService`, points a fleet of retrying
:class:`~repro.service.client.ServiceClient` threads at it, and -- while
they hammer the engine with inserts, transactions, loads, and reads --
drives a seeded random fault schedule through every layer the
:class:`~repro.testing.faults.FaultInjector` can reach: connection kills
at accept/execute/respond, materializer-daemon crashes (restarted by the
supervisor), WAL I/O failures (degraded read-only episodes healed with
the ``recover`` op), and abrupt client kills mid-transaction.

Afterwards it asserts the invariants that make the fault-tolerance story
honest (ISSUE/DESIGN.md section 13):

* **exactly-once writes** -- no ``(tag, seq)`` row appears twice, every
  acknowledged autocommit insert and committed transaction block is
  present, every rolled-back/abandoned/failed block is absent, and every
  indeterminate block is all-or-nothing;
* **serial-replay equality** -- replaying each client's acknowledged
  effects serially into a fresh embedded engine produces exactly the
  surviving chaos rows;
* **zero leaks** -- no sessions, transactions, parked latches, or armed
  fault debris survive the drain;
* **convergence** -- after faults stop, the schema analyzer +
  materializer settle the layout and the integrity checker comes back
  clean.

Every event is captured as a JSONL log (``ChaosReport.events``) so a CI
failure can be replayed: the same ``ChaosConfig.seed`` reproduces the
same client schedules and the same fault plans.

Run standalone::

    python -m repro.testing.chaos --seed 7 --clients 16 --ops 40
"""

from __future__ import annotations

import json
import random
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..core.sinew import SinewConfig, SinewDB
from ..service.client import ServiceClient, ServiceError
from ..service.retry import RetryPolicy
from ..service.server import ServiceConfig, SinewService
from .faults import FaultInjector

#: fault points the random scheduler may arm while clients run.  WAL
#: points are excluded here -- ``wal.io_error`` is driven by the
#: dedicated degraded-episode loop (arming it needs ``exception=OSError``
#: and a recovery step), and raw ``wal.append``/``wal.fsync`` raises
#: deliberately leave transactions frozen for crash-recovery tests,
#: which is the wrong behaviour under a live service.
SERVICE_POINTS = (
    "service.accept",
    "service.execute",
    "service.respond",
)
DAEMON_POINTS = (
    "daemon.before_step",
    "daemon.after_step",
    "materializer.before_step",
    "materializer.before_row_move",
    "materializer.after_row_move",
    "materializer.before_clear_dirty",
)
CHECKPOINT_POINTS = (
    "checkpoint.pages",
    "checkpoint.catalog",
    "checkpoint.truncate",
)


@dataclass
class ChaosConfig:
    """One chaos run, fully determined by ``seed``."""

    seed: int = 0
    clients: int = 16
    #: operations each client attempts (a txn block counts as one)
    ops_per_client: int = 24
    #: probability an op is a BEGIN/.../COMMIT-or-ROLLBACK block
    txn_probability: float = 0.3
    #: probability a client abruptly drops its socket mid-transaction
    kill_probability: float = 0.15
    #: random service/daemon/checkpoint faults armed per scheduler pass
    fault_rounds: int = 10
    #: WAL-I/O degraded episodes (each healed with the recover op)
    degraded_episodes: int = 1
    query_timeout: float = 15.0
    drain_timeout: float = 5.0
    #: where the durable database lives (None = fresh temp dir)
    path: str | None = None
    #: write the JSONL event log here (None = keep in memory only)
    log_path: str | None = None


@dataclass
class ChaosReport:
    """Outcome + evidence of one chaos run."""

    seed: int = 0
    ok: bool = False
    duration: float = 0.0
    ops: int = 0
    acked: int = 0
    failed: int = 0
    unknown: int = 0
    retries: int = 0
    replays: int = 0
    reconnects: int = 0
    client_kills: int = 0
    faults_armed: int = 0
    faults_fired: int = 0
    degraded_episodes: int = 0
    degraded_errors: int = 0
    recover_attempts: int = 0
    daemon_restarts: int = 0
    rows_final: int = 0
    leaked_sessions: int = 0
    leaked_txns: int = 0
    settle_rounds: int = 0
    check_findings: int = 0
    failures: list[str] = field(default_factory=list)
    events: list[dict[str, Any]] = field(default_factory=list)

    def to_json(self) -> str:
        payload = {k: v for k, v in self.__dict__.items() if k != "events"}
        return json.dumps(payload, indent=2, sort_keys=True)

    def write_log(self, path: str | Path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            for event in self.events:
                handle.write(json.dumps(event, default=str) + "\n")


class _ChaosClient(threading.Thread):
    """One retrying client running its seeded op schedule.

    Records every effectful operation with a definite outcome class:

    * ``acked`` -- the server confirmed it (possibly via a journal
      replay after reconnect);
    * ``failed`` -- a definitive structured error (no effects);
    * ``unknown`` -- retry budget exhausted with the outcome in doubt;
    * blocks additionally end ``committed`` / ``rolled_back`` /
      ``abandoned`` (client killed mid-transaction).
    """

    def __init__(
        self,
        index: int,
        port: int,
        config: ChaosConfig,
        events: list[dict[str, Any]],
        events_lock: threading.Lock,
    ):
        super().__init__(name=f"chaos-client-{index}", daemon=True)
        self.index = index
        self.port = port
        self.config = config
        self.rng = random.Random((config.seed << 8) ^ index)
        self.events = events
        self.events_lock = events_lock
        #: [(kind, payload)] -- this client's acknowledged effects in order
        self.log: list[dict[str, Any]] = []
        self.kills = 0
        self.retries = 0
        self.replays = 0
        self.reconnects = 0
        self.degraded_errors = 0
        self.error: str | None = None

    def _event(self, **payload: Any) -> None:
        payload.setdefault("client", self.index)
        payload.setdefault("t", time.time())
        with self.events_lock:
            self.events.append(payload)
        self.log.append(payload)

    def run(self) -> None:
        try:
            self._run()
        except BaseException as error:  # surfaced by the harness
            self.error = f"{type(error).__name__}: {error}"

    def _run(self) -> None:
        policy = RetryPolicy(
            max_attempts=8,
            deadline=30.0,
            backoff_base=0.01,
            backoff_max=0.25,
        )
        client = ServiceClient(
            "127.0.0.1",
            self.port,
            connect_timeout=10.0,
            read_timeout=self.config.query_timeout + 5.0,
            retry=policy,
            seed=self.rng.randrange(1 << 30),
        )
        seq = 0
        block = 0
        try:
            for _ in range(self.config.ops_per_client):
                roll = self.rng.random()
                if roll < self.config.txn_probability:
                    block += 1
                    seq = self._txn_block(client, block, seq)
                elif roll < self.config.txn_probability + 0.1:
                    self._read(client)
                else:
                    seq = self._autocommit_insert(client, seq)
        finally:
            self.retries = client.retries
            self.replays = client.replays
            self.reconnects = client.reconnects
            try:
                client.close()
            except Exception:
                pass

    # -- op flavours ---------------------------------------------------

    def _classify(self, error: ServiceError) -> str:
        if error.code == "degraded":
            self.degraded_errors += 1
            return "failed"
        if error.code in ("resume", "unavailable", "timeout"):
            return "unknown"
        # busy/injected/retry errors that survived the whole retry
        # budget: the last attempt's outcome never arrived
        if error.retryable or error.code in ("injected", "busy"):
            return "unknown"
        return "failed"

    def _autocommit_insert(self, client: ServiceClient, seq: int) -> int:
        seq += 1
        tag, value = self.index, seq
        try:
            client.query(f"INSERT INTO chaos VALUES ({tag}, {value})")
        except ServiceError as error:
            self._event(
                kind="insert", tag=tag, seq=value,
                outcome=self._classify(error), error=error.code,
            )
            return seq
        except (ConnectionError, OSError) as error:
            self._event(
                kind="insert", tag=tag, seq=value,
                outcome="unknown", error=type(error).__name__,
            )
            return seq
        self._event(kind="insert", tag=tag, seq=value, outcome="acked")
        return seq

    def _txn_block(self, client: ServiceClient, block: int, seq: int) -> int:
        inserts: list[int] = []
        try:
            client.begin()
        except (ServiceError, ConnectionError, OSError) as error:
            self._event(
                kind="block", block=block, inserts=inserts,
                outcome="failed", error=str(getattr(error, "code", error)),
            )
            return seq
        for _ in range(self.rng.randint(1, 3)):
            seq += 1
            try:
                client.query(f"INSERT INTO chaos VALUES ({self.index}, {seq})")
            except ServiceError as error:
                # a failed statement inside a block: abort the block, by
                # ROLLBACK or -- if that fails too -- by dropping the
                # socket (the server rolls back at disconnect).  Leaving
                # the transaction open would make the next "autocommit"
                # op silently join it, and its ack would be a lie.
                self._abort_block(client)
                self._event(
                    kind="block", block=block, inserts=inserts,
                    outcome="failed", error=error.code,
                )
                return seq
            except (ConnectionError, OSError):
                # connection died and retries could not settle it: the
                # server rolled the open txn back at disconnect
                self._event(
                    kind="block", block=block, inserts=inserts,
                    outcome="abandoned", error="connection",
                )
                return seq
            inserts.append(seq)
            if self.rng.random() < self.config.kill_probability:
                # abrupt client death mid-transaction: drop the socket
                # without a goodbye; the server must roll the txn back
                client.kill()
                self.kills += 1
                self._event(
                    kind="block", block=block, inserts=inserts,
                    outcome="abandoned", error="killed",
                )
                return seq
        if self.rng.random() < 0.2:
            try:
                client.rollback()
                outcome = "rolled_back"
            except (ServiceError, ConnectionError, OSError):
                self._ensure_txn_dead(client)
                outcome = "abandoned"
            self._event(
                kind="block", block=block, inserts=inserts, outcome=outcome
            )
            return seq
        try:
            client.commit()
        except ServiceError as error:
            # the commit did not ack; whether it landed or not, the
            # session must not stay parked inside the block (a failed
            # pre-execution fault leaves the transaction open)
            self._ensure_txn_dead(client)
            self._event(
                kind="block", block=block, inserts=inserts,
                outcome=self._classify(error) + "_commit", error=error.code,
            )
            return seq
        except (ConnectionError, OSError) as error:
            self._event(
                kind="block", block=block, inserts=inserts,
                outcome="unknown_commit", error=type(error).__name__,
            )
            return seq
        self._event(kind="block", block=block, inserts=inserts, outcome="committed")
        return seq

    def _abort_block(self, client: ServiceClient) -> None:
        try:
            client.rollback()
        except (ServiceError, ConnectionError, OSError):
            self._ensure_txn_dead(client)

    def _ensure_txn_dead(self, client: ServiceClient) -> None:
        """A block ended without a confirmed COMMIT/ROLLBACK.  If the
        connection is still up with the transaction open (e.g. an
        injected pre-execution fault failed the boundary statement but
        kept the session), drop the socket: the server rolls the
        transaction back at disconnect, so the ledger's all-or-nothing
        accounting for the block holds and -- critically -- the next op
        cannot silently join a zombie transaction and lose its "acked"
        effects to the eventual disconnect rollback."""
        if client.in_transaction:
            client.kill()

    def _read(self, client: ServiceClient) -> None:
        try:
            client.query(f"SELECT COUNT(*) FROM chaos WHERE tag = {self.index}")
        except (ServiceError, ConnectionError, OSError):
            pass


def run_chaos(config: ChaosConfig | None = None) -> ChaosReport:
    """Run one seeded chaos schedule; returns the report (never raises
    for invariant violations -- they land in ``report.failures``)."""
    config = config or ChaosConfig()
    report = ChaosReport(seed=config.seed)
    started = time.monotonic()
    rng = random.Random(config.seed)
    events: list[dict[str, Any]] = []
    events_lock = threading.Lock()

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(config.path) if config.path else Path(tmp) / "chaos-db"
        sdb = SinewDB("chaos", SinewConfig(daemon_idle_sleep=0.002), path=path)
        faults = FaultInjector()
        sdb.faults = faults
        sdb.start_daemon()
        service = SinewService(
            sdb,
            ServiceConfig(
                port=0,
                max_sessions=config.clients * 2 + 4,
                max_inflight=max(8, config.clients // 2),
                query_timeout=config.query_timeout,
                drain_timeout=config.drain_timeout,
                supervise=True,
            ),
        )
        port = service.start_in_thread()
        try:
            _run_schedule(
                config, report, rng, events, events_lock, sdb, faults, service, port
            )
        finally:
            try:
                service.stop_in_thread()
            except RuntimeError as error:
                report.failures.append(f"service stop: {error}")
            _assert_no_leaks(report, sdb, service)
            try:
                sdb.close()
            except Exception as error:
                report.failures.append(f"close: {type(error).__name__}: {error}")

    report.events = events
    report.duration = time.monotonic() - started
    report.ok = not report.failures
    if config.log_path:
        report.write_log(config.log_path)
    return report


def _run_schedule(
    config: ChaosConfig,
    report: ChaosReport,
    rng: random.Random,
    events: list[dict[str, Any]],
    events_lock: threading.Lock,
    sdb: SinewDB,
    faults: FaultInjector,
    service: SinewService,
    port: int,
) -> None:
    admin = ServiceClient(
        "127.0.0.1", port, retry=RetryPolicy(backoff_base=0.01), seed=config.seed
    )
    admin.query("CREATE TABLE chaos (tag INTEGER, seq INTEGER)")
    # seed a collection so the materializer daemon has real work to
    # crash in the middle of
    admin.load(
        "chaos_docs",
        [{"k": i, "v": f"v{i}", "w": i * 2} for i in range(50)],
    )

    clients = [
        _ChaosClient(i, port, config, events, events_lock)
        for i in range(config.clients)
    ]
    for client in clients:
        client.start()

    # the seeded fault scheduler: arm small bursts of service/daemon/
    # checkpoint faults while the fleet runs, plus degraded episodes
    pool = list(SERVICE_POINTS + DAEMON_POINTS + CHECKPOINT_POINTS)
    episodes_left = config.degraded_episodes
    rounds = 0
    while any(client.is_alive() for client in clients):
        time.sleep(rng.uniform(0.01, 0.05))
        if rounds < config.fault_rounds:
            point = rng.choice(pool)
            action = "kill" if rng.random() < 0.7 else "raise"
            plan = faults.plan(point, action, count=rng.randint(1, 2))
            report.faults_armed += 1
            with events_lock:
                events.append(
                    {"kind": "fault", "point": point, "action": action,
                     "count": plan.count, "t": time.time()}
                )
            rounds += 1
        elif episodes_left > 0:
            episodes_left -= 1
            _degraded_episode(config, report, rng, events, events_lock, sdb, faults, admin)
    # let remaining plans fire or go stale; then disarm everything
    for client in clients:
        client.join(timeout=120.0)
    report.faults_fired = len(faults.history)
    faults.reset()

    # if the run ended degraded (an episode fired with no writes left to
    # trip recovery), heal it now so convergence can write
    if sdb.db.wal.degraded:
        report.recover_attempts += 1
        admin.recover()

    for client in clients:
        if client.error:
            report.failures.append(f"client {client.index}: {client.error}")
        report.retries += client.retries
        report.replays += client.replays
        report.reconnects += client.reconnects
        report.client_kills += client.kills
        report.degraded_errors += client.degraded_errors

    supervisor = sdb.supervisor
    if supervisor is not None:
        report.daemon_restarts = supervisor.total_restarts()

    _assert_exactly_once(report, clients, admin)
    _settle_and_check(report, sdb)
    admin.close()


def _degraded_episode(
    config: ChaosConfig,
    report: ChaosReport,
    rng: random.Random,
    events: list[dict[str, Any]],
    events_lock: threading.Lock,
    sdb: SinewDB,
    faults: FaultInjector,
    admin: ServiceClient,
) -> None:
    """Break the WAL, let clients hit the read-only wall, heal it."""
    report.degraded_episodes += 1
    op = rng.choice(["append", "fsync"])
    faults.plan("wal.io_error", exception=OSError, where={"op": op})
    with events_lock:
        events.append({"kind": "degrade", "op": op, "t": time.time()})
    deadline = time.monotonic() + 5.0
    while not sdb.db.wal.degraded and time.monotonic() < deadline:
        time.sleep(0.01)
    if not sdb.db.wal.degraded:
        # no write hit the armed point (all clients finished/reading);
        # disarm so the stale plan cannot fire during convergence
        faults.disarm("wal.io_error")
        return
    time.sleep(rng.uniform(0.05, 0.15))
    report.recover_attempts += 1
    recovery = admin.recover()
    with events_lock:
        events.append({"kind": "recover", "result": recovery, "t": time.time()})
    if recovery.get("degraded"):
        report.failures.append(f"recover left the engine degraded: {recovery}")


def _assert_exactly_once(
    report: ChaosReport, clients: list[_ChaosClient], admin: ServiceClient
) -> None:
    """Exactly-once + serial-replay equality over the chaos table."""
    rows = admin.query("SELECT tag, seq FROM chaos").rows
    actual = [(row[0], row[1]) for row in rows]
    actual_set = set(actual)
    report.rows_final = len(actual)
    if len(actual) != len(actual_set):
        dupes = sorted({pair for pair in actual if actual.count(pair) > 1})
        report.failures.append(f"duplicate rows (double-applied writes): {dupes}")

    expected: set[tuple[int, int]] = set()
    maybe: list[set[tuple[int, int]]] = []
    forbidden: set[tuple[int, int]] = set()
    for client in clients:
        for event in client.log:
            if event["kind"] == "insert":
                pair = (event["tag"], event["seq"])
                report.ops += 1
                if event["outcome"] == "acked":
                    report.acked += 1
                    expected.add(pair)
                elif event["outcome"] == "failed":
                    report.failed += 1
                    forbidden.add(pair)
                else:
                    report.unknown += 1
                    maybe.append({pair})
            elif event["kind"] == "block":
                pairs = {(event["client"], seq) for seq in event["inserts"]}
                report.ops += 1
                outcome = event["outcome"]
                if outcome == "committed":
                    report.acked += 1
                    expected |= pairs
                elif outcome in ("rolled_back", "abandoned", "failed",
                                 "failed_commit"):
                    report.failed += 1
                    forbidden |= pairs
                else:  # unknown / unknown_commit: all-or-nothing
                    report.unknown += 1
                    if pairs:
                        maybe.append(pairs)

    missing = expected - actual_set
    if missing:
        report.failures.append(
            f"{len(missing)} acknowledged writes missing (lost acks): "
            f"{sorted(missing)[:10]}"
        )
    present_forbidden = forbidden & actual_set
    if present_forbidden:
        report.failures.append(
            f"{len(present_forbidden)} rolled-back/failed writes present: "
            f"{sorted(present_forbidden)[:10]}"
        )
    allowed = set(expected)
    for pairs in maybe:
        present = pairs & actual_set
        if present and present != pairs:
            report.failures.append(
                f"indeterminate block applied partially (atomicity broken): "
                f"present={sorted(present)} of {sorted(pairs)}"
            )
        allowed |= pairs
    stray = actual_set - allowed
    if stray:
        report.failures.append(
            f"{len(stray)} rows from nowhere: {sorted(stray)[:10]}"
        )

    # serial-replay equality: the acknowledged effects plus the
    # indeterminate ones that demonstrably landed, applied one at a time
    # to a fresh embedded engine, must rebuild exactly the chaos table
    # (insert-only workload, so ordering cannot matter -- any divergence
    # means an effect was duplicated, lost, or torn)
    maybe_union: set[tuple[int, int]] = set()
    for pairs in maybe:
        maybe_union |= pairs
    to_replay = sorted(expected | (actual_set & maybe_union))
    replay = SinewDB("replay", SinewConfig())
    try:
        replay.query("CREATE TABLE chaos (tag INTEGER, seq INTEGER)")
        for tag, seq in to_replay:
            replay.query(f"INSERT INTO chaos VALUES ({tag}, {seq})")
        replay_rows = replay.query("SELECT tag, seq FROM chaos").rows
        replay_set = {(row[0], row[1]) for row in replay_rows}
        if replay_set != actual_set:
            report.failures.append(
                "serial replay diverged from the chaos table: "
                f"{len(replay_set)} replayed vs {len(actual_set)} observed; "
                f"only_replay={sorted(replay_set - actual_set)[:10]} "
                f"only_actual={sorted(actual_set - replay_set)[:10]}"
            )
    finally:
        replay.close()


def _settle_and_check(report: ChaosReport, sdb: SinewDB) -> None:
    """Convergence: analyzer + materializer reach a settled layout and
    the integrity checker signs off."""
    for _ in range(10):
        report.settle_rounds += 1
        moved = 0
        for name in sdb.collections():
            sdb.analyze_schema(name)
            moved += sdb.run_materializer(name).rows_moved
        if moved == 0 and sdb.daemon.status().idle:
            break
        time.sleep(0.02)
    else:
        report.failures.append("layout did not settle within 10 rounds")
    findings = 0
    for check in sdb.check():
        findings += len(check.findings)
        for finding in check.findings:
            report.failures.append(f"integrity: {finding}")
    report.check_findings = findings


def _assert_no_leaks(report: ChaosReport, sdb: SinewDB, service: SinewService) -> None:
    report.leaked_sessions = len(service.sessions)
    if service.sessions:
        report.failures.append(f"leaked sessions: {sorted(service.sessions)}")
    active = list(sdb.db.txn_manager.active)
    report.leaked_txns = len(active)
    if active:
        report.failures.append(f"leaked transactions: {active}")
    if service.write_lock.locked():
        report.failures.append("service write latch still held after drain")


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.chaos",
        description="Run one seeded full-stack chaos schedule.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--clients", type=int, default=16)
    parser.add_argument("--ops", type=int, default=24)
    parser.add_argument("--fault-rounds", type=int, default=10)
    parser.add_argument("--degraded-episodes", type=int, default=1)
    parser.add_argument("--log", default=None, help="write JSONL event log here")
    args = parser.parse_args(argv)
    report = run_chaos(
        ChaosConfig(
            seed=args.seed,
            clients=args.clients,
            ops_per_client=args.ops,
            fault_rounds=args.fault_rounds,
            degraded_episodes=args.degraded_episodes,
            log_path=args.log,
        )
    )
    print(report.to_json())
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
