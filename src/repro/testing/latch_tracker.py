"""Runtime latch-order verification (the lockdep of this engine).

The SNW4xx static pass (:mod:`repro.analysis.protocol`) checks latch
protocols *lexically*; this module checks the part statics cannot see:
the **order** in which latches are actually taken across threads at
runtime.  It follows the lockdep/ThreadSanitizer lineage -- locking
discipline as a checkable rule set, learned from execution:

* every acquisition is recorded against the acquiring thread's held
  stack, and each ``held -> acquired`` pair becomes an edge in a global
  **order graph** keyed by latch *name* (lock class, not instance);
* a blocking acquisition that would close a cycle in that graph is a
  potential deadlock -- two threads need only hit the two orders
  concurrently -- and raises :class:`LatchOrderError` immediately, even
  though this particular run did not deadlock;
* a blocking re-acquisition of a latch the thread already holds is a
  guaranteed self-deadlock (every engine latch is non-reentrant) and
  raises without waiting for the 10s latch timeout to expire.

Enablement
----------
Production call sites (``SinewCatalog.exclusive_latch`` and every
:class:`~repro.latching.TrackedLock`) consult
:func:`repro.latching.latch_tracker` on each acquisition; it returns
``None`` -- tracking disabled, no work done -- unless a tracker was
installed via :func:`enable_latch_tracking` (tests) or the
``REPRO_DEBUG_LATCHES=1`` environment variable (the CI stress lane).

A raised violation behaves like any other engine error: the daemon
transitions to ``crashed`` with the message in ``last_error``, a loader
thread surfaces it to its caller -- so a stress suite running under the
tracker fails loudly on the first ordering regression.
"""

from __future__ import annotations

import threading

from ..latching import install_latch_tracker

__all__ = [
    "LatchOrderError",
    "LatchOrderTracker",
    "enable_latch_tracking",
    "disable_latch_tracking",
]


class LatchOrderError(RuntimeError):
    """A latch acquisition that violates the learned latch order."""


class LatchOrderTracker:
    """Records per-thread latch acquisition edges into a global order graph.

    Thread-safe; one instance is shared by every latch in the process.
    The held stack is thread-local, the edge graph and violation history
    are global and guarded by an internal mutex (a plain ``threading``
    lock -- the tracker must not track itself).
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._local = threading.local()
        #: learned order graph: edges ``held-name -> then-acquired-name``
        self._edges: dict[str, set[str]] = {}
        #: every violation message ever raised (for post-run assertions)
        self.violations: list[str] = []
        #: successful tracked acquisitions
        self.acquisitions = 0
        #: every latch name that was ever successfully acquired
        self.names_seen: set[str] = set()

    # ------------------------------------------------------------------
    # the hook surface (called by exclusive_latch / TrackedLock)
    # ------------------------------------------------------------------

    def before_acquire(self, name: str, *, blocking: bool = True) -> None:
        """Validate an acquisition attempt *before* it can block.

        ``blocking`` describes the caller's intent (would it wait on
        contention?), not whether it actually waited: a try-then-wait
        acquisition like ``exclusive_latch`` reports ``blocking=True``
        up front so ordering is checked even on the uncontended path.
        Non-blocking attempts never deadlock, so they only contribute
        edges and are exempt from the cycle and self-hold checks.
        """
        held = self._stack()
        if blocking and name in held:
            self._violate(
                f"self-deadlock: blocking re-acquisition of latch {name!r} "
                f"by {threading.current_thread().name!r} while already "
                f"holding it (held stack: {held})"
            )
        with self._mutex:
            for holder in held:
                if holder == name:
                    continue
                if blocking:
                    path = self._find_path(name, holder)
                    if path is not None:
                        chain = " -> ".join([*path, holder])
                        self._violate_locked(
                            f"latch order inversion: "
                            f"{threading.current_thread().name!r} is "
                            f"acquiring {name!r} while holding {holder!r}, "
                            f"but the opposite order {chain} was already "
                            "observed; two threads interleaving these "
                            "orders can deadlock"
                        )
                self._edges.setdefault(holder, set()).add(name)

    def after_acquire(self, name: str) -> None:
        """Record a successful acquisition on the thread's held stack."""
        self._stack().append(name)
        with self._mutex:
            self.acquisitions += 1
            self.names_seen.add(name)

    def released(self, name: str) -> None:
        """Pop a release; tolerant of latches acquired before tracking."""
        held = self._stack()
        for index in range(len(held) - 1, -1, -1):
            if held[index] == name:
                del held[index]
                return

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def held(self) -> tuple[str, ...]:
        """The calling thread's current held stack (oldest first)."""
        return tuple(self._stack())

    def edges(self) -> dict[str, frozenset[str]]:
        """A snapshot of the learned order graph."""
        with self._mutex:
            return {a: frozenset(bs) for a, bs in self._edges.items()}

    def reset(self) -> None:
        """Forget the learned graph and history (held stacks persist)."""
        with self._mutex:
            self._edges.clear()
            self.violations.clear()
            self.acquisitions = 0
            self.names_seen.clear()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _find_path(self, start: str, goal: str) -> list[str] | None:
        """DFS ``start -> ... -> goal`` over the order graph (or None).

        Caller holds ``_mutex``.
        """
        seen = {start}
        frontier: list[tuple[str, list[str]]] = [(start, [start])]
        while frontier:
            node, path = frontier.pop()
            for successor in self._edges.get(node, ()):
                if successor == goal:
                    return path
                if successor not in seen:
                    seen.add(successor)
                    frontier.append((successor, [*path, successor]))
        return None

    def _violate(self, message: str) -> None:
        with self._mutex:
            self._violate_locked(message)

    def _violate_locked(self, message: str) -> None:
        self.violations.append(message)
        raise LatchOrderError(message)


def enable_latch_tracking() -> LatchOrderTracker:
    """Install a fresh tracker as the process-global instance."""
    tracker = LatchOrderTracker()
    install_latch_tracker(tracker)
    return tracker


def disable_latch_tracking() -> None:
    """Remove the installed tracker (acquisitions stop being recorded)."""
    install_latch_tracker(None)
