"""Subprocess workload for process-level crash-recovery tests.

``python -m repro.testing.crash_child DBPATH [--point P --at N]`` runs a
fixed, fully deterministic Sinew workload against a durable database at
``DBPATH``.  With ``--point`` it arms one fault plan and the process dies
with :data:`CRASH_EXIT` (via ``os._exit``, so no ``atexit``/destructor
cleanup runs -- the closest a test can get to ``kill -9`` at an exact
instruction) the moment that fault fires.

After every completed workload step the child prints a flushed
``MARK <step>`` line; the parent test reads the marks from stdout to learn
exactly which steps committed before the crash, then reopens ``DBPATH``
in-process and checks the recovery invariants (see
``tests/integration/test_crash_recovery.py``).

The workload is two phases:

* **base** (never armed): create the collection, load 12 documents,
  materialize ``a``, settle, checkpoint.  Every crash case starts from
  this same durable prefix.
* **armed steps**, each followed by its mark: ``load2`` (8 more
  documents), ``update`` (one-row UPDATE), ``settle2`` (materialize ``b``
  + run the materializer), ``ckpt``, ``close``.
"""

from __future__ import annotations

import argparse
import os
import sys

from ..core import SinewDB
from ..rdbms.types import SqlType
from .faults import FaultInjector, InjectedFault

#: Exit status signalling "an injected fault fired" (vs. 0 = clean run).
CRASH_EXIT = 42

COLLECTION = "events"

BATCH_A = [{"a": i, "b": f"s{i}", "tag": "base"} for i in range(12)]
BATCH_B = [{"a": 100 + i, "c": f"c{i}", "tag": "extra"} for i in range(8)]
UPDATE_SQL = "UPDATE events SET b = 'updated' WHERE a = 3"


class CrashingInjector(FaultInjector):
    """``os._exit`` the instant a planned fault fires.

    Exiting *inside* ``fire`` means nothing after the injection point runs
    in-process -- no transaction abort, no undo, no buffered writes -- which
    is the semantics a real power cut would have.  The one exception is
    ``wal.torn_write``: the WAL's own handler must see the exception first
    (it is what writes the torn half-frame), so there the fault propagates
    and :func:`main` exits at the workload level instead.
    """

    def fire(self, point: str, **context) -> None:
        try:
            super().fire(point, **context)
        except InjectedFault:
            if point == "wal.torn_write":
                raise
            _crash()


def _crash() -> None:
    sys.stdout.flush()
    sys.stderr.flush()
    os._exit(CRASH_EXIT)


def _mark(step: str) -> None:
    print(f"MARK {step}", flush=True)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("dbpath", help="database directory (created if absent)")
    parser.add_argument("--point", help="fault-injection point to arm")
    parser.add_argument(
        "--at", type=int, default=1, help="1-based hit index that crashes"
    )
    options = parser.parse_args(argv)

    sdb = SinewDB.open(options.dbpath)

    # ---- base phase (unarmed): identical durable prefix for every case
    sdb.create_collection(COLLECTION)
    sdb.load(COLLECTION, BATCH_A)
    sdb.materialize(COLLECTION, "a", SqlType.INTEGER)
    sdb.run_materializer(COLLECTION)
    sdb.checkpoint()
    _mark("base")

    if options.point:
        injector = CrashingInjector()
        injector.plan(options.point, "raise", at=options.at)
        sdb.attach_faults(injector)

    try:
        sdb.load(COLLECTION, BATCH_B)
        _mark("load2")
        sdb.query(UPDATE_SQL)
        _mark("update")
        sdb.materialize(COLLECTION, "b", SqlType.TEXT)
        sdb.run_materializer(COLLECTION)
        _mark("settle2")
        sdb.checkpoint()
        _mark("ckpt")
        sdb.close()
        _mark("close")
    except InjectedFault:
        # only wal.torn_write reaches here (see CrashingInjector); the torn
        # half-frame is already on disk
        _crash()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
