"""Deterministic fault injection for crash-recovery testing.

Sinew's robustness claims (section 3.1.4: the materializer is an
*incremental, interruptible* background process that can die at any point
and resume) are only testable if tests can crash the system at precisely
chosen moments.  This module provides that control:

* **Injection points** are named call sites threaded through the loader,
  the column materializer, the background daemon, and the storage engine.
  Each site calls ``injector.fire("<point>", **context)`` when an injector
  is attached; with no injector attached the sites cost one attribute
  check.
* A :class:`FaultInjector` holds **plans**: at the N-th hit of a point,
  raise an error, kill the daemon thread, or delay.  Hit counting is
  per-plan and fully deterministic, so a test can assert "the crash
  happened exactly between row 7 and row 8".
* :meth:`FaultInjector.schedule_from_seed` derives a reproducible random
  schedule from an integer seed, for stress tests that want varied but
  repeatable interleavings.

The canonical **injection-point registry** lives here (:data:`known_points`);
``fire`` rejects unknown names so a typo in production code fails loudly in
any test that arms an injector.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable


class InjectedFault(Exception):
    """An error deliberately raised at a named injection point."""

    def __init__(self, point: str, message: str | None = None):
        super().__init__(message or f"injected fault at {point!r}")
        self.point = point


class DaemonKilled(InjectedFault):
    """Injected hard death of the materializer daemon thread.

    The daemon treats *any* exception escaping its work loop as a crash
    (no cleanup runs, in-memory catalog state is frozen as-is); this
    subclass exists so tests and logs can tell an injected kill from an
    organic failure.
    """


#: The canonical injection-point registry.  Production call sites must use
#: names from this set; subsystems that grow new points register them here
#: (or via :func:`register_point`) so tests can enumerate every point.
_KNOWN_POINTS: set[str] = {
    # loader (repro.core.loader) -- both fire under the catalog latch
    "loader.before_insert",   # catalog updated, heap rows not yet written
    "loader.after_insert",    # heap rows written, latch still held
    # column materializer (repro.core.materializer) -- all under the latch
    "materializer.before_step",         # latch acquired, nothing examined yet
    "materializer.before_row_move",     # row fetched, atomic move not started
    "materializer.after_row_move",      # row moved, progress cursor not yet advanced
    "materializer.before_clear_dirty",  # cursor at end, dirty bit still set
    # background daemon (repro.core.background) -- outside the latch
    "daemon.before_step",     # about to take a materializer slice
    "daemon.after_step",      # slice finished, stats recorded
    # storage engine (repro.rdbms.storage) -- before the page is touched
    "storage.write_row",      # any heap insert/update, context: table=<name>
    # durable WAL (repro.rdbms.transactions) -- fire only in durable mode
    "wal.append",             # before a record is framed and written
    "wal.fsync",              # before the fsync barrier lands
    "wal.torn_write",         # before a COMMIT frame; a raise tears it in half
    "wal.io_error",           # disk I/O sites; arm with exception=OSError to
                              # flip degraded mode (context: op=append|fsync|recover)
    # checkpointer (repro.rdbms.database / transactions)
    "checkpoint.pages",       # WAL rotated, heap snapshot not yet taken
    "checkpoint.catalog",     # heap snapshot taken, catalog blob not yet added
    "checkpoint.truncate",    # checkpoint renamed in, old segments still present
    # SQL service layer (repro.service.server) -- per-connection paths;
    # a fault here must never poison the shared SinewDB (no leaked
    # latches, no orphaned session transactions)
    "service.accept",         # connection admitted, session not yet created
    "service.execute",        # request decoded, statement not yet executed
    "service.respond",        # statement done, response not yet written
    "service.drain",          # stop requested, drain phase not yet started
    # daemon supervision (repro.core.supervisor)
    "supervisor.restart",     # crash detected, restart not yet attempted
}


def known_points() -> frozenset[str]:
    """The registered injection points (a snapshot)."""
    return frozenset(_KNOWN_POINTS)


def register_point(name: str) -> str:
    """Register an additional injection point (idempotent); returns it."""
    _KNOWN_POINTS.add(name)
    return name


@dataclass
class FaultPlan:
    """One armed fault: *what* happens at *which* hits of a point.

    ``at`` is the 1-based eligible-hit index that first triggers and
    ``count`` how many consecutive eligible hits trigger (``None`` means
    every hit from ``at`` on).  ``where`` restricts eligibility to fires
    whose context contains the given items (e.g. ``{"table": "tweets"}``).
    """

    point: str
    action: str = "raise"  # "raise" | "kill" | "delay"
    at: int = 1
    count: int | None = 1
    delay: float = 0.0
    exception: type[BaseException] | None = None
    where: dict[str, Any] | None = None
    #: eligible hits seen so far / times this plan actually fired
    seen: int = 0
    fired: int = 0

    def matches(self, context: dict[str, Any]) -> bool:
        if not self.where:
            return True
        return all(context.get(key) == value for key, value in self.where.items())

    def due(self) -> bool:
        if self.seen < self.at:
            return False
        return self.count is None or self.seen < self.at + self.count


_ACTIONS = ("raise", "kill", "delay")


class FaultInjector:
    """Deterministic fault scheduler shared across threads.

    Thread-safe: the loader thread and the daemon thread hit the same
    injector concurrently in stress tests, so plan bookkeeping is guarded
    by a lock.  ``fire`` is the single production-facing entry point.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._plans: dict[str, list[FaultPlan]] = {}
        #: total hits per point (armed or not), for test assertions
        self.hits: dict[str, int] = {}
        #: chronological record of every fault that actually fired
        self.history: list[tuple[str, str, dict[str, Any]]] = []

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------

    def plan(
        self,
        point: str,
        action: str = "raise",
        *,
        at: int = 1,
        count: int | None = 1,
        delay: float = 0.0,
        exception: type[BaseException] | None = None,
        where: dict[str, Any] | None = None,
    ) -> FaultPlan:
        """Arm one fault at ``point``; returns the plan for inspection."""
        if point not in _KNOWN_POINTS:
            raise ValueError(
                f"unknown injection point {point!r}; registered points: "
                f"{', '.join(sorted(_KNOWN_POINTS))}"
            )
        if action not in _ACTIONS:
            raise ValueError(f"unknown fault action {action!r}; use one of {_ACTIONS}")
        if at < 1:
            raise ValueError("'at' is a 1-based hit index")
        fault = FaultPlan(
            point=point, action=action, at=at, count=count,
            delay=delay, exception=exception, where=where,
        )
        with self._lock:
            self._plans.setdefault(point, []).append(fault)
        return fault

    def kill_at(self, point: str, *, at: int = 1, **kwargs) -> FaultPlan:
        """Shorthand: arm a daemon-kill at the ``at``-th hit of a point."""
        return self.plan(point, "kill", at=at, **kwargs)

    def schedule_from_seed(
        self,
        seed: int,
        points: Iterable[str] | None = None,
        *,
        n_faults: int = 3,
        max_at: int = 20,
        action: str = "kill",
    ) -> list[FaultPlan]:
        """Arm a reproducible pseudo-random schedule of ``n_faults`` faults.

        The same seed always produces the same (point, hit-index) pairs, so
        a stress-test failure can be replayed exactly.
        """
        pool = sorted(points if points is not None else _KNOWN_POINTS)
        rng = random.Random(seed)
        plans = []
        for _ in range(n_faults):
            plans.append(
                self.plan(
                    rng.choice(pool), action, at=rng.randint(1, max_at)
                )
            )
        return plans

    def reset(self) -> None:
        """Disarm every plan and clear counters (keeps the instance attached)."""
        with self._lock:
            self._plans.clear()
            self.hits.clear()
            self.history.clear()

    def disarm(self, point: str) -> None:
        """Remove every plan for one point."""
        with self._lock:
            self._plans.pop(point, None)

    # ------------------------------------------------------------------
    # the production-facing hook
    # ------------------------------------------------------------------

    def fire(self, point: str, **context: Any) -> None:
        """Record a hit of ``point`` and execute any due plan.

        Raises :class:`InjectedFault` / :class:`DaemonKilled` (or the
        plan's custom exception) when a "raise" / "kill" plan is due;
        sleeps for a "delay" plan.  Unknown points raise ``ValueError`` --
        an armed injector doubles as a registry-conformance check.
        """
        if point not in _KNOWN_POINTS:
            raise ValueError(f"fire() on unregistered injection point {point!r}")
        to_sleep = 0.0
        to_raise: BaseException | None = None
        with self._lock:
            self.hits[point] = self.hits.get(point, 0) + 1
            for fault in self._plans.get(point, ()):
                if not fault.matches(context):
                    continue
                fault.seen += 1
                if not fault.due():
                    continue
                fault.fired += 1
                self.history.append((point, fault.action, dict(context)))
                if fault.action == "delay":
                    to_sleep += fault.delay
                elif fault.action == "kill":
                    to_raise = DaemonKilled(point)
                else:
                    exc_type = fault.exception or InjectedFault
                    to_raise = (
                        exc_type(point)
                        if issubclass(exc_type, InjectedFault)
                        else exc_type(f"injected fault at {point!r}")
                    )
                if to_raise is not None:
                    break
        if to_sleep:
            time.sleep(to_sleep)
        if to_raise is not None:
            raise to_raise

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def fired(self, point: str | None = None) -> int:
        """How many faults actually fired (optionally for one point)."""
        with self._lock:
            if point is None:
                return len(self.history)
            return sum(1 for p, _a, _c in self.history if p == point)

    def pending(self) -> list[FaultPlan]:
        """Armed plans that have not exhausted their trigger window."""
        with self._lock:
            return [
                fault
                for plans in self._plans.values()
                for fault in plans
                if fault.count is None or fault.fired < fault.count
            ]
