"""An Avro-like serializer (Appendix A comparator).

Reproduces the two Avro properties the paper's measurements hinge on:

* **no primitive optionals** -- optional fields are unions
  ``[null, T, ...]``, and the writer emits a union branch index for
  *every* field in the schema, present or not.  Over NoBench's
  1000-key sparse field pool this writes a branch marker per schema field
  per record: "this requires that Avro store NULLs explicitly ..., which
  bloats its serialization size and destroys performance";
* **strictly sequential access** -- values carry no offsets; extracting
  one field requires decoding (or at best length-skipping) every field
  before it in schema order.

Encodings follow Avro's binary spec in spirit: zigzag-varint longs,
8-byte doubles, length-prefixed UTF-8 strings, recursively encoded
sub-records, and counted arrays.
"""

from __future__ import annotations

import struct
from typing import Any, Mapping

from ..rdbms.errors import ExecutionError
from .record_schema import (
    KIND_ARRAY,
    KIND_BOOL,
    KIND_INT,
    KIND_REAL,
    KIND_RECORD,
    KIND_TEXT,
    FieldSchema,
    RecordSchema,
    kind_of,
)
from .varint import decode_varint, encode_varint, zigzag_decode, zigzag_encode

_F64 = struct.Struct("<d")


class AvroLikeSerializer:
    """Schema-based serializer with union-encoded optional fields."""

    def __init__(self, schema: RecordSchema):
        self.schema = schema.freeze()

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------

    def serialize(self, document: Mapping[str, Any]) -> bytes:
        return self._encode_record(document, self.schema)

    def _encode_record(self, document: Mapping[str, Any], schema: RecordSchema) -> bytes:
        parts: list[bytes] = []
        for field_schema in schema.ordered_fields():
            value = document.get(field_schema.name)
            if value is None:
                # union branch 0 == null: the explicit NULL Avro must write
                parts.append(encode_varint(0))
                continue
            kind = kind_of(value)
            if kind not in field_schema.kinds:
                raise ExecutionError(
                    f"value kind {kind} not in schema union for "
                    f"{field_schema.name!r}"
                )
            branch = field_schema.kinds.index(kind) + 1
            parts.append(encode_varint(branch))
            parts.append(self._encode_value(value, kind, field_schema))
        return b"".join(parts)

    def _encode_value(self, value: Any, kind: str, field_schema: FieldSchema) -> bytes:
        if kind == KIND_INT:
            return encode_varint(zigzag_encode(value))
        if kind == KIND_REAL:
            return _F64.pack(value)
        if kind == KIND_BOOL:
            return b"\x01" if value else b"\x00"
        if kind == KIND_TEXT:
            encoded = value.encode("utf-8")
            return encode_varint(len(encoded)) + encoded
        if kind == KIND_RECORD:
            assert field_schema.sub_schema is not None
            return self._encode_record(value, field_schema.sub_schema)
        if kind == KIND_ARRAY:
            parts = [encode_varint(len(value))]
            for element in value:
                element_kind = kind_of(element) if element is not None else None
                if element is None:
                    parts.append(encode_varint(0))
                    continue
                # element union: null=0, int=1, real=2, bool=3, text=4, rec=5
                branch = {
                    KIND_INT: 1,
                    KIND_REAL: 2,
                    KIND_BOOL: 3,
                    KIND_TEXT: 4,
                    KIND_RECORD: 5,
                }[element_kind]
                parts.append(encode_varint(branch))
                parts.append(self._encode_value(element, element_kind, field_schema))
            return b"".join(parts)
        raise ExecutionError(f"cannot encode kind {kind}")

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------

    def deserialize(self, data: bytes) -> dict[str, Any]:
        document, _position = self._decode_record(data, 0, self.schema)
        return document

    def _decode_record(
        self, data: bytes, position: int, schema: RecordSchema
    ) -> tuple[dict[str, Any], int]:
        out: dict[str, Any] = {}
        for field_schema in schema.ordered_fields():
            branch, position = decode_varint(data, position)
            if branch == 0:
                continue
            kind = field_schema.kinds[branch - 1]
            value, position = self._decode_value(data, position, kind, field_schema)
            out[field_schema.name] = value
        return out, position

    def _decode_value(
        self, data: bytes, position: int, kind: str, field_schema: FieldSchema
    ) -> tuple[Any, int]:
        if kind == KIND_INT:
            raw, position = decode_varint(data, position)
            return zigzag_decode(raw), position
        if kind == KIND_REAL:
            return _F64.unpack_from(data, position)[0], position + 8
        if kind == KIND_BOOL:
            return data[position] != 0, position + 1
        if kind == KIND_TEXT:
            length, position = decode_varint(data, position)
            return (
                data[position : position + length].decode("utf-8"),
                position + length,
            )
        if kind == KIND_RECORD:
            assert field_schema.sub_schema is not None
            return self._decode_record(data, position, field_schema.sub_schema)
        if kind == KIND_ARRAY:
            count, position = decode_varint(data, position)
            elements: list[Any] = []
            kinds = [None, KIND_INT, KIND_REAL, KIND_BOOL, KIND_TEXT, KIND_RECORD]
            for _ in range(count):
                branch, position = decode_varint(data, position)
                if branch == 0:
                    elements.append(None)
                    continue
                value, position = self._decode_value(
                    data, position, kinds[branch], field_schema
                )
                elements.append(value)
            return elements, position
        raise ExecutionError(f"cannot decode kind {kind}")

    # ------------------------------------------------------------------
    # extraction (sequential by construction)
    # ------------------------------------------------------------------

    def extract(self, data: bytes, key: str) -> Any:
        """Extract one top-level field: decode fields in schema order until
        the target is reached (no random access exists)."""
        position = 0
        for field_schema in self.schema.ordered_fields():
            branch, position = decode_varint(data, position)
            if branch == 0:
                if field_schema.name == key:
                    return None
                continue
            kind = field_schema.kinds[branch - 1]
            value, position = self._decode_value(data, position, kind, field_schema)
            if field_schema.name == key:
                return value
        return None

    def extract_many(self, data: bytes, keys: list[str]) -> list[Any]:
        """Extract several fields in one sequential pass."""
        wanted = set(keys)
        found: dict[str, Any] = {}
        position = 0
        for field_schema in self.schema.ordered_fields():
            branch, position = decode_varint(data, position)
            if branch == 0:
                continue
            kind = field_schema.kinds[branch - 1]
            value, position = self._decode_value(data, position, kind, field_schema)
            if field_schema.name in wanted:
                found[field_schema.name] = value
                if len(found) == len(wanted):
                    break
        return [found.get(key) for key in keys]
