"""A jsonb-style binary JSON baseline (the paper's section 6.7 outlook).

The paper's discussion notes that Postgres's then-new ``jsonb`` type
"may remedy" the CPU deficiencies of text JSON -- but immediately adds
that "a more systemic deficiency is the opaqueness of the JSON type to
the optimizer".  This baseline makes that argument testable:

* documents are stored in a **binary tree format with sorted keys**:
  each object is ``u32 count | sorted key directory | value offsets |
  payload``, so key lookup is a binary search per nesting level and no
  text parsing happens at query time (jsonb's core win over json);
* unlike Sinew's format there is **no attribute dictionary** -- every
  record carries its full key strings (jsonb stores keys inline), so the
  encoding is larger than Sinew's reservoir;
* extraction still happens through UDFs, so the optimizer remains blind:
  predicates keep the fixed default estimate and the bad GROUP BY plans
  of section 6.5 persist.

The ``bench_ablation_jsonb`` benchmark quantifies exactly how much of the
Sinew-vs-Postgres gap jsonb closes (the CPU part) and how much it cannot
(statistics, plans, and key-dictionary compression).
"""

from __future__ import annotations

import json
import struct
from bisect import bisect_left
from typing import Any, Iterable, Mapping

from ..rdbms.database import Database, DatabaseConfig, QueryResult
from ..rdbms.errors import ExecutionError, TypeCastError
from ..rdbms.types import SqlType
from ..core.document import parse_document

_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")

TAG_NULL = 0
TAG_INT = 1
TAG_REAL = 2
TAG_BOOL = 3
TAG_TEXT = 4
TAG_OBJECT = 5
TAG_ARRAY = 6


def encode(value: Any) -> bytes:
    """Encode one JSON value as ``tag | payload``."""
    if value is None:
        return bytes([TAG_NULL])
    if isinstance(value, bool):
        return bytes([TAG_BOOL, 1 if value else 0])
    if isinstance(value, int):
        return bytes([TAG_INT]) + _I64.pack(value)
    if isinstance(value, float):
        return bytes([TAG_REAL]) + _F64.pack(value)
    if isinstance(value, str):
        return bytes([TAG_TEXT]) + value.encode("utf-8")
    if isinstance(value, Mapping):
        return bytes([TAG_OBJECT]) + _encode_object(value)
    if isinstance(value, (list, tuple)):
        return bytes([TAG_ARRAY]) + _encode_array(value)
    raise ExecutionError(f"cannot jsonb-encode {type(value).__name__}")


def _encode_object(obj: Mapping[str, Any]) -> bytes:
    """``u32 n | key dir (offset,len per key, sorted) | value offsets |
    key payload | value payload``."""
    items = sorted(obj.items())
    keys = [key.encode("utf-8") for key, _value in items]
    values = [encode(value) for _key, value in items]
    n = len(items)
    header = bytearray(_U32.pack(n))
    key_offset = 0
    for key in keys:
        header += _U32.pack(key_offset)
        key_offset += len(key)
    header += _U32.pack(key_offset)  # total key bytes
    value_offset = 0
    for value in values:
        header += _U32.pack(value_offset)
        value_offset += len(value)
    header += _U32.pack(value_offset)
    return bytes(header) + b"".join(keys) + b"".join(values)


def _encode_array(values: Iterable[Any]) -> bytes:
    encoded = [encode(value) for value in values]
    header = bytearray(_U32.pack(len(encoded)))
    offset = 0
    for chunk in encoded:
        header += _U32.pack(offset)
        offset += len(chunk)
    header += _U32.pack(offset)
    return bytes(header) + b"".join(encoded)


def decode(data: bytes) -> Any:
    """Decode a complete value back to Python."""
    value, _consumed = _decode(memoryview(data), 0, len(data))
    return value


def _decode(view: memoryview, start: int, end: int) -> tuple[Any, int]:
    tag = view[start]
    if tag == TAG_NULL:
        return None, start + 1
    if tag == TAG_BOOL:
        return view[start + 1] != 0, start + 2
    if tag == TAG_INT:
        return _I64.unpack_from(view, start + 1)[0], start + 9
    if tag == TAG_REAL:
        return _F64.unpack_from(view, start + 1)[0], start + 9
    if tag == TAG_TEXT:
        return bytes(view[start + 1 : end]).decode("utf-8"), end
    if tag == TAG_OBJECT:
        return _decode_object(view, start + 1), end
    if tag == TAG_ARRAY:
        return _decode_array(view, start + 1), end
    raise ExecutionError(f"corrupt jsonb: tag {tag}")


def _object_layout(view: memoryview, base: int):
    (n,) = _U32.unpack_from(view, base)
    key_dir = base + 4
    value_dir = key_dir + 4 * (n + 1)
    keys_base = value_dir + 4 * (n + 1)
    (total_keys,) = _U32.unpack_from(view, key_dir + 4 * n)
    values_base = keys_base + total_keys
    return n, key_dir, value_dir, keys_base, values_base


def _decode_object(view: memoryview, base: int) -> dict[str, Any]:
    n, key_dir, value_dir, keys_base, values_base = _object_layout(view, base)
    out: dict[str, Any] = {}
    for index in range(n):
        key_start, key_end = struct.unpack_from("<II", view, key_dir + 4 * index)
        value_start, value_end = struct.unpack_from("<II", view, value_dir + 4 * index)
        key = bytes(view[keys_base + key_start : keys_base + key_end]).decode("utf-8")
        value, _ = _decode(
            view, values_base + value_start, values_base + value_end
        )
        out[key] = value
    return out


def _decode_array(view: memoryview, base: int) -> list[Any]:
    (n,) = _U32.unpack_from(view, base)
    dir_base = base + 4
    payload = dir_base + 4 * (n + 1)
    out = []
    for index in range(n):
        start, end = struct.unpack_from("<II", view, dir_base + 4 * index)
        value, _ = _decode(view, payload + start, payload + end)
        out.append(value)
    return out


def get_raw(data: bytes, dotted_key: str) -> Any:
    """Binary-search key lookup, one nesting level per dot; no text parse."""
    start, end = 0, len(data)
    for part in dotted_key.split("."):
        if data[start] != TAG_OBJECT:
            return None
        located = _lookup(data, start + 1, part.encode("utf-8"))
        if located is None:
            return None
        start, end = located
    value, _ = _decode(memoryview(data), start, end)
    return value


def _lookup(data: bytes, base: int, key: bytes) -> tuple[int, int] | None:
    """Binary search over the sorted key directory of one object.

    The key directory is unpacked in a single struct call; probes compare
    byte slices directly.
    """
    (n,) = _U32.unpack_from(data, base)
    if n == 0:
        return None
    key_dir = base + 4
    directory = struct.unpack_from(f"<{n + 1}I", data, key_dir)
    value_dir = key_dir + 4 * (n + 1)
    keys_base = value_dir + 4 * (n + 1)
    values_base = keys_base + directory[n]
    low, high = 0, n - 1
    while low <= high:
        mid = (low + high) // 2
        candidate = data[keys_base + directory[mid] : keys_base + directory[mid + 1]]
        if candidate == key:
            value_start, value_end = struct.unpack_from(
                "<II", data, value_dir + 4 * mid
            )
            return values_base + value_start, values_base + value_end
        if candidate < key:
            low = mid + 1
        else:
            high = mid - 1
    return None


class PgJsonbStore:
    """Documents as jsonb-style binary values in ``(id, data bytea)``.

    API-compatible with :class:`~repro.baselines.pgjson.PgJsonStore`, with
    ``jsonb_get_*`` UDFs that share Postgres's cast semantics (a numeric
    cast on a string value raises), so NoBench Q7 still fails here --
    jsonb fixes the CPU cost, not the type-system or optimizer issues.
    """

    def __init__(self, name: str = "pgjsonb", config: DatabaseConfig | None = None):
        self.name = name
        self.db = Database(name, config)
        self._next_id: dict[str, int] = {}
        self._register_udfs()

    def _register_udfs(self) -> None:
        def jsonb_get_text(data: bytes | None, key: str) -> str | None:
            if data is None:
                return None
            value = get_raw(data, key)
            if value is None:
                return None
            if isinstance(value, bool):
                return "true" if value else "false"
            if isinstance(value, (dict, list)):
                return json.dumps(value)
            return str(value)

        def jsonb_get_num(data: bytes | None, key: str) -> float | None:
            if data is None:
                return None
            value = get_raw(data, key)
            if value is None:
                return None
            if isinstance(value, bool):
                raise TypeCastError(
                    f"invalid input syntax for type numeric: {value!r}"
                )
            if isinstance(value, (int, float)):
                return value
            raise TypeCastError(f"invalid input syntax for type numeric: {value!r}")

        def jsonb_exists(data: bytes | None, key: str) -> bool:
            return data is not None and get_raw(data, key) is not None

        self.db.create_function("jsonb_get_text", jsonb_get_text, SqlType.TEXT)
        self.db.create_function("jsonb_get_num", jsonb_get_num, SqlType.REAL)
        self.db.create_function("jsonb_exists", jsonb_exists, SqlType.BOOLEAN)

    def create_collection(self, table_name: str) -> None:
        self.db.create_table(
            table_name, [("id", SqlType.INTEGER), ("data", SqlType.BYTEA)]
        )
        self._next_id[table_name] = 0

    def load(
        self, table_name: str, documents: Iterable[str | Mapping[str, Any]]
    ) -> int:
        """jsonb loads slower than json: the binary transform happens here."""
        rows: list[tuple] = []
        next_id = self._next_id[table_name]
        for raw_document in documents:
            document = parse_document(raw_document)
            rows.append((next_id, encode(document)))
            next_id += 1
        self._next_id[table_name] = next_id
        self.db.insert_rows(table_name, rows)
        return len(rows)

    def analyze(self, table_name: str) -> None:
        self.db.analyze(table_name)

    def storage_bytes(self, table_name: str) -> int:
        return self.db.table(table_name).total_bytes

    def query(self, sql: str) -> QueryResult:
        return self.db.execute(sql)

    def n_documents(self, table_name: str) -> int:
        return self._next_id.get(table_name, 0)
