"""A Protocol-Buffers-like serializer (Appendix A comparator).

Reproduces the properties the paper measures:

* **optional fields cost nothing when absent** -- only present fields are
  written, each as ``tag varint | value``, so the encoding is compact
  (slightly smaller than Sinew's thanks to varint bit-packing, per
  Table 4);
* **sequential access with cheap skips** -- the wire type embedded in
  each tag lets a reader *skip* values without decoding them, and fields
  are written in ascending field-number order so a lookup can
  short-circuit once past the target number; but there is still no random
  access, so extraction remains O(fields-before-target);
* **decode to an intermediate representation** -- ``deserialize`` builds
  the full logical object, the extra step the paper credits for Sinew's
  ~50% faster deserialization.

Wire types: 0 = varint (zigzag ints, bools), 1 = 64-bit (doubles),
2 = length-delimited (strings, sub-messages, packed arrays).
"""

from __future__ import annotations

import struct
from typing import Any, Mapping

from ..rdbms.errors import ExecutionError
from .record_schema import (
    KIND_ARRAY,
    KIND_BOOL,
    KIND_INT,
    KIND_REAL,
    KIND_RECORD,
    KIND_TEXT,
    FieldSchema,
    RecordSchema,
    kind_of,
)
from .varint import decode_varint, encode_varint, zigzag_decode, zigzag_encode

_F64 = struct.Struct("<d")

WIRE_VARINT = 0
WIRE_64BIT = 1
WIRE_LENGTH = 2

_WIRE_OF_KIND = {
    KIND_INT: WIRE_VARINT,
    KIND_BOOL: WIRE_VARINT,
    KIND_REAL: WIRE_64BIT,
    KIND_TEXT: WIRE_LENGTH,
    KIND_RECORD: WIRE_LENGTH,
    KIND_ARRAY: WIRE_LENGTH,
}


class ProtobufLikeSerializer:
    """Schema-based tag-length-value serializer."""

    def __init__(self, schema: RecordSchema):
        self.schema = schema.freeze()

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------

    def serialize(self, document: Mapping[str, Any]) -> bytes:
        return self._encode_record(document, self.schema)

    def _encode_record(self, document: Mapping[str, Any], schema: RecordSchema) -> bytes:
        parts: list[bytes] = []
        # ascending field-number order enables short-circuit lookups
        for field_schema in schema.ordered_fields():
            value = document.get(field_schema.name)
            if value is None:
                continue  # absent optional field: zero bytes
            parts.append(self._encode_field(value, field_schema))
        return b"".join(parts)

    def _encode_field(self, value: Any, field_schema: FieldSchema) -> bytes:
        kind = kind_of(value)
        wire = _WIRE_OF_KIND[kind]
        tag = encode_varint((field_schema.number << 3) | wire)
        return tag + self._encode_payload(value, kind, field_schema)

    @staticmethod
    def _length_kinds(field_schema: FieldSchema) -> list[str]:
        return [
            kind
            for kind in (KIND_TEXT, KIND_RECORD, KIND_ARRAY)
            if kind in field_schema.kinds
        ]

    def _encode_payload(self, value: Any, kind: str, field_schema: FieldSchema) -> bytes:
        if kind == KIND_INT:
            # low bit distinguishes ints from bools within a varint union
            return encode_varint(zigzag_encode(value) << 1)
        if kind == KIND_BOOL:
            return encode_varint(((1 if value else 0) << 1) | 1)
        if kind == KIND_REAL:
            return _F64.pack(value)
        if kind == KIND_TEXT:
            encoded = value.encode("utf-8")
            return self._length_prefixed(encoded, KIND_TEXT, field_schema)
        if kind == KIND_RECORD:
            assert field_schema.sub_schema is not None
            body = self._encode_record(value, field_schema.sub_schema)
            return self._length_prefixed(body, KIND_RECORD, field_schema)
        if kind == KIND_ARRAY:
            body_parts: list[bytes] = []
            for element in value:
                if element is None:
                    body_parts.append(encode_varint(0))
                    continue
                element_kind = kind_of(element)
                marker = {
                    KIND_INT: 1,
                    KIND_REAL: 2,
                    KIND_BOOL: 3,
                    KIND_TEXT: 4,
                    KIND_RECORD: 5,
                }[element_kind]
                body_parts.append(encode_varint(marker))
                body_parts.append(
                    self._encode_array_element(element, element_kind, field_schema)
                )
            body = b"".join(body_parts)
            return self._length_prefixed(body, KIND_ARRAY, field_schema)
        raise ExecutionError(f"cannot encode kind {kind}")

    def _encode_array_element(
        self, element: Any, kind: str, field_schema: FieldSchema
    ) -> bytes:
        """Array elements are marker-tagged, so payloads are unambiguous."""
        if kind == KIND_INT:
            return encode_varint(zigzag_encode(element) << 1)
        if kind == KIND_BOOL:
            return encode_varint(((1 if element else 0) << 1) | 1)
        if kind == KIND_REAL:
            return _F64.pack(element)
        if kind == KIND_TEXT:
            encoded = element.encode("utf-8")
            return encode_varint(len(encoded)) + encoded
        if kind == KIND_RECORD:
            assert field_schema.sub_schema is not None
            body = self._encode_record(element, field_schema.sub_schema)
            return encode_varint(len(body)) + body
        raise ExecutionError(f"cannot encode array element kind {kind}")

    def _length_prefixed(
        self, body: bytes, kind: str, field_schema: FieldSchema
    ) -> bytes:
        """Length-delimit a payload; ambiguous unions get a 1-byte marker."""
        markers = self._length_kinds(field_schema)
        if len(markers) > 1:
            body = bytes([markers.index(kind)]) + body
        return encode_varint(len(body)) + body

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------

    def deserialize(self, data: bytes) -> dict[str, Any]:
        return self._decode_record(data, 0, len(data), self.schema)

    def _decode_record(
        self, data: bytes, position: int, end: int, schema: RecordSchema
    ) -> dict[str, Any]:
        by_number = {f.number: f for f in schema.ordered_fields()}
        out: dict[str, Any] = {}
        while position < end:
            tag, position = decode_varint(data, position)
            number, wire = tag >> 3, tag & 0x7
            field_schema = by_number.get(number)
            if field_schema is None:
                position = self._skip(data, position, wire)
                continue
            value, position = self._decode_payload(data, position, wire, field_schema)
            out[field_schema.name] = value
        return out

    def _decode_payload(
        self, data: bytes, position: int, wire: int, field_schema: FieldSchema
    ) -> tuple[Any, int]:
        if wire == WIRE_VARINT:
            raw, position = decode_varint(data, position)
            if raw & 1:
                return raw >> 1 != 0, position
            return zigzag_decode(raw >> 1), position
        if wire == WIRE_64BIT:
            return _F64.unpack_from(data, position)[0], position + 8
        if wire == WIRE_LENGTH:
            length, position = decode_varint(data, position)
            end = position + length
            markers = self._length_kinds(field_schema)
            if len(markers) > 1:
                kind = markers[data[position]]
                position += 1
            else:
                kind = markers[0] if markers else KIND_TEXT
            if kind == KIND_RECORD:
                assert field_schema.sub_schema is not None
                return (
                    self._decode_record(data, position, end, field_schema.sub_schema),
                    end,
                )
            if kind == KIND_ARRAY:
                return self._decode_array(data, position, end, field_schema), end
            return data[position:end].decode("utf-8"), end
        raise ExecutionError(f"unsupported wire type {wire}")

    def _decode_array(
        self, data: bytes, position: int, end: int, field_schema: FieldSchema
    ) -> list[Any]:
        out: list[Any] = []
        while position < end:
            marker, position = decode_varint(data, position)
            if marker == 0:
                out.append(None)
            elif marker == 1:
                raw, position = decode_varint(data, position)
                out.append(zigzag_decode(raw >> 1))
            elif marker == 2:
                out.append(_F64.unpack_from(data, position)[0])
                position += 8
            elif marker == 3:
                raw, position = decode_varint(data, position)
                out.append(raw >> 1 != 0)
            elif marker == 4:
                length, position = decode_varint(data, position)
                out.append(data[position : position + length].decode("utf-8"))
                position += length
            elif marker == 5:
                length, position = decode_varint(data, position)
                assert field_schema.sub_schema is not None
                out.append(
                    self._decode_record(
                        data, position, position + length, field_schema.sub_schema
                    )
                )
                position += length
            else:
                raise ExecutionError(f"corrupt array marker {marker}")
        return out

    def _skip(self, data: bytes, position: int, wire: int) -> int:
        """Skip one value using only its wire type (the cheap walk)."""
        if wire == WIRE_VARINT:
            _value, position = decode_varint(data, position)
            return position
        if wire == WIRE_64BIT:
            return position + 8
        if wire == WIRE_LENGTH:
            length, position = decode_varint(data, position)
            return position + length
        raise ExecutionError(f"unsupported wire type {wire}")

    # ------------------------------------------------------------------
    # extraction
    # ------------------------------------------------------------------

    def extract(self, data: bytes, key: str) -> Any:
        """Sequential lookup with wire-type skips and the short-circuit on
        passing the target field number."""
        field_schema = self.schema.fields.get(key)
        if field_schema is None:
            return None
        target = field_schema.number
        position = 0
        end = len(data)
        while position < end:
            tag, position = decode_varint(data, position)
            number, wire = tag >> 3, tag & 0x7
            if number == target:
                value, _position = self._decode_payload(data, position, wire, field_schema)
                return value
            if number > target:
                return None  # fields are sorted: the key is absent
            position = self._skip(data, position, wire)
        return None

    def extract_many(self, data: bytes, keys: list[str]) -> list[Any]:
        """Extract several fields in one pass ("further key extractions are
        a simple matter" once the walk has been paid, per Appendix A)."""
        numbers = {}
        for key in keys:
            field_schema = self.schema.fields.get(key)
            if field_schema is not None:
                numbers[field_schema.number] = (key, field_schema)
        found: dict[str, Any] = {}
        position = 0
        end = len(data)
        max_number = max(numbers) if numbers else -1
        while position < end and len(found) < len(numbers):
            tag, position = decode_varint(data, position)
            number, wire = tag >> 3, tag & 0x7
            if number > max_number:
                break
            if number in numbers:
                key, field_schema = numbers[number]
                value, position = self._decode_payload(data, position, wire, field_schema)
                found[key] = value
            else:
                position = self._skip(data, position, wire)
        return [found.get(key) for key in keys]
