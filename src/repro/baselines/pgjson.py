"""The Postgres-JSON baseline (paper section 6.1).

Documents are stored as **raw JSON text** in a single column; every key
access re-parses the text.  The three deficiencies the paper measures are
all present by construction:

* **CPU-bound extraction** -- ``json_get_*`` UDFs call ``json.loads`` on
  the full document text per invocation, the cost that makes even simple
  projections CPU-bound (section 6.3);
* **multi-typed keys abort** -- Postgres's extraction operator returns
  JSON-typed data that must be cast, and a malformed cast raises; the
  ``json_get_num`` UDF faithfully raises
  :class:`~repro.rdbms.errors.TypeCastError` on a string value, so
  NoBench Q7 "cannot be executed" here (section 6.4);
* **opaque to the optimizer** -- every predicate goes through a UDF, so
  the planner falls back to default estimates and produces the
  sub-optimal GROUP BY plans of section 6.5;
* **array predicates are inexpressible** -- like the paper, Q8 is
  approximated with a (technically incorrect) LIKE over the text
  representation of the array.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Mapping

from ..rdbms.database import Database, DatabaseConfig, QueryResult
from ..rdbms.errors import TypeCastError
from ..rdbms.types import SqlType
from ..core.document import parse_document


def _navigate(document: Any, dotted_key: str) -> Any:
    node = document
    for part in dotted_key.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


class PgJsonStore:
    """Documents as JSON text in ``(id integer, data json)`` relations."""

    def __init__(self, name: str = "pgjson", config: DatabaseConfig | None = None):
        self.name = name
        self.db = Database(name, config)
        self._next_id: dict[str, int] = {}
        self._register_udfs()

    # ------------------------------------------------------------------
    # the json_* UDF family (parse-per-call on purpose)
    # ------------------------------------------------------------------

    def _register_udfs(self) -> None:
        def json_get_text(data: str | None, key: str) -> str | None:
            if data is None:
                return None
            value = _navigate(json.loads(data), key)
            if value is None:
                return None
            if isinstance(value, bool):
                return "true" if value else "false"
            if isinstance(value, (dict, list)):
                return json.dumps(value)
            return str(value)

        def json_get_num(data: str | None, key: str) -> float | None:
            """``(data->>key)::numeric`` -- raises on non-numeric text."""
            if data is None:
                return None
            value = _navigate(json.loads(data), key)
            if value is None:
                return None
            if isinstance(value, bool):
                raise TypeCastError(
                    f"invalid input syntax for type numeric: {value!r}"
                )
            if isinstance(value, (int, float)):
                return value
            if isinstance(value, str):
                try:
                    return float(value) if "." in value else int(value)
                except ValueError:
                    raise TypeCastError(
                        f"invalid input syntax for type numeric: {value!r}"
                    ) from None
            raise TypeCastError(f"cannot cast JSON {type(value).__name__} to numeric")

        def json_get_bool(data: str | None, key: str) -> bool | None:
            if data is None:
                return None
            value = _navigate(json.loads(data), key)
            if value is None:
                return None
            if isinstance(value, bool):
                return value
            raise TypeCastError(f"invalid input syntax for type boolean: {value!r}")

        def json_exists(data: str | None, key: str) -> bool:
            if data is None:
                return False
            return _navigate(json.loads(data), key) is not None

        self.db.create_function("json_get_text", json_get_text, SqlType.TEXT)
        self.db.create_function("json_get_num", json_get_num, SqlType.REAL)
        self.db.create_function("json_get_bool", json_get_bool, SqlType.BOOLEAN)
        self.db.create_function("json_exists", json_exists, SqlType.BOOLEAN)

    # ------------------------------------------------------------------
    # collections
    # ------------------------------------------------------------------

    def create_collection(self, table_name: str) -> None:
        self.db.create_table(
            table_name, [("id", SqlType.INTEGER), ("data", SqlType.JSON)]
        )
        self._next_id[table_name] = 0

    def load(
        self, table_name: str, documents: Iterable[str | Mapping[str, Any]]
    ) -> int:
        """Load documents: *only* syntax validation, no transformation.

        That is why this system loads fastest in Table 3 -- and why every
        later read pays for it.
        """
        rows: list[tuple] = []
        next_id = self._next_id[table_name]
        for raw_document in documents:
            if isinstance(raw_document, str):
                json.loads(raw_document)  # validation only
                text = raw_document
            else:
                text = json.dumps(parse_document(raw_document), separators=(",", ":"))
            rows.append((next_id, text))
            next_id += 1
        self._next_id[table_name] = next_id
        self.db.insert_rows(table_name, rows)
        return len(rows)

    def analyze(self, table_name: str) -> None:
        """ANALYZE sees only (id, data) -- no per-key statistics exist."""
        self.db.analyze(table_name)

    def storage_bytes(self, table_name: str) -> int:
        return self.db.table(table_name).total_bytes

    def query(self, sql: str) -> QueryResult:
        """Run SQL written directly against the json_* UDFs."""
        return self.db.execute(sql)

    def n_documents(self, table_name: str) -> int:
        return self._next_id.get(table_name, 0)
