"""Record schemas for the schema-based serializers of Appendix A.

Avro and Protocol Buffers are *schema-first* formats: before serializing a
document corpus, the writer needs a record schema covering every field that
can appear.  :class:`RecordSchema` infers that schema from observed
documents -- every key becomes an optional field, multi-typed keys become
unions, nested objects become sub-records, and arrays carry an element
union.  Field order is the observation order made deterministic by sorting
at freeze time (Avro decodes by position; Protocol Buffers number fields).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

#: Primitive kind tags used by both serializers.
KIND_INT = "int"
KIND_REAL = "real"
KIND_BOOL = "bool"
KIND_TEXT = "text"
KIND_RECORD = "record"
KIND_ARRAY = "array"


def kind_of(value: Any) -> str:
    if isinstance(value, bool):
        return KIND_BOOL
    if isinstance(value, int):
        return KIND_INT
    if isinstance(value, float):
        return KIND_REAL
    if isinstance(value, str):
        return KIND_TEXT
    if isinstance(value, Mapping):
        return KIND_RECORD
    if isinstance(value, (list, tuple)):
        return KIND_ARRAY
    raise TypeError(f"unsupported value type {type(value).__name__}")


@dataclass
class FieldSchema:
    """One optional field: a union of observed kinds."""

    name: str
    number: int  # position (Avro) / field number (Protobuf)
    kinds: list[str] = field(default_factory=list)  # deterministic order
    sub_schema: "RecordSchema | None" = None

    def observe_kind(self, kind: str) -> None:
        if kind not in self.kinds:
            self.kinds.append(kind)


class RecordSchema:
    """An inferred record schema: ordered optional fields."""

    def __init__(self):
        self.fields: dict[str, FieldSchema] = {}
        self._frozen = False

    def observe(self, document: Mapping[str, Any]) -> None:
        """Fold one document's shape into the schema."""
        if self._frozen:
            raise RuntimeError("schema is frozen")
        for key, value in document.items():
            if value is None:
                continue
            kind = kind_of(value)
            if key not in self.fields:
                self.fields[key] = FieldSchema(key, number=len(self.fields) + 1)
            field_schema = self.fields[key]
            field_schema.observe_kind(kind)
            if kind == KIND_RECORD:
                if field_schema.sub_schema is None:
                    field_schema.sub_schema = RecordSchema()
                field_schema.sub_schema.observe(value)
            elif kind == KIND_ARRAY:
                for element in value:
                    if isinstance(element, Mapping):
                        if field_schema.sub_schema is None:
                            field_schema.sub_schema = RecordSchema()
                        field_schema.sub_schema.observe(element)

    def freeze(self) -> "RecordSchema":
        """Fix field numbering (sorted by name) and recurse; idempotent."""
        if self._frozen:
            return self
        ordered = sorted(self.fields)
        for number, name in enumerate(ordered, start=1):
            self.fields[name].number = number
            if self.fields[name].sub_schema is not None:
                self.fields[name].sub_schema.freeze()
        self.fields = {name: self.fields[name] for name in ordered}
        self._frozen = True
        return self

    @classmethod
    def from_documents(cls, documents) -> "RecordSchema":
        schema = cls()
        for document in documents:
            schema.observe(document)
        return schema.freeze()

    def ordered_fields(self) -> list[FieldSchema]:
        return list(self.fields.values())

    def __len__(self) -> int:
        return len(self.fields)
