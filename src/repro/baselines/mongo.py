"""A MongoDB-like document store (the paper's NoSQL comparator).

Implements the slice of MongoDB 2.4 behaviour the benchmark exercises:

* collections of BSON-encoded documents (:mod:`repro.baselines.bson`);
* ``find`` with an operator filter language (``$gt``/``$gte``/``$lt``/
  ``$lte``/``$ne``/``$in``/``$exists``), dotted paths, and Mongo's
  array-equality semantics (an equality filter on an array field matches
  when any element matches -- NoBench Q8);
* an ``aggregate`` pipeline with ``$match``, ``$group``, ``$project``,
  ``$unwind``, ``$sort`` and ``$limit``;
* ``update_many`` with ``$set`` -- **no WAL and no transactions**, the
  durability discount the update experiment (Figure 8) is about;
* **no native join**: the paper's Q11 runs as client-side code that
  materialises explicit intermediate collections; those intermediates are
  charged against a shared disk budget, reproducing the out-of-disk
  failure at the larger scale (section 6.5).

Range predicates **precompute the tested value once per document** before
applying both bounds, the behaviour that lets MongoDB beat Sinew on the
in-memory Q7 (section 6.4).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping

from ..rdbms.cost import DiskBudget
from ..rdbms.errors import ExecutionError
from . import bson

_COMPARISON_OPERATORS = frozenset(
    {"$gt", "$gte", "$lt", "$lte", "$ne", "$in", "$exists", "$eq"}
)


@dataclass
class MongoStats:
    """Activity counters for one MongoDB-like database."""

    documents_scanned: int = 0
    bytes_scanned: int = 0
    documents_written: int = 0


class MongoDatabase:
    """A database of named collections sharing one disk budget."""

    def __init__(self, name: str = "mongo", disk_budget_bytes: int | None = None):
        self.name = name
        self.disk = DiskBudget(disk_budget_bytes)
        self.stats = MongoStats()
        self._collections: dict[str, MongoCollection] = {}

    def collection(self, name: str) -> "MongoCollection":
        if name not in self._collections:
            self._collections[name] = MongoCollection(name, self)
        return self._collections[name]

    def drop_collection(self, name: str) -> None:
        collection = self._collections.pop(name, None)
        if collection is not None:
            self.disk.release(collection.total_bytes)

    def total_bytes(self) -> int:
        return sum(c.total_bytes for c in self._collections.values())


class MongoCollection:
    """One collection of BSON documents."""

    def __init__(self, name: str, database: MongoDatabase):
        self.name = name
        self.database = database
        self._documents: list[bytes] = []
        self.total_bytes = 0

    def __len__(self) -> int:
        return len(self._documents)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def insert_many(self, documents: Iterable[Mapping[str, Any]]) -> int:
        inserted = 0
        for document in documents:
            encoded = bson.encode(document)
            self._documents.append(encoded)
            self.total_bytes += len(encoded)
            self.database.disk.charge(len(encoded))
            self.database.stats.documents_written += 1
            inserted += 1
        return inserted

    def update_many(
        self, filter: Mapping[str, Any], update: Mapping[str, Any]
    ) -> int:
        """``$set`` updates, applied in place with no transactional log."""
        set_fields = update.get("$set")
        if not isinstance(set_fields, Mapping):
            raise ExecutionError("update_many requires a {'$set': {...}} document")
        predicate = _compile_filter(filter)
        updated = 0
        for index, encoded in enumerate(self._documents):
            self.database.stats.documents_scanned += 1
            self.database.stats.bytes_scanned += len(encoded)
            if not predicate(encoded):
                continue
            document = bson.decode(encoded)
            for dotted, value in set_fields.items():
                _set_path(document, dotted, value)
            replacement = bson.encode(document)
            delta = len(replacement) - len(encoded)
            self._documents[index] = replacement
            self.total_bytes += delta
            if delta > 0:
                self.database.disk.charge(delta)
            self.database.stats.documents_written += 1
            updated += 1
        return updated

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def scan(self) -> Iterator[bytes]:
        for encoded in self._documents:
            self.database.stats.documents_scanned += 1
            self.database.stats.bytes_scanned += len(encoded)
            yield encoded

    def find(
        self,
        filter: Mapping[str, Any] | None = None,
        projection: Iterable[str] | None = None,
    ) -> list[dict[str, Any]]:
        """Filter + optional projection, like ``db.coll.find(f, p)``."""
        predicate = _compile_filter(filter or {})
        fields = list(projection) if projection is not None else None
        out: list[dict[str, Any]] = []
        for encoded in self.scan():
            if not predicate(encoded):
                continue
            if fields is None:
                out.append(bson.decode(encoded))
            else:
                out.append({field: bson.get(encoded, field) for field in fields})
        return out

    def count(self, filter: Mapping[str, Any] | None = None) -> int:
        predicate = _compile_filter(filter or {})
        return sum(1 for encoded in self.scan() if predicate(encoded))

    def aggregate(self, pipeline: list[Mapping[str, Any]]) -> list[dict[str, Any]]:
        """Evaluate an aggregation pipeline."""
        current: list[dict[str, Any]] | None = None
        for stage in pipeline:
            if len(stage) != 1:
                raise ExecutionError("each pipeline stage must have one operator")
            operator, spec = next(iter(stage.items()))
            if operator == "$match" and current is None:
                current = self.find(spec)
            else:
                if current is None:
                    current = [bson.decode(encoded) for encoded in self.scan()]
                current = _apply_stage(operator, spec, current)
        if current is None:
            current = [bson.decode(encoded) for encoded in self.scan()]
        return current


# ---------------------------------------------------------------------------
# filter language
# ---------------------------------------------------------------------------


def _compile_filter(filter: Mapping[str, Any]) -> Callable[[bytes], bool]:
    """Compile a filter document into a predicate over encoded documents.

    Field values are extracted **once** per document, then every operator
    for that field is applied to the precomputed value.
    """
    conditions: list[tuple[str, list[Callable[[Any], bool]], bool]] = []
    for dotted, condition in filter.items():
        if isinstance(condition, Mapping) and any(
            key in _COMPARISON_OPERATORS for key in condition
        ):
            operators = [_compile_operator(op, operand) for op, operand in condition.items()]
            needs_existence_only = list(condition.keys()) == ["$exists"]
            conditions.append((dotted, operators, needs_existence_only))
        else:
            conditions.append((dotted, [_equality(condition)], False))

    def predicate(encoded: bytes) -> bool:
        for dotted, operators, existence_only in conditions:
            if existence_only:
                value: Any = bson.has(encoded, dotted)
            else:
                value = bson.get(encoded, dotted)
            for operator in operators:
                if not operator(value):
                    return False
        return True

    return predicate


def _equality(expected: Any) -> Callable[[Any], bool]:
    def check(value: Any) -> bool:
        if isinstance(value, list):
            # Mongo array-equality semantics: match if any element matches.
            return any(_values_equal(element, expected) for element in value)
        return _values_equal(value, expected)

    return check


def _values_equal(left: Any, right: Any) -> bool:
    if _is_number(left) and _is_number(right):
        return float(left) == float(right)
    return type(left) is type(right) and left == right


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _compile_operator(op: str, operand: Any) -> Callable[[Any], bool]:
    if op == "$eq":
        return _equality(operand)
    if op == "$ne":
        equal = _equality(operand)
        return lambda value: not equal(value)
    if op == "$in":
        checks = [_equality(item) for item in operand]
        return lambda value: any(check(value) for check in checks)
    if op == "$exists":
        wanted = bool(operand)
        return lambda value: bool(value) is wanted if isinstance(value, bool) else (
            (value is not None) is wanted
        )
    if op in ("$gt", "$gte", "$lt", "$lte"):
        def ordered(value: Any, op: str = op, operand: Any = operand) -> bool:
            if value is None:
                return False
            if _is_number(value) != _is_number(operand):
                return False
            if not _is_number(value) and type(value) is not type(operand):
                return False
            try:
                if op == "$gt":
                    return value > operand
                if op == "$gte":
                    return value >= operand
                if op == "$lt":
                    return value < operand
                return value <= operand
            except TypeError:
                return False

        return ordered
    raise ExecutionError(f"unsupported filter operator {op!r}")


def _get_path(document: Mapping[str, Any], dotted: str) -> Any:
    node: Any = document
    for part in dotted.split("."):
        if not isinstance(node, Mapping) or part not in node:
            return None
        node = node[part]
    return node


def _set_path(document: dict, dotted: str, value: Any) -> None:
    parts = dotted.split(".")
    node = document
    for part in parts[:-1]:
        child = node.get(part)
        if not isinstance(child, dict):
            child = {}
            node[part] = child
        node = child
    node[parts[-1]] = value


# ---------------------------------------------------------------------------
# aggregation stages
# ---------------------------------------------------------------------------


def _apply_stage(
    operator: str, spec: Any, documents: list[dict[str, Any]]
) -> list[dict[str, Any]]:
    if operator == "$match":
        conditions = list(spec.items())

        def matches(document: dict) -> bool:
            for dotted, condition in conditions:
                value = _get_path(document, dotted)
                if isinstance(condition, Mapping) and any(
                    key in _COMPARISON_OPERATORS for key in condition
                ):
                    for op, operand in condition.items():
                        if not _compile_operator(op, operand)(value):
                            return False
                elif isinstance(value, list):
                    if not any(_values_equal(e, condition) for e in value):
                        return False
                elif not _values_equal(value, condition):
                    return False
            return True

        return [document for document in documents if matches(document)]

    if operator == "$project":
        fields = [dotted for dotted, keep in spec.items() if keep]
        return [
            {dotted: _get_path(document, dotted) for dotted in fields}
            for document in documents
        ]

    if operator == "$unwind":
        dotted = spec.lstrip("$")
        out = []
        for document in documents:
            values = _get_path(document, dotted)
            if not isinstance(values, list):
                continue
            for element in values:
                clone = dict(document)
                _set_path(clone, dotted, element)
                out.append(clone)
        return out

    if operator == "$group":
        key_spec = spec["_id"]
        accumulators = {name: rule for name, rule in spec.items() if name != "_id"}
        groups: dict[Any, dict[str, Any]] = {}
        states: dict[Any, dict[str, list]] = {}
        for document in documents:
            key = (
                _get_path(document, key_spec.lstrip("$"))
                if isinstance(key_spec, str)
                else key_spec
            )
            hashable = key if not isinstance(key, (list, dict)) else repr(key)
            if hashable not in groups:
                groups[hashable] = {"_id": key}
                states[hashable] = {name: [] for name in accumulators}
            for name, rule in accumulators.items():
                op, operand = next(iter(rule.items()))
                value = (
                    _get_path(document, operand.lstrip("$"))
                    if isinstance(operand, str) and operand.startswith("$")
                    else operand
                )
                states[hashable][name].append((op, value))
        for hashable, group in groups.items():
            for name, entries in states[hashable].items():
                group[name] = _finalise_accumulator(entries)
        return list(groups.values())

    if operator == "$sort":
        out = list(documents)
        for dotted, direction in reversed(list(spec.items())):
            out.sort(
                key=lambda document: _sort_key(_get_path(document, dotted)),
                reverse=direction < 0,
            )
        return out

    if operator == "$limit":
        return documents[: int(spec)]

    if operator == "$count":
        return [{spec: len(documents)}]

    raise ExecutionError(f"unsupported pipeline stage {operator!r}")


def _sort_key(value: Any) -> tuple:
    if value is None:
        return (0, "", 0)
    if _is_number(value):
        return (1, "", float(value))
    return (2, str(value), 0)


def _finalise_accumulator(entries: list[tuple[str, Any]]) -> Any:
    if not entries:
        return None
    op = entries[0][0]
    values = [value for _op, value in entries if value is not None]
    if op == "$sum":
        numeric = [v for v in values if _is_number(v)]
        return sum(numeric)
    if op == "$avg":
        numeric = [v for v in values if _is_number(v)]
        return sum(numeric) / len(numeric) if numeric else None
    if op == "$min":
        return min(values) if values else None
    if op == "$max":
        return max(values) if values else None
    if op == "$first":
        return values[0] if values else None
    raise ExecutionError(f"unsupported accumulator {op!r}")


# ---------------------------------------------------------------------------
# client-side join (MongoDB has no native join; section 6.5)
# ---------------------------------------------------------------------------


def client_side_join(
    database: MongoDatabase,
    left: MongoCollection,
    right: MongoCollection,
    left_key: str,
    right_key: str,
    left_filter: Mapping[str, Any] | None = None,
    output_name: str = "_join_out",
) -> MongoCollection:
    """Emulate the paper's user-code join: explicit intermediate collections.

    The MapReduce-style recipe MongoDB 2.4 users had to write:

    1. extract-and-spill the (filtered) left side's join keys with their
       documents into a scratch collection;
    2. extract-and-spill the join key of **every right-side document** into
       a second scratch collection (the right side cannot be pre-filtered:
       the predicate is on the left), tagging each key with its document;
    3. merge the two tagged streams into the output collection.

    Step 2 re-materialises essentially the whole collection, which is why
    the join is both an order of magnitude slower than an RDBMS join and
    "required so much intermediate storage that it could not complete" at
    the larger scale (section 6.5).  All scratch collections are charged
    against the shared disk budget.
    """
    # phase 1: filtered left side -> keyed scratch collection
    keys_collection = database.collection(output_name + "_left")
    predicate = _compile_filter(left_filter or {})
    spilled = []
    for encoded in left.scan():
        if not predicate(encoded):
            continue
        document = bson.decode(encoded)
        spilled.append({"key": _get_path(document, left_key), "doc": document})
    keys_collection.insert_many(spilled)

    # phase 2: the whole right side -> keyed scratch collection
    right_keys = database.collection(output_name + "_right")
    batch: list[dict] = []
    for encoded in right.scan():
        document = bson.decode(encoded)
        batch.append({"key": _get_path(document, right_key), "doc": document})
        if len(batch) >= 1000:
            right_keys.insert_many(batch)
            batch.clear()
    if batch:
        right_keys.insert_many(batch)

    # phase 3: merge the tagged streams into the output collection
    lookup: dict[Any, list[dict]] = {}
    for entry in keys_collection.find():
        lookup.setdefault(entry["key"], []).append(entry["doc"])
    output = database.collection(output_name)
    batch = []
    for entry in right_keys.find():
        for left_document in lookup.get(entry["key"], ()):
            batch.append({"left": left_document, "right": entry["doc"]})
            if len(batch) >= 1000:
                output.insert_many(batch)
                batch.clear()
    if batch:
        output.insert_many(batch)
    return output
