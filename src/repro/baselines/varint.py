"""LEB128 varint and ZigZag helpers shared by the Avro-like and
Protocol-Buffers-like serializers (Appendix A comparators)."""

from __future__ import annotations


def encode_varint(value: int) -> bytes:
    """Unsigned LEB128."""
    if value < 0:
        raise ValueError("encode_varint needs a non-negative integer")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, position: int) -> tuple[int, int]:
    """Decode an unsigned LEB128 at ``position``; returns (value, next)."""
    result = 0
    shift = 0
    while True:
        byte = data[position]
        position += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, position
        shift += 7


def zigzag_encode(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def zigzag_decode(value: int) -> int:
    return (value >> 1) ^ -(value & 1)
