"""A BSON-like sequential binary document format (the MongoDB baseline).

Faithful to the properties the paper measures, not to the full BSON spec:

* **sequential layout** -- elements are stored one after another as
  ``type byte | key cstring | value``, so extracting a key requires
  walking elements from the front (no random access);
* **key-existence is cheaper than extraction** -- the walk can *skip*
  values using their length information without decoding them, which is
  why MongoDB's sparse projections (NoBench Q3/Q4) close the gap on Sinew
  while dense projections (Q1/Q2) do not (paper section 6.3);
* **type bloat** -- every element repeats its full key string and a type
  byte, so the encoding is usually *larger* than the input JSON
  ("MongoDB states in its specification that its BSON serialization may
  in fact increase data size", section 6.2).
"""

from __future__ import annotations

import struct
from typing import Any, Iterator, Mapping

from ..rdbms.errors import ExecutionError

_I32 = struct.Struct("<i")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")

TYPE_DOUBLE = 0x01
TYPE_STRING = 0x02
TYPE_DOCUMENT = 0x03
TYPE_ARRAY = 0x04
TYPE_BOOL = 0x08
TYPE_NULL = 0x0A
TYPE_INT64 = 0x12


def encode(document: Mapping[str, Any]) -> bytes:
    """Encode a document: ``i32 total_size | elements... | 0x00``."""
    body = b"".join(_encode_element(key, value) for key, value in document.items())
    total = 4 + len(body) + 1
    return _I32.pack(total) + body + b"\x00"


def _encode_element(key: str, value: Any) -> bytes:
    name = key.encode("utf-8") + b"\x00"
    if value is None:
        return bytes([TYPE_NULL]) + name
    if isinstance(value, bool):
        return bytes([TYPE_BOOL]) + name + (b"\x01" if value else b"\x00")
    if isinstance(value, int):
        return bytes([TYPE_INT64]) + name + _I64.pack(value)
    if isinstance(value, float):
        return bytes([TYPE_DOUBLE]) + name + _F64.pack(value)
    if isinstance(value, str):
        encoded = value.encode("utf-8") + b"\x00"
        return bytes([TYPE_STRING]) + name + _I32.pack(len(encoded)) + encoded
    if isinstance(value, dict):
        return bytes([TYPE_DOCUMENT]) + name + encode(value)
    if isinstance(value, (list, tuple)):
        as_document = {str(index): element for index, element in enumerate(value)}
        return bytes([TYPE_ARRAY]) + name + encode(as_document)
    raise ExecutionError(f"cannot BSON-encode {type(value).__name__}")


def _iter_elements(data: bytes) -> Iterator[tuple[int, str, int, int]]:
    """Yield ``(type, key, value_start, value_end)`` walking sequentially."""
    (total,) = _I32.unpack_from(data, 0)
    position = 4
    end = total - 1
    while position < end:
        element_type = data[position]
        position += 1
        key_end = data.index(b"\x00", position)
        key = data[position:key_end].decode("utf-8")
        position = key_end + 1
        value_start = position
        position = _skip_value(data, position, element_type)
        yield element_type, key, value_start, position


def _skip_value(data: bytes, position: int, element_type: int) -> int:
    """Advance past a value without decoding it (the cheap existence walk)."""
    if element_type == TYPE_NULL:
        return position
    if element_type == TYPE_BOOL:
        return position + 1
    if element_type in (TYPE_INT64, TYPE_DOUBLE):
        return position + 8
    if element_type == TYPE_STRING:
        (length,) = _I32.unpack_from(data, position)
        return position + 4 + length
    if element_type in (TYPE_DOCUMENT, TYPE_ARRAY):
        (length,) = _I32.unpack_from(data, position)
        return position + length
    raise ExecutionError(f"corrupt BSON: unknown type byte {element_type:#x}")


def _decode_value(data: bytes, start: int, end: int, element_type: int) -> Any:
    if element_type == TYPE_NULL:
        return None
    if element_type == TYPE_BOOL:
        return data[start] != 0
    if element_type == TYPE_INT64:
        return _I64.unpack_from(data, start)[0]
    if element_type == TYPE_DOUBLE:
        return _F64.unpack_from(data, start)[0]
    if element_type == TYPE_STRING:
        return data[start + 4 : end - 1].decode("utf-8")
    if element_type == TYPE_DOCUMENT:
        return decode(data[start:end])
    if element_type == TYPE_ARRAY:
        as_document = decode(data[start:end])
        return [as_document[str(index)] for index in range(len(as_document))]
    raise ExecutionError(f"corrupt BSON: unknown type byte {element_type:#x}")


def decode(data: bytes) -> dict[str, Any]:
    """Fully decode a BSON document back into a dict."""
    out: dict[str, Any] = {}
    for element_type, key, start, end in _iter_elements(data):
        out[key] = _decode_value(data, start, end, element_type)
    return out


def get(data: bytes, dotted_key: str) -> Any:
    """Extract one (dotted) key: a sequential walk decoding only the match.

    This is the expensive-per-record operation the paper attributes
    MongoDB's dense-projection slowdown to.
    """
    head, separator, rest = dotted_key.partition(".")
    for element_type, key, start, end in _iter_elements(data):
        if key != head:
            continue
        if not separator:
            return _decode_value(data, start, end, element_type)
        if element_type == TYPE_DOCUMENT:
            return get(data[start:end], rest)
        return None
    return None


def has(data: bytes, dotted_key: str) -> bool:
    """Key-existence check: sequential walk that skips values undecoded.

    "Checking whether or not a key exists in BSON is significantly faster
    than extracting the key" (paper section 6.3).
    """
    head, separator, rest = dotted_key.partition(".")
    for element_type, key, start, end in _iter_elements(data):
        if key != head:
            continue
        if not separator:
            return element_type != TYPE_NULL
        if element_type == TYPE_DOCUMENT:
            return has(data[start:end], rest)
        return False
    return False


def size(data: bytes) -> int:
    """Encoded size in bytes."""
    return len(data)
