"""The paper's comparison systems (section 6.1) and the Appendix A
serialization comparators.

* :mod:`repro.baselines.mongo` -- a MongoDB-like document store over a
  BSON-like sequential binary format (:mod:`repro.baselines.bson`);
* :mod:`repro.baselines.eav` -- the entity-attribute-value shredder;
* :mod:`repro.baselines.pgjson` -- Postgres-style JSON text columns;
* :mod:`repro.baselines.avro_like` / :mod:`repro.baselines.protobuf_like`
  -- miniature Avro and Protocol Buffers re-implementations preserving
  the access-pattern properties Appendix A compares.
"""

from .avro_like import AvroLikeSerializer
from .eav import EavStore
from .jsonb import PgJsonbStore
from .mongo import MongoCollection, MongoDatabase, client_side_join
from .pgjson import PgJsonStore
from .protobuf_like import ProtobufLikeSerializer
from .record_schema import RecordSchema

__all__ = [
    "AvroLikeSerializer",
    "EavStore",
    "MongoCollection",
    "MongoDatabase",
    "PgJsonStore",
    "PgJsonbStore",
    "ProtobufLikeSerializer",
    "RecordSchema",
    "client_side_join",
]
