"""The Entity-Attribute-Value shredding baseline (paper section 6.1).

Each document is flattened into individual key-value pairs and stored as
``(object_id, key_name, type, str_val, num_val, bool_val)`` tuples in a
single 5-value-column relation on the same RDBMS Sinew uses -- the paper's
"common target for systems that shred XML, key-value, or other
semi-structured data".

Consequences the experiments measure:

* ~20+ tuples per input record, so the relation is far larger than the
  input (Table 3: 22 GB for a 10.5 GB dataset);
* projecting k keys of an object requires a k-way self-join on
  ``object_id`` (sections 6.3/6.6);
* reconstructing whole objects (``SELECT *``-style selections, Q8/Q9) and
  the Q11 join build giant intermediates, which exhaust the disk budget
  at scale exactly as in sections 6.4-6.5.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from ..rdbms.database import Database, DatabaseConfig, QueryResult
from ..rdbms.types import SqlType
from ..core.document import flatten, parse_document

#: Scratch amplification of the mapping layer's object-reconstruction spool.
#: Reassembling objects from EAV tuples stages the matched tuples through
#: sort runs / hash partitions in scratch relations; the factor models the
#: ratio of peak scratch bytes to final result bytes observed for
#: shredder-style reconstruction (sort runs + partition files + row
#: headers).  It is what makes NoBench Q8/Q9/Q11 exhaust the disk budget at
#: the paper's larger scale (sections 6.4-6.5) while cheaper queries fit.
RECONSTRUCTION_SPOOL_FACTOR = 50

#: Modelled scratch bytes per reconstructed EAV tuple (tuple header plus
#: the average key/value payload).
SPOOL_BYTES_PER_TUPLE = 90


class EavStore:
    """Documents shredded into an EAV relation, plus a mapping layer."""

    #: Columns of the EAV relation (one value column per primitive type).
    COLUMNS = [
        ("oid", SqlType.INTEGER),
        ("key_name", SqlType.TEXT),
        ("value_type", SqlType.TEXT),
        ("str_val", SqlType.TEXT),
        ("num_val", SqlType.REAL),
        ("bool_val", SqlType.BOOLEAN),
    ]

    def __init__(self, name: str = "eav", config: DatabaseConfig | None = None):
        self.name = name
        self.db = Database(name, config)
        self._next_oid: dict[str, int] = {}
        #: key -> dominant value_type, the mapping layer's own metadata
        #: (it must know which value column holds each key's data).
        self._key_types: dict[str, dict[str, str]] = {}

    # ------------------------------------------------------------------
    # schema + loading
    # ------------------------------------------------------------------

    def create_collection(self, table_name: str) -> None:
        self.db.create_table(self._relation(table_name), self.COLUMNS)
        self._next_oid[table_name] = 0

    def _relation(self, table_name: str) -> str:
        return f"{table_name}_eav"

    def load(
        self, table_name: str, documents: Iterable[str | Mapping[str, Any]]
    ) -> int:
        """Shred and insert documents; returns the number of EAV tuples."""
        relation = self._relation(table_name)
        key_types = self._key_types.setdefault(table_name, {})
        rows: list[tuple] = []
        oid = self._next_oid[table_name]
        for raw_document in documents:
            document = parse_document(raw_document)
            for dotted, value in flatten(document):
                if isinstance(value, dict):
                    continue  # sub-keys carry the data; the object itself is implicit
                if isinstance(value, (list, tuple)):
                    for element in value:
                        row = self._shred_one(oid, dotted, element)
                        key_types.setdefault(dotted, row[2])
                        rows.append(row)
                else:
                    row = self._shred_one(oid, dotted, value)
                    key_types.setdefault(dotted, row[2])
                    rows.append(row)
            oid += 1
        self._next_oid[table_name] = oid
        self.db.insert_rows(relation, rows)
        return len(rows)

    @staticmethod
    def _shred_one(oid: int, key_name: str, value: Any) -> tuple:
        if isinstance(value, bool):
            return (oid, key_name, "bool", None, None, value)
        if isinstance(value, (int, float)):
            return (oid, key_name, "num", None, float(value), None)
        return (oid, key_name, "str", None if value is None else str(value), None, None)

    def n_documents(self, table_name: str) -> int:
        return self._next_oid.get(table_name, 0)

    def analyze(self, table_name: str) -> None:
        self.db.analyze(self._relation(table_name))

    def storage_bytes(self, table_name: str) -> int:
        return self.db.table(self._relation(table_name)).total_bytes

    # ------------------------------------------------------------------
    # the mapping layer: logical operations -> EAV SQL
    # ------------------------------------------------------------------

    def project(self, table_name: str, keys: list[str]) -> QueryResult:
        """Project ``keys`` for every object: a k-way self-join on oid.

        "The EAV system performs poorly because it adds a join on top of
        the original projection operation in order to reconstruct the
        objects from the set of flattened EAV tuples" (section 6.3).
        """
        relation = self._relation(table_name)
        key_types = self._key_types.get(table_name, {})
        aliases = [f"e{index}" for index in range(len(keys))]
        select = ", ".join(
            f"{alias}.{self._value_column(key_types.get(key))} AS \"{key}\""
            for alias, key in zip(aliases, keys)
        )
        from_clause = ", ".join(f"{relation} {alias}" for alias in aliases)
        conditions = [
            f"{alias}.key_name = '{_escape(key)}'"
            for alias, key in zip(aliases, keys)
        ]
        for alias in aliases[1:]:
            conditions.append(f"{aliases[0]}.oid = {alias}.oid")
        sql = f"SELECT {select} FROM {from_clause} WHERE {' AND '.join(conditions)}"
        return self.db.execute(sql)

    def project_single(self, table_name: str, key: str) -> QueryResult:
        """Single-key projection: no join needed, one filtered scan."""
        relation = self._relation(table_name)
        return self.db.execute(
            f"SELECT str_val, num_val, bool_val FROM {relation} "
            f"WHERE key_name = '{_escape(key)}'"
        )

    def matching_oids(
        self, table_name: str, key: str, predicate_sql: str
    ) -> QueryResult:
        """Object ids whose ``key`` satisfies a SQL predicate over the value
        columns (e.g. ``num_val BETWEEN 1 AND 2`` or ``str_val = 'x'``)."""
        relation = self._relation(table_name)
        return self.db.execute(
            f"SELECT oid FROM {relation} "
            f"WHERE key_name = '{_escape(key)}' AND ({predicate_sql})"
        )

    def select_objects(
        self, table_name: str, key: str, predicate_sql: str
    ) -> QueryResult:
        """Reconstruct every object matching a predicate (Q5-Q9 shape).

        Implemented as the EAV self-join the mapping layer must generate:
        all tuples of every object having a matching tuple.  The join's
        intermediate state is what blows the disk budget at scale.
        """
        relation = self._relation(table_name)
        sql = (
            f"SELECT a.oid, a.key_name, a.value_type, a.str_val, a.num_val, a.bool_val "
            f"FROM {relation} a, {relation} b "
            f"WHERE a.oid = b.oid AND b.key_name = '{_escape(key)}' "
            f"AND ({predicate_sql})"
        )
        result = self.db.execute(sql)
        self._spool(len(result.rows))
        return result

    def _spool(self, n_tuples: int) -> None:
        """Charge (then release) the reconstruction scratch for ``n_tuples``.

        Raises DiskFullError when the scratch exceeds the remaining disk
        budget -- the paper's EAV failure mode on Q8/Q9/Q11.
        """
        scratch = n_tuples * SPOOL_BYTES_PER_TUPLE * RECONSTRUCTION_SPOOL_FACTOR
        self.db.disk.charge(scratch)
        self.db.disk.release(scratch)

    def reconstruct(self, rows: Iterable[tuple]) -> dict[int, dict[str, Any]]:
        """Fold ``select_objects`` output back into documents."""
        documents: dict[int, dict[str, Any]] = {}
        for oid, key_name, value_type, str_val, num_val, bool_val in rows:
            value: Any
            if value_type == "num":
                value = num_val
            elif value_type == "bool":
                value = bool_val
            else:
                value = str_val
            document = documents.setdefault(oid, {})
            if key_name in document:
                existing = document[key_name]
                if isinstance(existing, list):
                    existing.append(value)
                else:
                    document[key_name] = [existing, value]
            else:
                document[key_name] = value
        return documents

    def sum_group_by(
        self, table_name: str, sum_key: str, group_key: str, predicate_sql: str
    ) -> QueryResult:
        """Aggregation (Q10 shape): two key streams joined on oid."""
        relation = self._relation(table_name)
        sql = (
            f"SELECT g.num_val AS group_key, SUM(s.num_val) AS total "
            f"FROM {relation} s, {relation} g "
            f"WHERE s.oid = g.oid "
            f"AND s.key_name = '{_escape(sum_key)}' "
            f"AND g.key_name = '{_escape(group_key)}' "
            f"AND ({predicate_sql}) "
            f"GROUP BY g.num_val"
        )
        return self.db.execute(sql)

    def join(
        self,
        table_name: str,
        left_key: str,
        right_key: str,
        left_predicate_sql: str,
        projected_key: str,
    ) -> QueryResult:
        """Object-level join (Q11 shape): a 4-way self-join on the relation.

        left objects (filtered) joined to right objects on
        ``left.left_key = right.right_key``.  Because NoBench Q11 is
        ``SELECT *``, the mapping layer must reconstruct *both* joined
        objects, so every joined pair spools 2 x tuples-per-object of
        scratch on top of the 4-way self-join.
        """
        relation = self._relation(table_name)
        sql = (
            f"SELECT l.oid, r.oid, p.str_val "
            f"FROM {relation} l, {relation} f, {relation} r, {relation} p "
            f"WHERE l.key_name = '{_escape(left_key)}' "
            f"AND r.key_name = '{_escape(right_key)}' "
            f"AND l.str_val = r.str_val "
            f"AND f.oid = l.oid AND ({left_predicate_sql}) "
            f"AND p.oid = r.oid AND p.key_name = '{_escape(projected_key)}'"
        )
        result = self.db.execute(sql)
        tuples_per_object = self._avg_tuples_per_object(table_name)
        self._spool(len(result.rows) * 2 * tuples_per_object)
        return result

    def _avg_tuples_per_object(self, table_name: str) -> int:
        n_objects = max(1, self.n_documents(table_name))
        n_tuples = len(self.db.table(self._relation(table_name)))
        return max(1, n_tuples // n_objects)

    def update(
        self, table_name: str, set_key: str, set_value: str, where_key: str,
        where_value: str,
    ) -> int:
        """The Figure 8 update task: find oids by predicate, set a key.

        Requires a self-join (oid lookup, then the write), sharing the
        transactional overhead of the other RDBMS systems.
        """
        relation = self._relation(table_name)
        matching = self.db.execute(
            f"SELECT oid FROM {relation} "
            f"WHERE key_name = '{_escape(where_key)}' "
            f"AND str_val = '{_escape(where_value)}'"
        )
        oids = sorted(row[0] for row in matching.rows)
        updated = 0
        for oid in oids:
            existing = self.db.execute(
                f"SELECT oid FROM {relation} "
                f"WHERE oid = {oid} AND key_name = '{_escape(set_key)}'"
            )
            if existing.rows:
                self.db.execute(
                    f"UPDATE {relation} SET str_val = '{_escape(set_value)}' "
                    f"WHERE oid = {oid} AND key_name = '{_escape(set_key)}'"
                )
            else:
                self.db.execute(
                    f"INSERT INTO {relation} VALUES "
                    f"({oid}, '{_escape(set_key)}', 'str', '{_escape(set_value)}', "
                    f"NULL, NULL)"
                )
            updated += 1
        return updated

    @staticmethod
    def _value_column(value_type: str | None) -> str:
        if value_type == "num":
            return "num_val"
        if value_type == "bool":
            return "bool_val"
        return "str_val"


def _escape(text: str) -> str:
    return text.replace("'", "''")
