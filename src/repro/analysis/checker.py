"""``CHECK``-style integrity pass: audit catalog vs. storage consistency.

Sinew's correctness hinges on invariants that span two layers -- the
catalog (global attribute dictionary + per-table column states) and the
physical storage (column reservoir bytes + materialized physical columns).
The loader, materializer, and UPDATE path each maintain a slice of them;
this module audits the whole set after the fact, the way a relational
``CHECK`` constraint or ``amcheck`` would:

* **SNW303** every reservoir document has a well-formed serialization
  header (count, strictly-sorted attribute ids, monotonic offsets, body
  length consistent with the document size);
* **SNW304** every attribute id stored in a document exists in the global
  dictionary;
* **SNW301** per-attribute occurrence counts in the catalog agree with the
  rows actually stored (reservoir presence + non-NULL physical cells).
  Counts may legitimately run *high* after deletes (the loader never
  decrements), so a stale-high count is a warning while an under-count --
  impossible under correct maintenance -- is an error;
* **SNW302** a column marked materialized-and-clean has no residue left in
  the reservoir (the mover removes values as it copies them out);
* **SNW306** a column marked materialized *and clean* has its physical
  column present in the table schema (a **dirty** materialized column
  without one is a legal mid-flight state: the materializer allocates the
  physical column in its first step, and until the dirty bit clears every
  query goes through the ``COALESCE(physical, extract(...))`` fallback);
* **SNW305** the catalog's document count agrees with the number of live
  heap rows (same stale-high rule as SNW301).

Row-level findings (SNW303/SNW304/SNW302) are capped at
``MAX_EXAMPLES_PER_CODE`` detailed diagnostics per code, followed by one
summary diagnostic, so a badly corrupted table still produces a readable
report.
"""

from __future__ import annotations

import struct
from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from ..rdbms.types import SqlType
from . import diagnostics as d
from .diagnostics import Diagnostic, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.catalog import SinewCatalog
    from ..rdbms.database import Database

_RESERVOIR_COLUMN = "data"
_U32 = struct.Struct("<I")

#: detailed row-level diagnostics emitted per code before summarizing
MAX_EXAMPLES_PER_CODE = 5


@dataclass(frozen=True)
class CheckReport:
    """Outcome of one table's integrity check."""

    table_name: str
    rows_scanned: int
    findings: tuple[Diagnostic, ...]

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(f for f in self.findings if f.is_error)

    def __str__(self) -> str:
        status = "ok" if self.ok else f"{len(self.findings)} finding(s)"
        return (
            f"check {self.table_name!r}: {self.rows_scanned} row(s) "
            f"scanned, {status}"
        )


def validate_document(data: object) -> str | None:
    """First structural problem in one serialized document, or None.

    Validates the header invariants of the Sinew serialization format
    without decoding any values: a u32 attribute count, ``n`` strictly
    ascending attribute ids, ``n + 1`` monotonically non-decreasing value
    offsets starting at zero, and a final offset equal to the body size.
    """
    if not isinstance(data, (bytes, bytearray)):
        return f"reservoir cell holds {type(data).__name__}, not bytes"
    if len(data) < 4:
        return "truncated: document shorter than the attribute count word"
    (n,) = _U32.unpack_from(data, 0)
    header_end = 4 + 4 * n + 4 * (n + 1) if n else 4
    if header_end > len(data):
        return (
            f"header claims {n} attribute(s) but the document is only "
            f"{len(data)} byte(s)"
        )
    if n == 0:
        return None
    ids = struct.unpack_from(f"<{n}I", data, 4)
    for left, right in zip(ids, ids[1:]):
        if left >= right:
            return (
                "attribute ids are not strictly ascending "
                f"({left} then {right}); binary search is broken"
            )
    offsets = struct.unpack_from(f"<{n + 1}I", data, 4 + 4 * n)
    if offsets[0] != 0:
        return f"first value offset is {offsets[0]}, expected 0"
    for left, right in zip(offsets, offsets[1:]):
        if left > right:
            return f"value offsets are not monotonic ({left} then {right})"
    body = len(data) - header_end
    if offsets[-1] != body:
        return (
            f"body length mismatch: header says {offsets[-1]} byte(s), "
            f"document holds {body}"
        )
    return None


def _document_attribute_ids(data: bytes) -> tuple[int, ...]:
    (n,) = _U32.unpack_from(data, 0)
    return struct.unpack_from(f"<{n}I", data, 4) if n else ()


def _document_attributes(data: bytes) -> Iterable[tuple[int, bytes]]:
    """Yield ``(attr_id, raw_value)`` for every top-level attribute.

    Assumes the header already passed :func:`validate_document`.
    """
    (n,) = _U32.unpack_from(data, 0)
    if not n:
        return
    ids = struct.unpack_from(f"<{n}I", data, 4)
    offsets = struct.unpack_from(f"<{n + 1}I", data, 4 + 4 * n)
    body = 4 + 4 * n + 4 * (n + 1)
    for index, attr_id in enumerate(ids):
        yield attr_id, bytes(data[body + offsets[index]: body + offsets[index + 1]])


class IntegrityChecker:
    """Audits one or more Sinew tables against the catalog."""

    def __init__(self, db: "Database", catalog: "SinewCatalog"):
        self.db = db
        self.catalog = catalog

    def check(self, table_names: Iterable[str]) -> list[CheckReport]:
        return [self.check_table(name) for name in table_names]

    def check_table(self, table_name: str) -> CheckReport:
        run = _CheckRun(self, table_name)
        run.execute()
        return CheckReport(
            table_name=table_name,
            rows_scanned=run.rows_scanned,
            findings=tuple(run.finalize()),
        )


class _CheckRun:
    """State for one table's scan."""

    def __init__(self, checker: IntegrityChecker, table_name: str):
        self.checker = checker
        self.table_name = table_name
        self.rows_scanned = 0
        self.findings: list[Diagnostic] = []
        self._per_code: Counter[str] = Counter()
        self._suppressed: Counter[str] = Counter()

    # ------------------------------------------------------------------

    def execute(self) -> None:
        checker = self.checker
        table = checker.db.table(self.table_name)
        table_catalog = checker.catalog.tables.get(self.table_name)
        known_ids = {a.attr_id for a in checker.catalog.all_attributes()}

        if _RESERVOIR_COLUMN not in table.schema:
            self._emit(
                d.MALFORMED_HEADER,
                Severity.ERROR,
                f"table {self.table_name!r} has no {_RESERVOIR_COLUMN!r} "
                "reservoir column",
            )
            return

        data_position = table.schema.position_of(_RESERVOIR_COLUMN)
        states = list(table_catalog.columns.values()) if table_catalog else []
        physical_positions = {
            state.attr_id: table.schema.position_of(state.physical_name)
            for state in states
            if state.physical_name and state.physical_name in table.schema
        }

        reservoir_counts: Counter[int] = Counter()
        physical_counts: Counter[int] = Counter()

        for rid, row in table.scan():
            self.rows_scanned += 1
            data = row[data_position]
            problem = validate_document(data)
            if problem is not None:
                self._emit(
                    d.MALFORMED_HEADER,
                    Severity.ERROR,
                    f"row {rid}: {problem}",
                )
            else:
                self._count_reservoir(
                    bytes(data), rid, known_ids, reservoir_counts
                )
            for attr_id, position in physical_positions.items():
                cell = row[position]
                if cell is None:
                    continue
                physical_counts[attr_id] += 1
                # a materialized nested document still carries its
                # sub-attributes inside the moved bytes -- count them too
                if (
                    attr_id in known_ids
                    and checker.catalog.attribute(attr_id).key_type
                    is SqlType.BYTEA
                    and isinstance(cell, (bytes, bytearray))
                    and validate_document(cell) is None
                ):
                    self._count_reservoir(
                        bytes(cell), rid, known_ids, reservoir_counts
                    )

        self._check_states(
            states,
            known_ids,
            reservoir_counts,
            physical_counts,
            physical_positions,
        )
        self._check_rowcount(table_catalog)

    # ------------------------------------------------------------------

    def _count_reservoir(
        self,
        data: bytes,
        rid: int,
        known_ids: set[int],
        reservoir_counts: Counter[int],
    ) -> None:
        """Tally attribute occurrences, descending into nested documents.

        The loader counts sub-attributes of nested objects (their dotted
        key names live in the global dictionary), so the audit must count
        them the same way or every nested key would read as stale-high.
        """
        catalog = self.checker.catalog
        for attr_id, raw in _document_attributes(data):
            if attr_id not in known_ids:
                self._emit(
                    d.UNKNOWN_ATTR_ID,
                    Severity.ERROR,
                    f"row {rid}: document references attribute id "
                    f"{attr_id}, which is not in the global "
                    "dictionary",
                )
                continue
            reservoir_counts[attr_id] += 1
            if (
                catalog.attribute(attr_id).key_type is SqlType.BYTEA
                and validate_document(raw) is None
            ):
                self._count_reservoir(raw, rid, known_ids, reservoir_counts)

    def _check_states(
        self,
        states,
        known_ids,
        reservoir_counts,
        physical_counts,
        physical_positions,
    ) -> None:
        catalog = self.checker.catalog
        for state in states:
            if state.attr_id not in known_ids:
                self._emit(
                    d.UNKNOWN_ATTR_ID,
                    Severity.ERROR,
                    f"catalog column state references attribute id "
                    f"{state.attr_id}, which is not in the global dictionary",
                )
                continue
            attribute = catalog.attribute(state.attr_id)
            label = f"{attribute.key_name!r} ({attribute.key_type.value})"

            if (
                state.materialized
                and not state.dirty
                and state.attr_id not in physical_positions
            ):
                self._emit(
                    d.MISSING_PHYSICAL_COLUMN,
                    Severity.ERROR,
                    f"column {label} is marked materialized and clean but "
                    f"its physical column {state.physical_name!r} is not in "
                    "the table schema",
                )
            if (
                state.materialized
                and not state.dirty
                and reservoir_counts.get(state.attr_id, 0) > 0
            ):
                self._emit(
                    d.RESERVOIR_RESIDUE,
                    Severity.ERROR,
                    f"column {label} is marked clean and materialized but "
                    f"{reservoir_counts[state.attr_id]} row(s) still carry "
                    "it in the reservoir",
                )

            actual = reservoir_counts.get(state.attr_id, 0) + physical_counts.get(
                state.attr_id, 0
            )
            if actual > state.count:
                self._emit(
                    d.COUNT_MISMATCH,
                    Severity.ERROR,
                    f"column {label}: catalog count {state.count} but "
                    f"{actual} stored occurrence(s); counts must never "
                    "under-report",
                )
            elif actual < state.count:
                self._emit(
                    d.COUNT_MISMATCH,
                    Severity.WARNING,
                    f"column {label}: catalog count {state.count} exceeds "
                    f"{actual} stored occurrence(s) (stale-high is expected "
                    "after deletes)",
                )

    def _check_rowcount(self, table_catalog) -> None:
        if table_catalog is None:
            return
        if self.rows_scanned > table_catalog.n_documents:
            self._emit(
                d.ROWCOUNT_MISMATCH,
                Severity.ERROR,
                f"catalog records {table_catalog.n_documents} document(s) "
                f"but the heap holds {self.rows_scanned} live row(s)",
            )
        elif self.rows_scanned < table_catalog.n_documents:
            self._emit(
                d.ROWCOUNT_MISMATCH,
                Severity.WARNING,
                f"catalog records {table_catalog.n_documents} document(s) "
                f"but the heap holds {self.rows_scanned} live row(s) "
                "(stale-high is expected after deletes)",
            )

    # ------------------------------------------------------------------

    def _emit(self, code: str, severity: Severity, message: str) -> None:
        self._per_code[code] += 1
        if self._per_code[code] > MAX_EXAMPLES_PER_CODE:
            self._suppressed[code] += 1
            return
        self.findings.append(
            Diagnostic(code, severity, f"{self.table_name}: {message}")
        )

    def finalize(self) -> list[Diagnostic]:
        for code, extra in sorted(self._suppressed.items()):
            self.findings.append(
                Diagnostic(
                    code,
                    Severity.WARNING,
                    f"{self.table_name}: ... and {extra} more "
                    f"{code} finding(s) suppressed",
                )
            )
        return self.findings
