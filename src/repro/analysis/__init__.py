"""Static analysis for Sinew: semantic analyzer, linter, integrity checks.

The pipeline is parse -> **analyze** -> rewrite -> plan (see DESIGN.md).
This package holds everything between the parser and the rewriter:

* :mod:`.diagnostics` -- the :class:`Diagnostic` record and the ``SNW###``
  code taxonomy shared by all passes;
* :mod:`.analyzer` -- the semantic analyzer and catalog-aware query linter
  (``analyze(sql, catalog=...)``);
* :mod:`.checker` -- the ``CHECK``-style catalog/storage invariant audit
  (``IntegrityChecker``), surfaced as ``SinewDB.check()`` and the shell's
  ``\\check`` meta-command.
"""

from .analyzer import AnalysisResult, SemanticAnalyzer, analyze
from .checker import CheckReport, IntegrityChecker, validate_document
from .diagnostics import (
    Diagnostic,
    Severity,
    render_diagnostic,
    render_report,
)

__all__ = [
    "AnalysisResult",
    "CheckReport",
    "Diagnostic",
    "IntegrityChecker",
    "SemanticAnalyzer",
    "Severity",
    "analyze",
    "render_diagnostic",
    "render_report",
    "validate_document",
]
