"""Static analysis for Sinew: semantic analyzer, linter, integrity checks.

The pipeline is parse -> **analyze** -> rewrite -> plan (see DESIGN.md).
This package holds everything between the parser and the rewriter:

* :mod:`.diagnostics` -- the :class:`Diagnostic` record and the ``SNW###``
  code taxonomy shared by all passes;
* :mod:`.analyzer` -- the semantic analyzer and catalog-aware query linter
  (``analyze(sql, catalog=...)``);
* :mod:`.checker` -- the ``CHECK``-style catalog/storage invariant audit
  (``IntegrityChecker``), surfaced as ``SinewDB.check()`` and the shell's
  ``\\check`` meta-command;
* :mod:`.protocol` -- the engine-protocol analyzer (``SNW4xx``): an
  ``ast`` pass over ``src/repro`` itself enforcing the latch, flag-order,
  fault-registry and WAL-activation protocols (``python -m
  repro.analysis.protocol --strict`` in CI, ``\\lint engine`` in the
  shell).
"""

from typing import TYPE_CHECKING

from .analyzer import AnalysisResult, SemanticAnalyzer, analyze
from .checker import CheckReport, IntegrityChecker, validate_document
from .diagnostics import (
    Diagnostic,
    Severity,
    render_diagnostic,
    render_report,
)

if TYPE_CHECKING:  # pragma: no cover - the runtime import is lazy, below
    from .protocol import analyze_paths, format_finding  # noqa: F401


def __getattr__(name: str):
    # Lazy so `python -m repro.analysis.protocol` does not find the
    # module pre-imported in sys.modules by its own package __init__.
    if name in ("analyze_paths", "format_finding"):
        from . import protocol

        return getattr(protocol, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AnalysisResult",
    "CheckReport",
    "Diagnostic",
    "IntegrityChecker",
    "SemanticAnalyzer",
    "Severity",
    "analyze",
    "analyze_paths",
    "format_finding",
    "render_diagnostic",
    "render_report",
    "validate_document",
]
