"""Structured diagnostics for Sinew's static analysis layer.

Every finding -- from the semantic analyzer, the catalog-aware linter,
the storage integrity checker, or the engine-protocol analyzer -- is a
:class:`Diagnostic`: a severity, a stable ``SNW###`` code, a message, and
a location (the source span of the offending SQL fragment for query
analysis; a ``path``/``line`` pair for engine-source findings).

Code taxonomy
-------------
=======  ==========================================================
SNW1xx   semantic **errors** (block execution)
SNW101   unknown table / collection
SNW102   unknown column on a plain (non-Sinew) table
SNW103   ambiguous unqualified column reference
SNW104   unknown function
SNW105   aggregate function in WHERE
SNW106   aggregate nested inside another aggregate
SNW107   ungrouped column in an aggregated query
SNW108   arithmetic on a provably non-numeric operand
SNW109   wrong number of arguments for a known function
SNW2xx   catalog-aware **warnings** (attach to the result)
SNW201   unknown key on a Sinew table: extraction is always NULL
SNW202   typed extraction provably NULL (catalog has no values of a
         compatible type for the key) -- the predicate is prunable
SNW203   multi-typed key projected bare: downcast to text
SNW204   comparison between provably incompatible literal types
SNW3xx   ``\\check`` integrity findings (catalog vs. storage)
SNW301   attribute occurrence count disagrees with stored rows
SNW302   clean materialized column still has reservoir residue
SNW303   malformed serialization header
SNW304   document references an attribute id missing from the
         global dictionary
SNW305   catalog row count disagrees with the heap
SNW306   materialized column's physical name missing from the
         table schema
SNW4xx   engine-protocol findings (the :mod:`..analysis.protocol`
         static pass over ``src/repro`` itself)
SNW401   ``@requires_latch``-tagged function called outside the
         exclusive catalog latch
SNW402   column-state flip writes ``materialized`` before ``dirty``
SNW403   fault-injection point mismatch: a ``fire()`` call site
         names an unregistered point, or a registered point has no
         call site
SNW404   durable ``WriteAheadLog.append`` reachable before
         ``activate()`` in the enclosing flow
SNW405   bare latch ``acquire()`` with no ``try/finally`` release
=======  ==========================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


# -- semantic errors (SNW1xx) ------------------------------------------------
UNKNOWN_TABLE = "SNW101"
UNKNOWN_COLUMN = "SNW102"
AMBIGUOUS_COLUMN = "SNW103"
UNKNOWN_FUNCTION = "SNW104"
AGGREGATE_IN_WHERE = "SNW105"
NESTED_AGGREGATE = "SNW106"
UNGROUPED_COLUMN = "SNW107"
NON_NUMERIC_ARITHMETIC = "SNW108"
WRONG_ARG_COUNT = "SNW109"

# -- catalog-aware lint warnings (SNW2xx) ------------------------------------
UNKNOWN_KEY_NULL = "SNW201"
PROVABLY_NULL_EXTRACTION = "SNW202"
MULTI_TYPED_DOWNCAST = "SNW203"
INCOMPATIBLE_COMPARISON = "SNW204"

# -- integrity-check findings (SNW3xx) ---------------------------------------
COUNT_MISMATCH = "SNW301"
RESERVOIR_RESIDUE = "SNW302"
MALFORMED_HEADER = "SNW303"
UNKNOWN_ATTR_ID = "SNW304"
ROWCOUNT_MISMATCH = "SNW305"
MISSING_PHYSICAL_COLUMN = "SNW306"

# -- engine-protocol findings (SNW4xx) ---------------------------------------
LATCH_REQUIRED_CALL = "SNW401"
FLAG_WRITE_ORDER = "SNW402"
FAULT_POINT_MISMATCH = "SNW403"
WAL_APPEND_BEFORE_ACTIVATE = "SNW404"
BARE_LATCH_ACQUIRE = "SNW405"


@dataclass(frozen=True)
class Diagnostic:
    """One finding from an analysis pass."""

    code: str
    severity: Severity
    message: str
    #: ``(start, end)`` character span in the analyzed SQL, or None when the
    #: finding has no source location (integrity checks).
    span: tuple[int, int] | None = None
    #: optional remediation / explanation clause
    hint: str | None = None
    #: source file of an engine-protocol finding (SNW4xx), or None
    path: str | None = None
    #: 1-based source line of an engine-protocol finding, or None
    line: int | None = None

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    @property
    def is_warning(self) -> bool:
        return self.severity is Severity.WARNING

    def __str__(self) -> str:
        if self.path is not None:
            where = self.path if self.line is None else f"{self.path}:{self.line}"
            location = f" at {where}"
        elif self.span:
            location = f" at {self.span[0]}..{self.span[1]}"
        else:
            location = ""
        text = f"{self.severity.value} {self.code}{location}: {self.message}"
        if self.hint:
            text += f" ({self.hint})"
        return text


def error(code: str, message: str, span=None, hint=None) -> Diagnostic:
    return Diagnostic(code, Severity.ERROR, message, span, hint)


def warning(code: str, message: str, span=None, hint=None) -> Diagnostic:
    return Diagnostic(code, Severity.WARNING, message, span, hint)


def render_diagnostic(diagnostic: Diagnostic, sql: str | None = None) -> str:
    """Multi-line rendering with a caret underline when the SQL is known::

        error SNW103: ambiguous column reference 'virt'
            SELECT virt FROM t, u
                   ^^^^
    """
    lines = [str(diagnostic)]
    if sql is not None and diagnostic.span is not None:
        start, end = diagnostic.span
        start = max(0, min(start, len(sql)))
        end = max(start + 1, min(end, len(sql)))
        lines.append("    " + sql)
        lines.append("    " + " " * start + "^" * (end - start))
    return "\n".join(lines)


def render_report(diagnostics, sql: str | None = None) -> str:
    """Render a list of diagnostics, errors first."""
    ordered = sorted(
        diagnostics, key=lambda d: (d.severity is not Severity.ERROR, d.code)
    )
    return "\n".join(render_diagnostic(d, sql) for d in ordered)
