"""Semantic analyzer and catalog-aware query linter (pre-planning pass).

Sits between the parser and the rewriter/planner (DESIGN.md: parse ->
**analyze** -> rewrite -> plan).  The analyzer walks the *logical* AST and
checks it against the hybrid logical schema -- physical and virtual columns
from the :class:`~repro.core.catalog.SinewCatalog` plus ordinary RDBMS
tables -- producing structured :class:`~repro.analysis.diagnostics.Diagnostic`
records instead of ad-hoc mid-planning exceptions:

* **errors** (SNW1xx) block execution: unknown tables/columns/functions,
  ambiguous references, aggregate misuse, arity and arithmetic-type faults;
* **warnings** (SNW2xx) ride along with the result: they use the catalog's
  per-attribute type counts to spot extractions that are *provably NULL*
  (e.g. a numeric comparison on a key that is 100% text), unknown keys, and
  multi-typed downcasts.

Provably-NULL predicates are additionally reported through
``AnalysisResult.null_predicates`` so the rewriter can prune them -- a
correctness signal that doubles as a performance win (no extraction UDF
calls for a predicate that can never be true).

The proof obligation for pruning is strict: the operand must be a pure
virtual-column extraction (no materialized or dirty attribute of that key),
the expected extraction type must come from literal context exactly as the
rewriter derives it, and the catalog must show **zero** occurrences of any
compatible type.  Counts never under-count (deletes leave them stale-high),
so ``count == 0`` is a sound proof that extraction yields NULL on every
row, which makes ``Literal(None)`` an *exact* replacement under SQL's
three-valued logic -- in WHERE, under NOT, under AND/OR alike.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator

from ..rdbms.expressions import (
    Between,
    BinaryOp,
    ColumnRef,
    Expr,
    FunctionCall,
    InList,
    Like,
    Literal,
)
from ..rdbms.functions import FunctionRegistry
from ..rdbms.sql.ast import (
    DeleteStatement,
    SelectStatement,
    Statement,
    UpdateStatement,
)
from ..rdbms.sql.parser import parse
from ..rdbms.types import SqlType
from . import diagnostics as d
from .diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.catalog import SinewCatalog, TableCatalog
    from ..rdbms.database import Database

#: Column names present on every Sinew table regardless of the catalog.
_ID_COLUMN = "_id"
_RESERVOIR_COLUMN = "data"

_COMPARISON_OPS = frozenset({"=", "<>", "!=", "<", "<=", ">", ">="})
_ARITHMETIC_OPS = frozenset({"+", "-", "*", "/", "%"})
_NUMERIC_TYPES = frozenset({SqlType.INTEGER, SqlType.REAL})

#: Which stored attribute types a typed extraction can return non-NULL for
#: (mirrors ``EXTRACT_FUNCTION_FOR_TYPE``: numeric extraction reads INTEGER
#: and REAL attributes, every other extraction reads exactly its own type).
_COMPATIBLE_TYPES = {
    SqlType.INTEGER: _NUMERIC_TYPES,
    SqlType.REAL: _NUMERIC_TYPES,
    SqlType.TEXT: frozenset({SqlType.TEXT}),
    SqlType.BOOLEAN: frozenset({SqlType.BOOLEAN}),
    SqlType.ARRAY: frozenset({SqlType.ARRAY}),
    SqlType.BYTEA: frozenset({SqlType.BYTEA}),
}

#: (min, max) argument counts for functions with fixed arity; ``None`` max
#: means variadic.  Names absent here are not arity-checked.
_ARITY: dict[str, tuple[int, int | None]] = {
    "length": (1, 1),
    "abs": (1, 1),
    "lower": (1, 1),
    "upper": (1, 1),
    "sqrt": (1, 1),
    "round": (1, 2),
    "array_length": (1, 1),
    "matches": (2, 2),
    "sinew_matches": (3, 3),
    "sinew_exists": (2, 2),
    "sinew_to_json": (1, 1),
    "sinew_check": (1, 1),
    "count": (1, 1),
    "sum": (1, 1),
    "min": (1, 1),
    "max": (1, 1),
    "avg": (1, 1),
}

#: Functions that are not in the default registry but are resolvable once a
#: SinewDB wires its UDFs (or, for ``matches``, rewritten away entirely).
_SINEW_FUNCTIONS = frozenset(
    {
        "matches",
        "sinew_matches",
        "sinew_exists",
        "sinew_to_json",
        "sinew_check",
        "extract_key_text",
        "extract_key_int",
        "extract_key_real",
        "extract_key_num",
        "extract_key_bool",
        "extract_key_array",
        "extract_key_doc",
        "extract_key_any",
    }
)


@dataclass
class _Binding:
    """One resolved table instance in a FROM clause."""

    binding: str
    table_name: str
    kind: str  # "sinew" | "plain"
    table_catalog: "TableCatalog | None" = None
    #: plain-table column name -> declared type
    schema_types: dict[str, SqlType] | None = None


@dataclass(frozen=True)
class AnalysisResult:
    """Outcome of analyzing one statement."""

    statement: Statement
    diagnostics: tuple[Diagnostic, ...]
    #: predicate subtrees (by object identity within ``statement``) that are
    #: provably NULL on every row; the rewriter may replace each with
    #: ``Literal(None)`` without changing any result.
    null_predicates: tuple[Expr, ...] = ()

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(diag for diag in self.diagnostics if diag.is_error)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(diag for diag in self.diagnostics if not diag.is_error)

    @property
    def ok(self) -> bool:
        return not self.errors

    def null_predicate_ids(self) -> frozenset[int]:
        return frozenset(id(expr) for expr in self.null_predicates)


def analyze(
    sql_or_statement: str | Statement,
    catalog: "SinewCatalog | None" = None,
    collections: Iterable[str] = (),
    db: "Database | None" = None,
    functions: FunctionRegistry | None = None,
) -> AnalysisResult:
    """Analyze one SQL statement (or pre-parsed AST) against the catalog."""
    analyzer = SemanticAnalyzer(
        catalog=catalog, collections=collections, db=db, functions=functions
    )
    return analyzer.analyze(sql_or_statement)


class SemanticAnalyzer:
    """Checks parsed statements against the hybrid logical schema."""

    def __init__(
        self,
        catalog: "SinewCatalog | None" = None,
        collections: Iterable[str] = (),
        db: "Database | None" = None,
        functions: FunctionRegistry | None = None,
    ):
        self.catalog = catalog
        self.collections = set(collections)
        self.db = db
        if functions is not None:
            self.functions = functions
        elif db is not None:
            self.functions = db.functions
        else:
            self.functions = FunctionRegistry()

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------

    def analyze(self, sql_or_statement: str | Statement) -> AnalysisResult:
        statement = (
            parse(sql_or_statement)
            if isinstance(sql_or_statement, str)
            else sql_or_statement
        )
        walk = _StatementWalk(self)
        if isinstance(statement, SelectStatement):
            walk.select(statement)
        elif isinstance(statement, UpdateStatement):
            walk.update(statement)
        elif isinstance(statement, DeleteStatement):
            walk.delete(statement)
        return AnalysisResult(
            statement=statement,
            diagnostics=tuple(walk.diagnostics),
            null_predicates=tuple(walk.null_predicates),
        )

    # ------------------------------------------------------------------
    # binding construction
    # ------------------------------------------------------------------

    def _make_binding(self, table_name: str, binding: str) -> _Binding | None:
        if table_name in self.collections:
            table_catalog = (
                self.catalog.tables.get(table_name) if self.catalog else None
            )
            return _Binding(binding, table_name, "sinew", table_catalog)
        if self.db is not None and self.db.has_table(table_name):
            schema = self.db.table(table_name).schema
            types = {column.name: column.sql_type for column in schema}
            return _Binding(binding, table_name, "plain", None, types)
        return None


class _StatementWalk:
    """Per-statement analysis state (diagnostics + prunable predicates)."""

    def __init__(self, analyzer: SemanticAnalyzer):
        self.a = analyzer
        self.diagnostics: list[Diagnostic] = []
        self.null_predicates: list[Expr] = []
        self._reported_spans: set[tuple[str, tuple[int, int] | None]] = set()

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def select(self, statement: SelectStatement) -> None:
        bindings, resolvable = self._bind_tables(
            [(ref.name, ref.alias or ref.name, ref.span) for ref in statement.from_tables]
        )
        aliases = {item.alias for item in statement.items if item.alias}
        alias_exprs = {
            item.alias: item.expr for item in statement.items if item.alias
        }

        for item in statement.items:
            self._check_functions(item.expr, clause="select")
            if resolvable:
                self._check_columns(item.expr, bindings, aliases=frozenset())
                self._lint_projection(item.expr, bindings)
        for clause, expr in (
            ("where", statement.where),
            ("having", statement.having),
        ):
            if expr is None:
                continue
            self._check_functions(expr, clause=clause)
            if resolvable:
                self._check_columns(expr, bindings, aliases=frozenset(aliases))
                self._lint_predicates(expr, bindings)
        for expr in statement.group_by:
            self._check_functions(expr, clause="group_by")
            if resolvable:
                self._check_columns(expr, bindings, aliases=frozenset(aliases))
        for item in statement.order_by:
            self._check_functions(item.expr, clause="order_by")
            if resolvable:
                self._check_columns(
                    item.expr, bindings, aliases=frozenset(aliases)
                )
        if resolvable:
            self._check_grouping(statement, bindings, alias_exprs)

    def update(self, statement: UpdateStatement) -> None:
        bindings, resolvable = self._bind_tables(
            [(statement.table, statement.table, None)]
        )
        binding = bindings.get(statement.table)
        for column_name, value_expr in statement.assignments:
            self._check_functions(value_expr, clause="update")
            if resolvable:
                self._check_columns(value_expr, bindings, aliases=frozenset())
            # Assigning to an unseen key on a Sinew table *creates* the
            # attribute (evolving schema), so only plain tables get an
            # unknown-column error here.
            if (
                binding is not None
                and binding.kind == "plain"
                and column_name not in (binding.schema_types or {})
            ):
                self._error(
                    d.UNKNOWN_COLUMN,
                    f"no such column: {column_name!r}",
                    None,
                )
        self._where_clause(statement.where, bindings, resolvable)

    def delete(self, statement: DeleteStatement) -> None:
        bindings, resolvable = self._bind_tables(
            [(statement.table, statement.table, None)]
        )
        self._where_clause(statement.where, bindings, resolvable)

    def _where_clause(self, where, bindings, resolvable) -> None:
        if where is None:
            return
        self._check_functions(where, clause="where")
        if resolvable:
            self._check_columns(where, bindings, aliases=frozenset())
            self._lint_predicates(where, bindings)

    # ------------------------------------------------------------------
    # table binding
    # ------------------------------------------------------------------

    def _bind_tables(
        self, refs: list[tuple[str, str, tuple[int, int] | None]]
    ) -> tuple[dict[str, _Binding], bool]:
        bindings: dict[str, _Binding] = {}
        resolvable = True
        for table_name, binding_name, span in refs:
            binding = self.a._make_binding(table_name, binding_name)
            if binding is None:
                if self.a.catalog is None and self.a.db is None:
                    # nothing to resolve against; stay silent
                    resolvable = False
                    continue
                self._error(
                    d.UNKNOWN_TABLE,
                    f"no such table or collection: {table_name!r}",
                    span,
                )
                resolvable = False
                continue
            bindings[binding_name] = binding
        return bindings, resolvable and bool(bindings)

    # ------------------------------------------------------------------
    # function checks (SNW104/105/106/108/109)
    # ------------------------------------------------------------------

    def _check_functions(self, expr: Expr, clause: str) -> None:
        self._walk_functions(expr, clause, in_aggregate=False)

    def _walk_functions(self, expr: Expr, clause: str, in_aggregate: bool) -> None:
        if isinstance(expr, FunctionCall):
            name = expr.name.lower()
            is_aggregate = self.a.functions.is_aggregate(name)
            known = (
                is_aggregate
                or self.a.functions.has_scalar(name)
                or name in _SINEW_FUNCTIONS
            )
            if not known:
                self._error(
                    d.UNKNOWN_FUNCTION, f"no such function: {expr.name}()", expr.span
                )
            elif name in _ARITY:
                low, high = _ARITY[name]
                n_args = len(expr.args)
                if n_args < low or (high is not None and n_args > high):
                    wanted = (
                        f"{low}" if high == low else f"{low}..{high or 'n'}"
                    )
                    self._error(
                        d.WRONG_ARG_COUNT,
                        f"{expr.name}() takes {wanted} argument(s), got {n_args}",
                        expr.span,
                    )
            if is_aggregate:
                if clause == "where":
                    self._error(
                        d.AGGREGATE_IN_WHERE,
                        f"aggregate {expr.name}() is not allowed in WHERE",
                        expr.span,
                        hint="use HAVING",
                    )
                if in_aggregate:
                    self._error(
                        d.NESTED_AGGREGATE,
                        f"aggregate {expr.name}() cannot be nested inside "
                        "another aggregate",
                        expr.span,
                    )
                in_aggregate = True
        if isinstance(expr, BinaryOp) and expr.op in _ARITHMETIC_OPS:
            for side in (expr.left, expr.right):
                literal_type = _literal_type(side)
                if literal_type is not None and literal_type not in _NUMERIC_TYPES:
                    self._error(
                        d.NON_NUMERIC_ARITHMETIC,
                        f"operator {expr.op!r} requires numeric operands, "
                        f"got a {literal_type.value} literal",
                        side.span or expr.span,
                    )
        if (
            isinstance(expr, BinaryOp)
            and expr.op in _COMPARISON_OPS
            and isinstance(expr.left, Literal)
            and isinstance(expr.right, Literal)
        ):
            left_type = _literal_type(expr.left)
            right_type = _literal_type(expr.right)
            if (
                left_type is not None
                and right_type is not None
                and not _types_comparable(left_type, right_type)
            ):
                self._warning(
                    d.INCOMPATIBLE_COMPARISON,
                    f"comparison between {left_type.value} and "
                    f"{right_type.value} is never true",
                    expr.span,
                )
        for child in expr.children():
            self._walk_functions(child, clause, in_aggregate)

    # ------------------------------------------------------------------
    # column resolution (SNW102/103/201)
    # ------------------------------------------------------------------

    def _check_columns(
        self,
        expr: Expr,
        bindings: dict[str, _Binding],
        aliases: frozenset[str],
    ) -> None:
        for node in expr.walk():
            if isinstance(node, ColumnRef):
                self._resolve(node, bindings, aliases, report=True)

    def _resolve(
        self,
        ref: ColumnRef,
        bindings: dict[str, _Binding],
        aliases: frozenset[str],
        report: bool = False,
    ) -> _Binding | None:
        """Owning binding of a column reference (mirrors the rewriter)."""
        if ref.table is not None:
            binding = bindings.get(ref.table)
            if binding is None:
                if report:
                    self._error(
                        d.UNKNOWN_TABLE,
                        f"unknown table alias: {ref.table!r}",
                        ref.span,
                    )
                return None
            if not self._is_member(ref.name, binding) and report:
                self._report_missing(ref, binding)
            return binding
        if ref.name in aliases:
            return None  # reference to a SELECT-list output alias
        owners = [
            binding
            for binding in bindings.values()
            if self._is_member(ref.name, binding)
        ]
        if len(owners) > 1:
            if report:
                self._error(
                    d.AMBIGUOUS_COLUMN,
                    f"ambiguous column reference: {ref.name!r}",
                    ref.span,
                    hint="qualify with a table alias",
                )
            return None
        if owners:
            return owners[0]
        sinew_bindings = [b for b in bindings.values() if b.kind == "sinew"]
        if len(bindings) == 1 and sinew_bindings:
            # Unknown key on the only Sinew table: legal (extraction yields
            # NULL for every row), but worth a warning.
            if report:
                self._report_missing(ref, sinew_bindings[0])
            return sinew_bindings[0]
        if bindings and report:
            self._error(d.UNKNOWN_COLUMN, f"no such column: {ref.name!r}", ref.span)
        return None

    def _report_missing(self, ref: ColumnRef, binding: _Binding) -> None:
        if binding.kind == "plain":
            self._error(d.UNKNOWN_COLUMN, f"no such column: {ref.name!r}", ref.span)
            return
        self._warning(
            d.UNKNOWN_KEY_NULL,
            f"key {ref.name!r} has never been seen in collection "
            f"{binding.table_name!r}; extraction yields NULL on every row",
            ref.span,
        )

    def _is_member(self, name: str, binding: _Binding) -> bool:
        if binding.kind == "plain":
            return name in (binding.schema_types or {})
        if name in (_ID_COLUMN, _RESERVOIR_COLUMN):
            return True
        if self.a.catalog is None or binding.table_catalog is None:
            return False
        for attribute in self.a.catalog.attributes_named(name):
            if attribute.attr_id in binding.table_catalog.columns:
                return True
        return any(
            state.physical_name == name
            for state in binding.table_catalog.columns.values()
        )

    # ------------------------------------------------------------------
    # grouping validation (SNW107)
    # ------------------------------------------------------------------

    def _check_grouping(
        self,
        statement: SelectStatement,
        bindings: dict[str, _Binding],
        alias_exprs: dict[str, Expr],
    ) -> None:
        has_aggregate = any(
            self._contains_aggregate(item.expr) for item in statement.items
        )
        if not statement.group_by and not has_aggregate:
            return
        group_exprs = [
            alias_exprs.get(expr.name, expr)
            if isinstance(expr, ColumnRef) and expr.table is None
            else expr
            for expr in statement.group_by
        ]
        for item in statement.items:
            for ref in self._ungrouped_refs(item.expr, group_exprs, bindings):
                self._error(
                    d.UNGROUPED_COLUMN,
                    f"column {ref} must appear in GROUP BY or an aggregate",
                    ref.span,
                )

    def _ungrouped_refs(
        self,
        expr: Expr,
        group_exprs: list[Expr],
        bindings: dict[str, _Binding],
    ) -> Iterator[ColumnRef]:
        """ColumnRefs not covered by a group key or an aggregate call.

        Mirrors the planner's subtree-substitution semantics: descend
        top-down, stopping at any node that equals a grouping expression or
        is an aggregate invocation.
        """
        if any(self._same_grouping(expr, g, bindings) for g in group_exprs):
            return
        if isinstance(expr, FunctionCall) and self.a.functions.is_aggregate(
            expr.name
        ):
            return
        if isinstance(expr, ColumnRef):
            yield expr
            return
        for child in expr.children():
            yield from self._ungrouped_refs(child, group_exprs, bindings)

    def _same_grouping(
        self, expr: Expr, group: Expr, bindings: dict[str, _Binding]
    ) -> bool:
        if expr == group:
            return True
        # qualified vs. unqualified spellings of the same resolved column
        if isinstance(expr, ColumnRef) and isinstance(group, ColumnRef):
            if expr.name != group.name:
                return False
            empty = frozenset()
            return self._resolve(expr, bindings, empty) is self._resolve(
                group, bindings, empty
            )
        return False

    def _contains_aggregate(self, expr: Expr) -> bool:
        return any(
            isinstance(node, FunctionCall)
            and self.a.functions.is_aggregate(node.name)
            for node in expr.walk()
        )

    # ------------------------------------------------------------------
    # catalog-aware linting (SNW201/202/203) + prunable predicates
    # ------------------------------------------------------------------

    def _lint_projection(self, expr: Expr, bindings: dict[str, _Binding]) -> None:
        """Warn on bare projections of multi-typed keys (downcast to text)."""
        if not isinstance(expr, ColumnRef):
            return
        binding = self._resolve(expr, bindings, frozenset())
        if binding is None or binding.kind != "sinew":
            return
        observed = self._observed_types(expr.name, binding)
        if observed is not None and len(observed) > 1:
            spelled = ", ".join(sorted(t.value for t in observed))
            self._warning(
                d.MULTI_TYPED_DOWNCAST,
                f"key {expr.name!r} is multi-typed ({spelled}); bare "
                "projection downcasts every value to text (extract_key_any)",
                expr.span,
            )

    def _lint_predicates(self, expr: Expr, bindings: dict[str, _Binding]) -> None:
        for node in expr.walk():
            self._lint_one_predicate(node, bindings)

    def _lint_one_predicate(
        self, node: Expr, bindings: dict[str, _Binding]
    ) -> None:
        """Check one comparison-shaped predicate for provable NULL-ness.

        The expected extraction type is derived exactly the way the
        rewriter derives it (from literal context), so the verdict applies
        to the extraction call the rewriter will actually emit.
        """
        candidates: list[tuple[ColumnRef, SqlType | None, bool]] = []
        if isinstance(node, BinaryOp) and node.op in _COMPARISON_OPS:
            pure = isinstance(node.left, Literal) or isinstance(node.right, Literal)
            if isinstance(node.left, ColumnRef):
                candidates.append((node.left, _literal_type(node.right), pure))
            if isinstance(node.right, ColumnRef):
                candidates.append((node.right, _literal_type(node.left), pure))
        elif isinstance(node, Between) and isinstance(node.operand, ColumnRef):
            expected = _literal_type(node.low) or _literal_type(node.high)
            pure = isinstance(node.low, Literal) and isinstance(node.high, Literal)
            candidates.append((node.operand, expected, pure))
        elif isinstance(node, Like) and isinstance(node.operand, ColumnRef):
            pure = isinstance(node.pattern, Literal)
            candidates.append((node.operand, SqlType.TEXT, pure))
        elif isinstance(node, InList) and isinstance(node.operand, ColumnRef):
            expected = None
            for item in node.items:
                expected = _literal_type(item)
                if expected is not None:
                    break
            pure = all(isinstance(item, Literal) for item in node.items)
            candidates.append((node.operand, expected, pure))
        else:
            return

        for ref, expected, pure in candidates:
            binding = self._resolve(ref, bindings, frozenset())
            verdict = self._extraction_verdict(ref, binding, expected)
            if verdict is None:
                continue
            code, message = verdict
            if code == d.PROVABLY_NULL_EXTRACTION:
                self._warning(
                    code,
                    message,
                    ref.span or node.span,
                    hint="predicate can never be true; it will be pruned"
                    if pure
                    else "predicate can never be true",
                )
            if pure:
                self.null_predicates.append(node)

    def _extraction_verdict(
        self,
        ref: ColumnRef,
        binding: _Binding | None,
        expected: SqlType | None,
    ) -> tuple[str, str] | None:
        """(code, message) when extraction of ``ref`` is provably NULL."""
        if (
            binding is None
            or binding.kind != "sinew"
            or binding.table_catalog is None
            or self.a.catalog is None
        ):
            return None
        if ref.name in (_ID_COLUMN, _RESERVOIR_COLUMN):
            return None
        catalog = self.a.catalog
        table_catalog = binding.table_catalog
        # a reference spelled as a mangled physical column name is physical
        if any(
            state.physical_name == ref.name and state.materialized
            for state in table_catalog.columns.values()
        ):
            return None
        attributes = [
            attribute
            for attribute in catalog.attributes_named(ref.name)
            if attribute.attr_id in table_catalog.columns
        ]
        states = [table_catalog.columns[a.attr_id] for a in attributes]
        if any(state.materialized or state.dirty for state in states):
            return None  # value may live in a physical column: unprovable
        if not attributes:
            # unknown key: SNW201 already reported by column resolution,
            # but the comparison is still provably NULL (prunable)
            return (
                d.UNKNOWN_KEY_NULL,
                f"key {ref.name!r} has never been seen; comparison is NULL",
            )
        if expected is None:
            return None
        compatible = _COMPATIBLE_TYPES.get(expected)
        if compatible is None:
            return None
        live = sum(
            table_catalog.columns[a.attr_id].count
            for a in attributes
            if a.key_type in compatible
        )
        if live > 0:
            return None
        observed = {
            a.key_type.value
            for a in attributes
            if table_catalog.columns[a.attr_id].count > 0
        }
        stored = ", ".join(sorted(observed)) or "nothing"
        wanted = "numeric" if expected in _NUMERIC_TYPES else expected.value
        return (
            d.PROVABLY_NULL_EXTRACTION,
            f"{wanted} comparison on key {ref.name!r} is provably NULL: "
            f"the catalog has only {stored} values for it",
        )

    def _observed_types(
        self, key_name: str, binding: _Binding
    ) -> set[SqlType] | None:
        """Types with at least one stored occurrence, or None if physical."""
        if self.a.catalog is None or binding.table_catalog is None:
            return None
        observed: set[SqlType] = set()
        for attribute in self.a.catalog.attributes_named(key_name):
            state = binding.table_catalog.columns.get(attribute.attr_id)
            if state is None:
                continue
            if state.materialized or state.dirty:
                return None
            if state.count > 0:
                observed.add(attribute.key_type)
        return observed

    # ------------------------------------------------------------------
    # reporting helpers
    # ------------------------------------------------------------------

    def _error(self, code, message, span, hint=None) -> None:
        self._emit(d.error(code, message, span, hint))

    def _warning(self, code, message, span, hint=None) -> None:
        self._emit(d.warning(code, message, span, hint))

    def _emit(self, diagnostic: Diagnostic) -> None:
        key = (diagnostic.code, diagnostic.span)
        if key in self._reported_spans:
            return
        self._reported_spans.add(key)
        self.diagnostics.append(diagnostic)


def _literal_type(expr: Expr) -> SqlType | None:
    """SQL type of a non-NULL literal (the rewriter's context rule)."""
    if not isinstance(expr, Literal) or expr.value is None:
        return None
    value = expr.value
    if isinstance(value, bool):
        return SqlType.BOOLEAN
    if isinstance(value, int):
        return SqlType.INTEGER
    if isinstance(value, float):
        return SqlType.REAL
    if isinstance(value, str):
        return SqlType.TEXT
    return None


def _types_comparable(left: SqlType, right: SqlType) -> bool:
    if left in _NUMERIC_TYPES and right in _NUMERIC_TYPES:
        return True
    return left is right


__all__ = [
    "AnalysisResult",
    "SemanticAnalyzer",
    "analyze",
]
