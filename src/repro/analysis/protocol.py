"""Engine-protocol static analyzer: the SNW4xx rules.

PR 1 pointed the analysis layer at *user queries*; this module points it
at the engine itself.  The hybrid-layout engine stays correct only
because a handful of unwritten protocols hold, and PRs 2, 4 and 5 each
fixed real races found by manually auditing exactly these protocols.
This pass mechanizes the audit as five ``ast``-based rules over
``src/repro``, emitting the same :class:`~.diagnostics.Diagnostic`
records as every other pass (codes ``SNW401``..``SNW405``):

SNW401
    Functions tagged ``@requires_latch("catalog")`` mutate state that is
    only consistent under the exclusive catalog latch.  Every call site
    must either sit lexically inside a ``with ...exclusive_latch(...)``
    block or be tagged itself (propagating the obligation to *its*
    callers).  Motivated by the PR 5 loader/materializer races.
SNW402
    A column-state flip must write ``dirty`` before ``materialized``:
    once ``materialized`` is visible, concurrent planners route reads
    through the physical column, and only an already-set ``dirty`` flag
    makes them bridge the still-migrating rows with COALESCE.  Detected
    as assignment order within one function body.
SNW403
    Every ``fire("<point>")`` call site must name a registered
    fault-injection point, and every registered point must have at least
    one call site -- the AST replacement for the old grep-based
    fault-registry hygiene test.
SNW404
    A durable :class:`WriteAheadLog` (constructed with a directory) only
    accepts ``append`` after ``activate()`` -- appending first would
    interleave new frames with unrecovered ones (the PR 4 recovery
    contract).  Detected as statement order within the enclosing flow.
SNW405
    Latch/lock acquisitions must be exception-safe: ``with`` blocks or
    ``acquire()`` paired with a ``try/finally`` release.  A bare
    ``acquire()`` leaks the latch on any exception between it and the
    release (the PR 5 latch-leak class).

False-positive escape hatch: a finding can be waived *on its own line*
with ``# protocol: ignore[SNW405]`` (comma-separated codes; empty
brackets waive every rule on the line).  ``--strict`` turns any finding
into a nonzero exit for CI.

Usage::

    python -m repro.analysis.protocol --strict src/repro
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from .diagnostics import (
    BARE_LATCH_ACQUIRE,
    FAULT_POINT_MISMATCH,
    FLAG_WRITE_ORDER,
    LATCH_REQUIRED_CALL,
    WAL_APPEND_BEFORE_ACTIVATE,
    Diagnostic,
    Severity,
)

__all__ = [
    "ModuleUnit",
    "analyze_paths",
    "collect_fire_sites",
    "format_finding",
    "iter_python_files",
    "load_module",
    "main",
]

#: names under which modules declare their fault-point registry literal
_REGISTRY_NAMES = frozenset({"_KNOWN_POINTS", "KNOWN_POINTS"})

#: method names treated as fault-point firing sites (``fire`` on the
#: injector itself, ``_fire`` for the per-component convenience wrappers)
_FIRE_NAMES = frozenset({"fire", "_fire"})

_IGNORE_PRAGMA = re.compile(r"#\s*protocol:\s*ignore\[([A-Z0-9,\s]*)\]")

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_SCOPE_NODES = (*_FUNCTION_NODES, ast.ClassDef, ast.Lambda)


@dataclass
class ModuleUnit:
    """One parsed source file plus its per-line suppression pragmas."""

    path: Path
    display: str
    tree: ast.Module
    #: line -> codes waived on that line (empty set = every code)
    ignores: dict[int, set[str]] = field(default_factory=dict)


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``*.py`` files."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def load_module(path: Path, root: Path | None = None) -> ModuleUnit:
    """Parse one file into a :class:`ModuleUnit` (pragmas included)."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    display = str(path)
    if root is not None:
        try:
            display = str(path.resolve().relative_to(root.resolve()))
        except ValueError:
            pass
    ignores: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _IGNORE_PRAGMA.search(line)
        if match:
            codes = {c.strip() for c in match.group(1).split(",") if c.strip()}
            ignores[lineno] = codes
    return ModuleUnit(path=path, display=display, tree=tree, ignores=ignores)


# ----------------------------------------------------------------------
# small AST helpers
# ----------------------------------------------------------------------


def _terminal_name(func: ast.expr) -> str | None:
    """The rightmost identifier of a call target (``a.b.c()`` -> ``c``)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _walk_local(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested scopes."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _SCOPE_NODES):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _iter_functions(tree: ast.Module) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, _FUNCTION_NODES):
            yield node


def _declared_latch_of(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> str | None:
    """The latch named by a ``@requires_latch("...")`` decorator, if any."""
    for decorator in fn.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        if _terminal_name(decorator.func) != "requires_latch":
            continue
        if decorator.args and isinstance(decorator.args[0], ast.Constant):
            value = decorator.args[0].value
            if isinstance(value, str):
                return value
    return None


def _is_latch_acquisition(expr: ast.expr) -> bool:
    """True for a ``with``-item that takes the exclusive catalog latch."""
    return isinstance(expr, ast.Call) and _terminal_name(expr.func) == "exclusive_latch"


def _string_arg(call: ast.Call) -> str | None:
    if call.args and isinstance(call.args[0], ast.Constant):
        value = call.args[0].value
        if isinstance(value, str):
            return value
    return None


# ----------------------------------------------------------------------
# cross-module index (rules 401 and 403 need whole-tree knowledge)
# ----------------------------------------------------------------------


@dataclass
class _Index:
    #: function name -> latch it declares via @requires_latch
    latch_required: dict[str, str] = field(default_factory=dict)
    #: registered fault point -> (display path, line of registration)
    registry_points: dict[str, tuple[str, int]] = field(default_factory=dict)
    #: True when a ``_KNOWN_POINTS`` registry literal is in the analyzed set
    registry_found: bool = False
    #: every literal fire site: (unit, line, point)
    fire_sites: list[tuple[ModuleUnit, int, str]] = field(default_factory=list)


def _build_index(units: Sequence[ModuleUnit]) -> _Index:
    index = _Index()
    for unit in units:
        for node in ast.walk(unit.tree):
            if isinstance(node, _FUNCTION_NODES):
                latch = _declared_latch_of(node)
                if latch is not None:
                    index.latch_required[node.name] = latch
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id in _REGISTRY_NAMES
                        and isinstance(node.value, (ast.Set, ast.List, ast.Tuple))
                    ):
                        index.registry_found = True
                        for element in node.value.elts:
                            if isinstance(element, ast.Constant) and isinstance(
                                element.value, str
                            ):
                                index.registry_points.setdefault(
                                    element.value, (unit.display, element.lineno)
                                )
            elif isinstance(node, ast.Call):
                name = _terminal_name(node.func)
                if name == "register_point":
                    point = _string_arg(node)
                    if point is not None:
                        index.registry_points.setdefault(
                            point, (unit.display, node.lineno)
                        )
                elif name in _FIRE_NAMES:
                    point = _string_arg(node)
                    if point is not None:
                        index.fire_sites.append((unit, node.lineno, point))
    return index


# ----------------------------------------------------------------------
# finding emission
# ----------------------------------------------------------------------


def _emit(
    out: list[Diagnostic],
    unit: ModuleUnit,
    code: str,
    line: int,
    message: str,
    hint: str | None = None,
) -> None:
    waived = unit.ignores.get(line)
    if waived is not None and (not waived or code in waived):
        return
    out.append(
        Diagnostic(
            code=code,
            severity=Severity.ERROR,
            message=message,
            hint=hint,
            path=unit.display,
            line=line,
        )
    )


# ----------------------------------------------------------------------
# SNW401: @requires_latch call sites must hold or acquire the latch
# ----------------------------------------------------------------------


def _check_latch_required(
    unit: ModuleUnit, index: _Index, out: list[Diagnostic]
) -> None:
    def visit(node: ast.AST, holds: bool, latch_depth: int) -> None:
        if isinstance(node, _FUNCTION_NODES):
            fn_holds = _declared_latch_of(node) is not None
            for child in ast.iter_child_nodes(node):
                visit(child, fn_holds, 0)
            return
        if isinstance(node, ast.Lambda):
            # a lambda body runs later, outside any latch held right now
            for child in ast.iter_child_nodes(node):
                visit(child, False, 0)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquires = any(
                _is_latch_acquisition(item.context_expr) for item in node.items
            )
            for item in node.items:
                visit(item, holds, latch_depth)
            inner = latch_depth + (1 if acquires else 0)
            for stmt in node.body:
                visit(stmt, holds, inner)
            return
        if isinstance(node, ast.Call):
            name = _terminal_name(node.func)
            if name is not None and name in index.latch_required:
                if not holds and latch_depth == 0:
                    latch = index.latch_required[name]
                    _emit(
                        out,
                        unit,
                        LATCH_REQUIRED_CALL,
                        node.lineno,
                        f"call to {name}() requires the {latch!r} latch, but the "
                        "enclosing scope neither holds nor acquires it",
                        hint=(
                            "wrap the call in `with ...exclusive_latch(...)` or "
                            "tag the caller with @requires_latch to pass the "
                            "obligation up"
                        ),
                    )
        for child in ast.iter_child_nodes(node):
            visit(child, holds, latch_depth)

    visit(unit.tree, False, 0)


# ----------------------------------------------------------------------
# SNW402: write `dirty` before `materialized`
# ----------------------------------------------------------------------


def _check_flag_order(unit: ModuleUnit, out: list[Diagnostic]) -> None:
    for fn in _iter_functions(unit.tree):
        first_write: dict[tuple[str, str], int] = {}
        for node in _walk_local(fn):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if isinstance(target, ast.Attribute) and target.attr in (
                    "dirty",
                    "materialized",
                ):
                    key = (ast.unparse(target.value), target.attr)
                    first_write.setdefault(key, node.lineno)
        for (base, attr), line in first_write.items():
            if attr != "materialized":
                continue
            dirty_line = first_write.get((base, "dirty"))
            if dirty_line is not None and line < dirty_line:
                _emit(
                    out,
                    unit,
                    FLAG_WRITE_ORDER,
                    line,
                    f"column-state flip writes {base}.materialized before "
                    f"{base}.dirty",
                    hint=(
                        "write dirty first: once materialized is visible, "
                        "concurrent planners only bridge in-flight rows with "
                        "COALESCE when dirty is already set"
                    ),
                )


# ----------------------------------------------------------------------
# SNW403: fire() sites vs the fault-point registry
# ----------------------------------------------------------------------


def _check_fault_points(
    units: Sequence[ModuleUnit],
    index: _Index,
    out: list[Diagnostic],
    *,
    registry_fallback: bool,
) -> None:
    registry = dict(index.registry_points)
    check_dead = index.registry_found
    if not registry and registry_fallback:
        # Analyzing a subset that doesn't include the registry module:
        # fall back to the live registry so unknown-point checking still
        # works, but skip the dead-point direction (this subset cannot
        # prove a point unfired).
        try:
            from ..testing.faults import known_points

            registry = {point: ("", 0) for point in known_points()}
        except Exception:  # pragma: no cover - packaging edge
            registry = {}
        check_dead = False

    fired: set[str] = set()
    for unit, line, point in index.fire_sites:
        fired.add(point)
        if registry and point not in registry:
            _emit(
                out,
                unit,
                FAULT_POINT_MISMATCH,
                line,
                f"fire() names unregistered fault point {point!r}",
                hint="register it in the fault-point registry (_KNOWN_POINTS)",
            )
    if check_dead:
        by_display = {unit.display: unit for unit in units}
        for point, (display, line) in sorted(registry.items()):
            if point in fired:
                continue
            unit = by_display.get(display)
            if unit is None:  # pragma: no cover - registry outside the set
                continue
            _emit(
                out,
                unit,
                FAULT_POINT_MISMATCH,
                line,
                f"registered fault point {point!r} has no fire() call site",
                hint="delete the dead registration or add the injection site",
            )


# ----------------------------------------------------------------------
# SNW404: durable WAL append only after activate()
# ----------------------------------------------------------------------


def _durable_wal_assignment(node: ast.Assign) -> list[str] | None:
    """Target names when ``node`` binds a durable ``WriteAheadLog(...)``."""
    value = node.value
    if not isinstance(value, ast.Call) or _terminal_name(value.func) != "WriteAheadLog":
        return None
    durable = False
    if len(value.args) >= 2:
        directory = value.args[1]
        if not (isinstance(directory, ast.Constant) and directory.value is None):
            durable = True
    for keyword in value.keywords:
        if keyword.arg == "directory" and not (
            isinstance(keyword.value, ast.Constant) and keyword.value.value is None
        ):
            durable = True
    if not durable:
        return None
    return [ast.unparse(target) for target in node.targets]


def _check_wal_activation(unit: ModuleUnit, out: list[Diagnostic]) -> None:
    for fn in _iter_functions(unit.tree):
        # (lineno, col, kind, key) -- kinds: bind / activate / append
        events: list[tuple[int, int, str, str]] = []
        for node in _walk_local(fn):
            if isinstance(node, ast.Assign):
                keys = _durable_wal_assignment(node)
                if keys:
                    for key in keys:
                        events.append((node.lineno, node.col_offset, "bind", key))
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in ("activate", "append"):
                    key = ast.unparse(node.func.value)
                    events.append(
                        (node.lineno, node.col_offset, node.func.attr, key)
                    )
        durable: set[str] = set()
        activated: set[str] = set()
        for lineno, _col, kind, key in sorted(events):
            if kind == "bind":
                durable.add(key)
                activated.discard(key)
            elif kind == "activate":
                activated.add(key)
            elif key in durable and key not in activated:
                _emit(
                    out,
                    unit,
                    WAL_APPEND_BEFORE_ACTIVATE,
                    lineno,
                    f"{key}.append(...) is reachable before {key}.activate()",
                    hint=(
                        "a durable WAL must recover and activate() before "
                        "accepting frames, or new frames interleave with "
                        "unrecovered ones"
                    ),
                )


# ----------------------------------------------------------------------
# SNW405: no bare acquire() without try/finally release
# ----------------------------------------------------------------------


def _check_bare_acquire(unit: ModuleUnit, out: list[Diagnostic]) -> None:
    for fn in _iter_functions(unit.tree):
        released_in_finally: set[str] = set()
        for node in _walk_local(fn):
            if not isinstance(node, ast.Try):
                continue
            for stmt in node.finalbody:
                for sub in ast.walk(stmt):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "release"
                    ):
                        released_in_finally.add(ast.unparse(sub.func.value))
        for node in _walk_local(fn):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "acquire"
            ):
                base = ast.unparse(node.func.value)
                if base not in released_in_finally:
                    _emit(
                        out,
                        unit,
                        BARE_LATCH_ACQUIRE,
                        node.lineno,
                        f"bare {base}.acquire() with no try/finally release in "
                        "this function",
                        hint=(
                            "use a `with` block, or pair the acquire with a "
                            "release in a finally clause"
                        ),
                    )


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------


def analyze_paths(
    paths: Iterable[Path | str], *, registry_fallback: bool = True
) -> list[Diagnostic]:
    """Run every SNW4xx rule over ``paths`` and return sorted findings."""
    root = Path.cwd()
    units = [load_module(path, root) for path in iter_python_files(map(Path, paths))]
    index = _build_index(units)
    out: list[Diagnostic] = []
    for unit in units:
        _check_latch_required(unit, index, out)
        _check_flag_order(unit, out)
        _check_wal_activation(unit, out)
        _check_bare_acquire(unit, out)
    _check_fault_points(units, index, out, registry_fallback=registry_fallback)
    out.sort(key=lambda d: (d.path or "", d.line or 0, d.code))
    return out


def collect_fire_sites(paths: Iterable[Path | str]) -> list[tuple[str, int, str]]:
    """Every literal fire site as ``(display path, line, point)``.

    Exposed for the fault-registry hygiene test, which asserts coverage
    properties (enough sites, the expected subsystem prefixes) on top of
    the SNW403 pass.
    """
    root = Path.cwd()
    units = [load_module(path, root) for path in iter_python_files(map(Path, paths))]
    index = _build_index(units)
    return [(unit.display, line, point) for unit, line, point in index.fire_sites]


def format_finding(diagnostic: Diagnostic) -> str:
    """One-line ``path:line: CODE message`` rendering for CLI/shell output."""
    location = f"{diagnostic.path}:{diagnostic.line}"
    text = f"{location}: {diagnostic.code} {diagnostic.message}"
    if diagnostic.hint:
        text += f" ({diagnostic.hint})"
    return text


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.protocol",
        description="Engine-protocol static analyzer (SNW4xx rules).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to analyze (default: the repro package)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero when any finding is emitted (CI mode)",
    )
    args = parser.parse_args(argv)
    paths = args.paths or [Path(__file__).resolve().parents[1]]
    findings = analyze_paths(paths)
    for finding in findings:
        print(format_finding(finding))
    if findings:
        plural = "" if len(findings) == 1 else "s"
        print(f"engine protocol: {len(findings)} finding{plural}")
        return 1 if args.strict else 0
    print("engine protocol: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
