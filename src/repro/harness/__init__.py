"""Benchmark harness: timing, cost accounting, scales, and table output."""

from .runner import EXPECTED_FAILURES, SystemRun, build_systems, result_rows, run_suite
from .scale import ScaleConfig, large_scale, small_scale
from .tables import format_table, print_table
from .timing import Measurement, best_of, measure, mongo_modelled_io_seconds

__all__ = [
    "EXPECTED_FAILURES",
    "Measurement",
    "ScaleConfig",
    "SystemRun",
    "best_of",
    "build_systems",
    "format_table",
    "large_scale",
    "measure",
    "mongo_modelled_io_seconds",
    "print_table",
    "result_rows",
    "run_suite",
    "small_scale",
]
