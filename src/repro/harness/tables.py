"""Plain-text table rendering for benchmark reports.

Every benchmark prints the same kind of artifact the paper's tables and
figures contain: a labelled grid of systems x tasks.  Keeping the renderer
in one place makes the bench outputs uniform and diffable.
"""

from __future__ import annotations

from typing import Any, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render an ASCII table with right-padded columns."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))

    def line(values: Sequence[str]) -> str:
        return "| " + " | ".join(v.ljust(widths[i]) for i, v in enumerate(values)) + " |"

    separator = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    out: list[str] = []
    if title:
        out.append(title)
    out.append(separator)
    out.append(line(list(headers)))
    out.append(separator)
    for row in rendered_rows:
        out.append(line(row))
    out.append(separator)
    return "\n".join(out)


def _cell(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def print_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> None:
    print()
    print(format_table(headers, rows, title))
