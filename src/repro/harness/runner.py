"""Benchmark orchestration: build the four systems, run the suite, render.

One :class:`SystemRun` wraps a NoBench adapter with the hooks needed to
measure it uniformly (cost counters for the RDBMS-backed systems, scan-byte
accounting for the MongoDB baseline).  ``build_systems`` loads the same
generated documents into all four systems; ``run_suite`` executes a list of
query ids on each, capturing the paper's expected failures
(``TypeCastError`` for Postgres-JSON Q7, ``DiskFullError`` for EAV/Mongo at
the large scale) instead of aborting the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from ..baselines.mongo import MongoDatabase
from ..nobench.generator import NoBenchGenerator, NoBenchParams
from ..nobench.queries import (
    EavNoBench,
    MongoNoBench,
    NoBenchAdapter,
    PgJsonNoBench,
    SinewNoBench,
)
from ..core.sinew import SinewConfig
from ..rdbms.cost import CostCounters, IoCostModel
from ..rdbms.errors import DiskFullError, TypeCastError
from .scale import ScaleConfig
from .timing import Measurement, best_of, measure, mongo_modelled_io_seconds

EXPECTED_FAILURES = (DiskFullError, TypeCastError)


@dataclass
class SystemRun:
    """One benchmarked system plus its measurement hooks."""

    adapter: NoBenchAdapter
    counters: CostCounters | None = None
    io_model: IoCostModel | None = None
    mongo: MongoDatabase | None = None
    load_measurement: Measurement | None = None

    @property
    def name(self) -> str:
        return self.adapter.name

    def measure(
        self, label: str, fn: Callable[[], Any], repeats: int = 1
    ) -> Measurement:
        """Measure one operation with this system's accounting hooks."""
        if self.mongo is not None:
            before = self.mongo.stats.bytes_scanned
            runner = (
                best_of(label, fn, repeats, expected_failures=EXPECTED_FAILURES)
                if repeats > 1
                else measure(label, fn, expected_failures=EXPECTED_FAILURES)
            )
            runner.modelled_io_seconds = mongo_modelled_io_seconds(
                (self.mongo.stats.bytes_scanned - before) // max(1, repeats)
            )
            return runner
        if repeats > 1:
            return best_of(
                label,
                fn,
                repeats,
                counters=self.counters,
                io_model=self.io_model,
                expected_failures=EXPECTED_FAILURES,
            )
        return measure(
            label,
            fn,
            counters=self.counters,
            io_model=self.io_model,
            expected_failures=EXPECTED_FAILURES,
        )


def build_systems(
    scale: ScaleConfig,
    generator: NoBenchGenerator | None = None,
    systems: Iterable[str] = ("Sinew", "MongoDB", "EAV", "PG JSON"),
) -> tuple[list[SystemRun], NoBenchParams]:
    """Generate the dataset once and load it into every requested system.

    Returns the loaded systems (with load-time measurements attached) and
    the shared query parameters.
    """
    generator = generator or NoBenchGenerator(scale.n_records)
    documents = list(generator.documents())
    params = generator.params()
    wanted = set(systems)
    runs: list[SystemRun] = []

    if "Sinew" in wanted:
        sinew = SinewNoBench(
            params, SinewConfig(database=scale.database_config())
        )
        run = SystemRun(
            sinew,
            counters=sinew.sdb.db.counters,
            io_model=sinew.sdb.db.config.io_model,
        )
        run.load_measurement = run.measure(
            "load", lambda: (sinew.load(documents), sinew.prepare())
        )
        runs.append(run)

    if "MongoDB" in wanted:
        mongo = MongoNoBench(params)
        run = SystemRun(mongo, mongo=mongo.client)
        run.load_measurement = run.measure("load", lambda: mongo.load(documents))
        if scale.mongo_headroom_bytes is not None:
            # the disk fills up after loading: only `headroom` scratch left
            mongo.client.disk.budget_bytes = (
                mongo.client.disk.used_bytes + scale.mongo_headroom_bytes
            )
        runs.append(run)

    if "EAV" in wanted:
        eav = EavNoBench(params, scale.database_config())
        run = SystemRun(
            eav, counters=eav.store.db.counters, io_model=eav.store.db.config.io_model
        )
        run.load_measurement = run.measure(
            "load", lambda: (eav.load(documents), eav.prepare())
        )
        if scale.eav_headroom_bytes is not None:
            eav.store.db.disk.budget_bytes = (
                eav.store.db.disk.used_bytes + scale.eav_headroom_bytes
            )
        runs.append(run)

    if "PG JSON" in wanted:
        pgjson = PgJsonNoBench(params, scale.database_config())
        run = SystemRun(
            pgjson,
            counters=pgjson.store.db.counters,
            io_model=pgjson.store.db.config.io_model,
        )
        run.load_measurement = run.measure(
            "load", lambda: (pgjson.load(documents), pgjson.prepare())
        )
        runs.append(run)

    return runs, params


def run_suite(
    runs: list[SystemRun],
    query_ids: list[str],
    repeats: int = 2,
) -> dict[str, dict[str, Measurement]]:
    """Run each query on each system; returns results[query][system]."""
    results: dict[str, dict[str, Measurement]] = {}
    for query_id in query_ids:
        per_system: dict[str, Measurement] = {}
        for run in runs:
            adapter = run.adapter
            if query_id == "update":
                per_system[run.name] = run.measure(query_id, adapter.update, repeats=1)
            else:
                per_system[run.name] = run.measure(
                    query_id, lambda a=adapter, q=query_id: a.run(q), repeats=repeats
                )
        results[query_id] = per_system
    return results


def result_rows(
    results: Mapping[str, Mapping[str, Measurement]],
    system_names: list[str],
    use_effective: bool,
) -> list[list[str]]:
    """Flatten suite results into table rows (query x system seconds)."""
    rows: list[list[str]] = []
    for query_id, per_system in results.items():
        row = [query_id]
        for name in system_names:
            measurement = per_system.get(name)
            row.append(measurement.cell(use_effective) if measurement else "-")
        rows.append(row)
    return rows
