"""Measurement utilities for the benchmark suite.

Pure-Python wall-clock numbers do not transfer across machines, so every
measurement pairs wall time with the engine's deterministic cost counters
and a modelled I/O time derived from them.  The "effective" time used in
the I/O-bound (large-scale) regime is ``wall + modelled_io`` -- exactly the
role the paper's 64M-record dataset plays against its 16M in-memory one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from ..rdbms.cost import CostCounters, IoCostModel

#: Sequential read bandwidth of the paper's testbed ("We observed read
#: speeds of 250-300MB/s"), used to model MongoDB's scan I/O.
PAPER_READ_BANDWIDTH_BYTES_PER_S = 275e6


@dataclass
class Measurement:
    """One timed operation with its mechanical cost."""

    label: str
    wall_seconds: float
    result: Any = None
    failed: str | None = None  # exception class name when the op failed
    counter_deltas: dict[str, int] = field(default_factory=dict)
    modelled_io_seconds: float = 0.0

    @property
    def effective_seconds(self) -> float:
        """Wall time plus modelled I/O (the large-scale regime metric)."""
        return self.wall_seconds + self.modelled_io_seconds

    def cell(self, use_effective: bool = False) -> str:
        """Render for a results table ('FAIL(DiskFullError)' on failure)."""
        if self.failed is not None:
            return f"FAIL({self.failed})"
        seconds = self.effective_seconds if use_effective else self.wall_seconds
        return f"{seconds:.4f}"


def measure(
    label: str,
    fn: Callable[[], Any],
    counters: CostCounters | None = None,
    io_model: IoCostModel | None = None,
    expected_failures: tuple[type, ...] = (),
) -> Measurement:
    """Time ``fn`` once, capturing counter deltas and expected failures."""
    before = counters.snapshot() if counters is not None else {}
    start = time.perf_counter()
    try:
        result = fn()
        failed = None
    except expected_failures as error:
        result = None
        failed = type(error).__name__
    wall = time.perf_counter() - start
    deltas = counters.diff(before) if counters is not None else {}
    modelled = 0.0
    if counters is not None and io_model is not None:
        snapshot = CostCounters(**deltas)
        modelled = io_model.modelled_io_seconds(snapshot)
    return Measurement(
        label=label,
        wall_seconds=wall,
        result=result,
        failed=failed,
        counter_deltas=deltas,
        modelled_io_seconds=modelled,
    )


def best_of(
    label: str,
    fn: Callable[[], Any],
    repeats: int = 3,
    counters: CostCounters | None = None,
    io_model: IoCostModel | None = None,
    expected_failures: tuple[type, ...] = (),
) -> Measurement:
    """Run ``fn`` several times (warmed caches, like the paper's 4-run
    averages) and keep the fastest successful measurement."""
    measurements = [
        measure(label, fn, counters, io_model, expected_failures)
        for _ in range(max(1, repeats))
    ]
    failures = [m for m in measurements if m.failed is not None]
    successes = [m for m in measurements if m.failed is None]
    if successes:
        return min(successes, key=lambda m: m.wall_seconds)
    return failures[0]


def mongo_modelled_io_seconds(bytes_scanned: int) -> float:
    """Modelled scan I/O for the MongoDB baseline (no buffer pool of its
    own; reads are charged at the paper's observed disk bandwidth)."""
    return bytes_scanned / PAPER_READ_BANDWIDTH_BYTES_PER_S
