"""Benchmark scale configurations.

The paper runs two dataset sizes: 16 million records (10 GB, fits in the
32 GB testbed's memory) and 64 million records (40 GB, I/O-bound).  A
pure-Python engine cannot hold 16M rich documents, so scales here are
~1000x smaller and the I/O-bound regime is created mechanically: the
buffer pool is shrunk below the dataset size, page misses are counted,
and the reported "effective" time adds the modelled I/O those misses
imply.  Relative orderings -- the reproduction target -- are preserved.

``SMALL`` corresponds to the paper's in-memory 16M-record runs and
``LARGE`` to the I/O-bound 64M-record runs.  The EAV/MongoDB disk budgets
for the LARGE runs are sized so that queries building object-scale
intermediates (Q8/Q9/Q11) exhaust them, as in paper sections 6.4-6.5.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..rdbms.cost import IoCostModel
from ..rdbms.database import DatabaseConfig


@dataclass(frozen=True)
class ScaleConfig:
    """One benchmark scale.

    ``eav_headroom_bytes`` / ``mongo_headroom_bytes`` model the *free disk
    left after loading* at this scale (the paper's 128 GB SSD held the
    original data plus all four systems' representations).  ``None`` means
    effectively unlimited.  The harness sets each system's hard budget to
    ``bytes_used_after_load + headroom``, so queries whose scratch space
    (sort/hash spills, reconstruction spools, client-side join
    intermediates) exceeds the headroom die with DiskFullError -- the
    Q8/Q9/Q11 terminations of paper sections 6.4-6.5.
    """

    name: str
    n_records: int
    buffer_pool_pages: int
    eav_headroom_bytes: int | None
    mongo_headroom_bytes: int | None
    use_effective_time: bool

    def database_config(
        self,
        parallel_workers: int | None = None,
        executor_lane: str | None = None,
    ) -> DatabaseConfig:
        """Database tunables for this scale.

        ``parallel_workers`` overrides the executor width (else the
        REPRO_PARALLEL_WORKERS / cpu-count default applies) and
        ``executor_lane`` the lane (else REPRO_EXECUTOR_LANE / "thread");
        the bench gate uses both to compare serial, thread, and process
        runs at one scale.
        """
        config = DatabaseConfig(
            buffer_pool_pages=self.buffer_pool_pages,
            io_model=IoCostModel(),
        )
        if parallel_workers is not None:
            config.parallel_workers = max(1, parallel_workers)
        if executor_lane is not None:
            config.executor_lane = executor_lane
        return config


def _scaled(base: int) -> int:
    """Apply the REPRO_SCALE environment multiplier (default 1.0)."""
    factor = float(os.environ.get("REPRO_SCALE", "1.0"))
    return max(200, int(base * factor))


def small_scale() -> ScaleConfig:
    """The in-memory regime (paper: 16M records / 10 GB)."""
    return ScaleConfig(
        name="4k (in-memory regime)",
        n_records=_scaled(16_000 // 4),
        buffer_pool_pages=65_536,  # everything stays resident
        eav_headroom_bytes=None,
        mongo_headroom_bytes=None,
        use_effective_time=False,
    )


def large_scale() -> ScaleConfig:
    """The I/O-bound regime (paper: 64M records / 40 GB).

    The buffer pool is ~1/4 of what the dataset needs, so scans register
    page reads; EAV and MongoDB get finite disk budgets sized to fail on
    the intermediate-heavy queries.
    """
    n_records = _scaled(64_000 // 4)
    return ScaleConfig(
        name="16k (I/O-bound regime)",
        n_records=n_records,
        buffer_pool_pages=max(64, n_records // 32),
        # ~3 MB of free scratch: Q1-Q7/Q10 spills fit, Q8/Q9/Q11
        # reconstruction spools do not (see ScaleConfig docstring).
        eav_headroom_bytes=3 * 1024 * 1024,
        # less free space than one re-materialisation of the collection:
        # the client-side join's right-side key spill cannot fit.
        mongo_headroom_bytes=3 * 1024 * 1024,
        use_effective_time=True,
    )
