"""The Sinew SQL service layer (``python -m repro.service``).

A network front end over one shared :class:`~repro.core.SinewDB`: an
asyncio TCP server speaking a JSON-lines protocol, per-connection
:class:`~repro.service.session.Session` objects owning transaction and
prepared-statement state, a shared prepared-plan cache with schema-epoch
invalidation, and connection admission control -- the gateway that turns
the embedded engine into a multi-client database (DESIGN.md section 12).
PR 9 made its operations fault-tolerant: exactly-once write retries via
per-session dedup journals (:mod:`repro.service.retry`), graceful drain,
a read-only degraded mode after WAL I/O failures, and supervised
background workers (DESIGN.md section 13).

Quickstart::

    # server
    python -m repro.service --port 5543

    # client
    from repro.service import ServiceClient
    with ServiceClient("127.0.0.1", 5543) as client:
        client.create_collection("docs")
        client.load("docs", [{"user": {"id": 1}, "text": "hello"}])
        result = client.query('SELECT "user.id" FROM docs')
"""

from .client import AsyncServiceClient, ServiceClient, ServiceError
from .retry import JournalRegistry, RetryJournal, RetryPolicy
from .protocol import (
    PROTOCOL_VERSION,
    RemoteResult,
    decode_message,
    decode_result,
    decode_row,
    decode_value,
    encode_message,
    encode_result,
    encode_row,
    encode_value,
    infer_column_types,
)
from .server import ServiceConfig, SinewService
from .session import Session

__all__ = [
    "AsyncServiceClient",
    "JournalRegistry",
    "PROTOCOL_VERSION",
    "RemoteResult",
    "RetryJournal",
    "RetryPolicy",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "Session",
    "SinewService",
    "decode_message",
    "decode_result",
    "decode_row",
    "decode_value",
    "encode_message",
    "encode_result",
    "encode_row",
    "encode_value",
    "infer_column_types",
]
