"""Client bindings for the Sinew service (sync and asyncio flavours).

Both clients speak the JSON-lines protocol and surface server-side
failures as :class:`ServiceError` carrying the structured error code
(``syntax``, ``semantic``, ``busy``, ``timeout``, ...), so callers can
branch on ``error.code`` -- e.g. retry on ``error.retryable``.

:class:`ServiceClient` (blocking sockets) is the porcelain for scripts
and the shell's ``\\connect`` mode; :class:`AsyncServiceClient` is the
plumbing the concurrency harness uses to hold hundreds of connections
open from one event loop.
"""

from __future__ import annotations

import socket
from typing import Any, Mapping

from .protocol import (
    RemoteResult,
    decode_message,
    decode_result,
    encode_message,
    encode_value,
)


class ServiceError(Exception):
    """A structured error returned by the server."""

    def __init__(self, code: str, message: str, payload: dict[str, Any] | None = None):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.payload = payload or {}

    @property
    def retryable(self) -> bool:
        return bool(self.payload.get("retryable"))


def _raise_on_error(response: dict[str, Any]) -> dict[str, Any]:
    if response.get("ok"):
        return response
    error = response.get("error") or {}
    raise ServiceError(
        error.get("code", "internal"),
        error.get("message", "unknown server error"),
        error,
    )


class ServiceClient:
    """Blocking client: one TCP connection, one server session."""

    def __init__(self, host: str = "127.0.0.1", port: int = 5543, timeout: float = 60.0):
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")
        self.greeting = _raise_on_error(self._read())
        self.session_id: int = self.greeting.get("session", -1)

    # -- wire plumbing -------------------------------------------------

    def _read(self) -> dict[str, Any]:
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return decode_message(line)

    def request(self, message: dict[str, Any]) -> dict[str, Any]:
        """One raw request/response round trip (raises on server error)."""
        self._sock.sendall(encode_message(message))
        return _raise_on_error(self._read())

    # -- porcelain -----------------------------------------------------

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def query(self, sql: str) -> RemoteResult:
        return decode_result(self.request({"op": "query", "sql": sql})["result"])

    def execute(self, sql: str) -> RemoteResult:
        return self.query(sql)

    def prepare(self, name: str, sql: str) -> str:
        return self.request({"op": "prepare", "name": name, "sql": sql})["prepared"]

    def execute_prepared(self, name: str) -> RemoteResult:
        return decode_result(self.request({"op": "execute", "name": name})["result"])

    def deallocate(self, name: str) -> bool:
        return bool(self.request({"op": "deallocate", "name": name})["deallocated"])

    def load(self, table: str, documents: list[Mapping[str, Any]]) -> dict[str, Any]:
        response = self.request(
            {
                "op": "load",
                "table": table,
                "documents": [encode_value(dict(document)) for document in documents],
            }
        )
        return {key: value for key, value in response.items() if key != "ok"}

    def create_collection(self, table: str) -> None:
        # collections auto-create on first load; an explicit empty load
        # gives scripts the same call shape as the embedded API
        self.load(table, [])

    def set_option(self, key: str, value: Any) -> dict[str, Any]:
        return self.request({"op": "set", "key": key, "value": encode_value(value)})[
            "settings"
        ]

    def session(self) -> dict[str, Any]:
        return self.request({"op": "session"})["session"]

    def status(self) -> dict[str, Any]:
        return self.request({"op": "status"})["status"]

    def begin(self) -> None:
        self.query("BEGIN")

    def commit(self) -> None:
        self.query("COMMIT")

    def rollback(self) -> None:
        self.query("ROLLBACK")

    def close(self) -> None:
        try:
            self.request({"op": "close"})
        except (ConnectionError, OSError, ServiceError):
            pass
        finally:
            self._file.close()
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class AsyncServiceClient:
    """asyncio client: what the load harness opens 200 of."""

    def __init__(self, host: str = "127.0.0.1", port: int = 5543):
        self.host = host
        self.port = port
        self._reader: Any = None
        self._writer: Any = None
        self.greeting: dict[str, Any] = {}
        self.session_id: int = -1

    async def connect(self) -> "AsyncServiceClient":
        import asyncio

        self._reader, self._writer = await asyncio.open_connection(self.host, self.port)
        self.greeting = _raise_on_error(await self._read())
        self.session_id = self.greeting.get("session", -1)
        return self

    async def _read(self) -> dict[str, Any]:
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return decode_message(line)

    async def request(self, message: dict[str, Any]) -> dict[str, Any]:
        self._writer.write(encode_message(message))
        await self._writer.drain()
        return _raise_on_error(await self._read())

    async def query(self, sql: str) -> RemoteResult:
        response = await self.request({"op": "query", "sql": sql})
        return decode_result(response["result"])

    async def load(self, table: str, documents: list[Mapping[str, Any]]) -> dict[str, Any]:
        response = await self.request(
            {
                "op": "load",
                "table": table,
                "documents": [encode_value(dict(document)) for document in documents],
            }
        )
        return {key: value for key, value in response.items() if key != "ok"}

    async def status(self) -> dict[str, Any]:
        return (await self.request({"op": "status"}))["status"]

    async def close(self) -> None:
        try:
            if self._writer is not None:
                await self.request({"op": "close"})
        except (ConnectionError, OSError, ServiceError):
            pass
        finally:
            if self._writer is not None:
                self._writer.close()
                try:
                    await self._writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

    async def __aenter__(self) -> "AsyncServiceClient":
        return await self.connect()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()
