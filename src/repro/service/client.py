"""Client bindings for the Sinew service (sync and asyncio flavours).

Both clients speak the JSON-lines protocol and surface server-side
failures as :class:`ServiceError` carrying the structured error code
(``syntax``, ``semantic``, ``busy``, ``timeout``, ...), so callers can
branch on ``error.code`` -- e.g. retry on ``error.retryable``.

:class:`ServiceClient` (blocking sockets) is the porcelain for scripts
and the shell's ``\\connect`` mode; :class:`AsyncServiceClient` is the
plumbing the concurrency harness uses to hold hundreds of connections
open from one event loop.

Fault tolerance (opt-in via ``retry=RetryPolicy()`` or ``retry=True``):

* separate **connect** and **read timeouts** instead of one blanket
  socket timeout;
* transparent retries with capped exponential **backoff + jitter** on
  ``busy`` and any error the server marks ``retryable``;
* **exactly-once writes**: every non-read statement is stamped with a
  session-scoped ``rid``; on a connection loss or read timeout the
  client reconnects, claims its old session journal back with
  ``resume``, and re-sends the same rid -- the server replays the
  recorded outcome instead of re-executing.  Responses piggyback an
  ``ack`` watermark so the server can drop journal entries the client
  has seen.
* a rid-less write that dies mid-flight keeps the honest PR 7
  behaviour: the error propagates, because retrying it blindly could
  double-apply.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Any, Mapping

from .protocol import (
    RemoteResult,
    decode_message,
    decode_result,
    encode_message,
    encode_value,
)
from .retry import RetryPolicy

#: leading SQL keywords that mean "this statement has effects" -- the
#: client-side classification that decides which statements get a rid
_WRITE_TOKENS = frozenset(
    {
        "insert",
        "update",
        "delete",
        "create",
        "drop",
        "alter",
        "begin",
        "commit",
        "rollback",
    }
)


def sql_is_write(sql: str) -> bool:
    """First-token write classification (client side, no parser)."""
    stripped = sql.lstrip()
    if not stripped:
        return False
    return stripped.split(None, 1)[0].lower() in _WRITE_TOKENS


class ServiceError(Exception):
    """A structured error returned by the server."""

    def __init__(self, code: str, message: str, payload: dict[str, Any] | None = None):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.payload = payload or {}

    @property
    def retryable(self) -> bool:
        return bool(self.payload.get("retryable"))


def _raise_on_error(response: dict[str, Any]) -> dict[str, Any]:
    if response.get("ok"):
        return response
    error = response.get("error") or {}
    raise ServiceError(
        error.get("code", "internal"),
        error.get("message", "unknown server error"),
        error,
    )


def _message_has_effects(message: dict[str, Any]) -> bool:
    """Conservative: could re-sending this message double-apply?"""
    op = message.get("op")
    if op == "query":
        sql = message.get("sql")
        return isinstance(sql, str) and sql_is_write(sql)
    return op in ("execute", "load")


def _sql_token(message: dict[str, Any]) -> str:
    if message.get("op") != "query":
        return ""
    sql = message.get("sql")
    if not isinstance(sql, str) or not sql.strip():
        return ""
    return sql.lstrip().split(None, 1)[0].lower()


class ServiceClient:
    """Blocking client: one TCP connection, one server session."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 5543,
        timeout: float = 60.0,
        *,
        connect_timeout: float | None = None,
        read_timeout: float | None = None,
        retry: "RetryPolicy | bool | None" = None,
        seed: int | None = None,
    ):
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout if connect_timeout is not None else timeout
        self.read_timeout = read_timeout if read_timeout is not None else timeout
        if retry is True:
            retry = RetryPolicy()
        elif retry is False:
            retry = None
        self.retry_policy: RetryPolicy | None = retry
        self._rng = random.Random(seed)
        self._sock: socket.socket | None = None
        self._file: Any = None
        self.greeting: dict[str, Any] = {}
        self.session_id: int = -1
        self.resume_token: str | None = None
        #: next request id to stamp on a write (session-scoped, monotonic)
        self._rid = 0
        #: highest rid whose response this client has received
        self._ack = 0
        #: confirmed inside BEGIN..COMMIT; a connection loss here means
        #: the server rolled the transaction back, so retrying anything
        #: but the COMMIT/ROLLBACK itself would escape the transaction
        self.in_transaction = False
        self.retries = 0
        self.replays = 0
        self.reconnects = 0
        self._establish()

    # -- wire plumbing -------------------------------------------------

    def _establish(self) -> bool:
        """(Re)connect; returns whether the old session journal resumed."""
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout
        )
        self._sock.settimeout(self.read_timeout)
        self._file = self._sock.makefile("rb")
        self.greeting = _raise_on_error(self._read())
        self.session_id = self.greeting.get("session", -1)
        previous_token = self.resume_token
        self.resume_token = self.greeting.get("resume_token")
        if previous_token is None:
            return False
        # reconnect: claim the disconnected session's journal so rid
        # retries replay instead of re-executing
        self.reconnects += 1
        self._sock.sendall(
            encode_message({"op": "resume", "token": previous_token})
        )
        response = _raise_on_error(self._read())
        return bool(response.get("resumed"))

    def _teardown(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._file = None
        self._sock = None
        # an open transaction dies with the connection (the server rolls
        # it back when it sees the disconnect)
        self.in_transaction = False

    def _read(self) -> dict[str, Any]:
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return decode_message(line)

    def _send(self, message: dict[str, Any]) -> None:
        if self._ack:
            message = {**message, "ack": self._ack}
        self._sock.sendall(encode_message(message))

    def next_rid(self) -> int:
        self._rid += 1
        return self._rid

    def kill(self) -> None:
        """Drop the socket without a goodbye (chaos/testing): simulates
        abrupt client death; the next request reconnects and resumes."""
        self._teardown()

    def request(self, message: dict[str, Any]) -> dict[str, Any]:
        """One request/response round trip (raises on server error).

        With a :class:`RetryPolicy` attached, retryable failures --
        ``busy``, retryable timeouts, connection loss -- are retried
        under the policy's backoff; everything else raises immediately.
        """
        if self.retry_policy is None:
            self._send(dict(message))
            return self._finish(message, _raise_on_error(self._read()))
        return self._request_retrying(dict(message))

    def _finish(self, message: dict[str, Any], response: dict[str, Any]) -> dict[str, Any]:
        rid = message.get("rid")
        if isinstance(rid, int):
            # requests are sequential on this connection, so a response
            # for rid N means every earlier rid was responded to as well
            self._ack = max(self._ack, rid)
            if response.get("replayed"):
                self.replays += 1
        token = _sql_token(message)
        if token == "begin":
            self.in_transaction = True
        elif token in ("commit", "rollback"):
            self.in_transaction = False
        return response

    def _request_retrying(self, message: dict[str, Any]) -> dict[str, Any]:
        policy = self.retry_policy
        assert policy is not None
        rid = message.get("rid")
        deadline = time.monotonic() + policy.deadline
        #: a send happened whose outcome we never learned
        in_doubt = False
        last_error: Exception | None = None
        for attempt in range(policy.max_attempts):
            if attempt:
                delay = policy.backoff(attempt - 1, self._rng)
                if time.monotonic() + delay > deadline:
                    break
                time.sleep(delay)
            sent = False
            try:
                if self._sock is None:
                    resumed = self._establish()
                    if in_doubt and rid is not None and not resumed:
                        raise ServiceError(
                            "resume",
                            "session journal expired with a write outcome "
                            "unknown; cannot safely retry",
                            {"rid": rid},
                        )
                self._send(dict(message))
                sent = True
                response = self._read()
            except ServiceError as error:
                if error.retryable:
                    self.retries += 1
                    last_error = error
                    self._teardown()
                    continue
                raise
            except (ConnectionError, OSError) as error:
                # covers refused connects, resets, and read timeouts
                # (socket.timeout is an OSError); the connection framing
                # is unknown now, so always reconnect
                was_in_txn = self.in_transaction
                self._teardown()
                if not policy.retry_connect:
                    raise
                if sent and rid is None and _message_has_effects(message):
                    # indeterminate rid-less write: retrying could
                    # double-apply, surface it honestly instead
                    raise
                if was_in_txn and _sql_token(message) not in ("commit", "rollback"):
                    # the transaction context died with the connection;
                    # re-running this statement on a fresh session would
                    # silently escape the transaction (an in-doubt
                    # COMMIT is safe: the journal replays it, and if it
                    # never ran the re-execution fails cleanly with "no
                    # transaction in progress")
                    raise
                in_doubt = in_doubt or sent
                self.retries += 1
                last_error = error
                continue
            if response.get("ok"):
                return self._finish(message, response)
            error_info = response.get("error") or {}
            if error_info.get("retryable"):
                # busy shed, retryable timeout, or a "retry" verdict for
                # a rid whose original attempt failed -- re-send
                self.retries += 1
                last_error = ServiceError(
                    error_info.get("code", "internal"),
                    error_info.get("message", "retryable server error"),
                    error_info,
                )
                continue
            return self._finish(message, _raise_on_error(response))
        if isinstance(last_error, ServiceError):
            raise last_error
        raise ServiceError(
            "unavailable",
            f"request failed after retries: {last_error}",
            {"retryable": False},
        ) from last_error

    # -- porcelain -----------------------------------------------------

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def query(self, sql: str) -> RemoteResult:
        request: dict[str, Any] = {"op": "query", "sql": sql}
        if self.retry_policy is not None and sql_is_write(sql):
            request["rid"] = self.next_rid()
        return decode_result(self.request(request)["result"])

    def execute(self, sql: str) -> RemoteResult:
        return self.query(sql)

    def prepare(self, name: str, sql: str) -> str:
        return self.request({"op": "prepare", "name": name, "sql": sql})["prepared"]

    def execute_prepared(self, name: str) -> RemoteResult:
        request: dict[str, Any] = {"op": "execute", "name": name}
        if self.retry_policy is not None:
            # the server journals only if the prepared statement is a
            # write; a rid on a read execution is ignored
            request["rid"] = self.next_rid()
        return decode_result(self.request(request)["result"])

    def deallocate(self, name: str) -> bool:
        return bool(self.request({"op": "deallocate", "name": name})["deallocated"])

    def load(self, table: str, documents: list[Mapping[str, Any]]) -> dict[str, Any]:
        request: dict[str, Any] = {
            "op": "load",
            "table": table,
            "documents": [encode_value(dict(document)) for document in documents],
        }
        if self.retry_policy is not None:
            request["rid"] = self.next_rid()
        response = self.request(request)
        return {
            key: value
            for key, value in response.items()
            if key not in ("ok", "replayed")
        }

    def create_collection(self, table: str) -> None:
        # collections auto-create on first load; an explicit empty load
        # gives scripts the same call shape as the embedded API
        self.load(table, [])

    def set_option(self, key: str, value: Any) -> dict[str, Any]:
        return self.request({"op": "set", "key": key, "value": encode_value(value)})[
            "settings"
        ]

    def session(self) -> dict[str, Any]:
        return self.request({"op": "session"})["session"]

    def status(self) -> dict[str, Any]:
        return self.request({"op": "status"})["status"]

    def health(self) -> dict[str, Any]:
        return self.request({"op": "health"})["health"]

    def recover(self) -> dict[str, Any]:
        """Operator path: bring a degraded engine back (``recover`` op)."""
        return self.request({"op": "recover"})["recover"]

    def begin(self) -> None:
        self.query("BEGIN")

    def commit(self) -> None:
        self.query("COMMIT")

    def rollback(self) -> None:
        self.query("ROLLBACK")

    def close(self) -> None:
        try:
            if self._sock is not None:
                self._send({"op": "close"})
                _raise_on_error(self._read())
        except (ConnectionError, OSError, ServiceError):
            pass
        finally:
            self._teardown()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class AsyncServiceClient:
    """asyncio client: what the load harness opens 200 of."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 5543,
        *,
        connect_timeout: float | None = None,
        read_timeout: float | None = None,
        retry: "RetryPolicy | bool | None" = None,
        seed: int | None = None,
    ):
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.read_timeout = read_timeout
        if retry is True:
            retry = RetryPolicy()
        elif retry is False:
            retry = None
        self.retry_policy: RetryPolicy | None = retry
        self._rng = random.Random(seed)
        self._reader: Any = None
        self._writer: Any = None
        self.greeting: dict[str, Any] = {}
        self.session_id: int = -1
        self.resume_token: str | None = None
        self._rid = 0
        self._ack = 0
        self.in_transaction = False
        self.retries = 0
        self.replays = 0
        self.reconnects = 0

    async def connect(self) -> "AsyncServiceClient":
        await self._establish()
        return self

    async def _establish(self) -> bool:
        import asyncio

        opening = asyncio.open_connection(self.host, self.port)
        if self.connect_timeout is not None:
            self._reader, self._writer = await asyncio.wait_for(
                opening, self.connect_timeout
            )
        else:
            self._reader, self._writer = await opening
        self.greeting = _raise_on_error(await self._read())
        self.session_id = self.greeting.get("session", -1)
        previous_token = self.resume_token
        self.resume_token = self.greeting.get("resume_token")
        if previous_token is None:
            return False
        self.reconnects += 1
        self._writer.write(encode_message({"op": "resume", "token": previous_token}))
        await self._writer.drain()
        response = _raise_on_error(await self._read())
        return bool(response.get("resumed"))

    def _teardown(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
            except Exception:
                pass
        self._reader = None
        self._writer = None
        self.in_transaction = False

    async def _read(self) -> dict[str, Any]:
        import asyncio

        reading = self._reader.readline()
        if self.read_timeout is not None:
            try:
                line = await asyncio.wait_for(reading, self.read_timeout)
            except asyncio.TimeoutError as error:
                raise ConnectionError("read timed out") from error
        else:
            line = await reading
        if not line:
            raise ConnectionError("server closed the connection")
        return decode_message(line)

    async def _send(self, message: dict[str, Any]) -> None:
        if self._ack:
            message = {**message, "ack": self._ack}
        self._writer.write(encode_message(message))
        await self._writer.drain()

    def next_rid(self) -> int:
        self._rid += 1
        return self._rid

    def _finish(self, message: dict[str, Any], response: dict[str, Any]) -> dict[str, Any]:
        rid = message.get("rid")
        if isinstance(rid, int):
            self._ack = max(self._ack, rid)
            if response.get("replayed"):
                self.replays += 1
        token = _sql_token(message)
        if token == "begin":
            self.in_transaction = True
        elif token in ("commit", "rollback"):
            self.in_transaction = False
        return response

    async def request(self, message: dict[str, Any]) -> dict[str, Any]:
        if self.retry_policy is None:
            await self._send(dict(message))
            return self._finish(message, _raise_on_error(await self._read()))
        return await self._request_retrying(dict(message))

    async def _request_retrying(self, message: dict[str, Any]) -> dict[str, Any]:
        import asyncio

        policy = self.retry_policy
        assert policy is not None
        rid = message.get("rid")
        deadline = time.monotonic() + policy.deadline
        in_doubt = False
        last_error: Exception | None = None
        for attempt in range(policy.max_attempts):
            if attempt:
                delay = policy.backoff(attempt - 1, self._rng)
                if time.monotonic() + delay > deadline:
                    break
                await asyncio.sleep(delay)
            sent = False
            try:
                if self._writer is None:
                    resumed = await self._establish()
                    if in_doubt and rid is not None and not resumed:
                        raise ServiceError(
                            "resume",
                            "session journal expired with a write outcome "
                            "unknown; cannot safely retry",
                            {"rid": rid},
                        )
                await self._send(dict(message))
                sent = True
                response = await self._read()
            except ServiceError as error:
                if error.retryable:
                    self.retries += 1
                    last_error = error
                    self._teardown()
                    continue
                raise
            except (ConnectionError, OSError, asyncio.TimeoutError) as error:
                was_in_txn = self.in_transaction
                self._teardown()
                if not policy.retry_connect:
                    raise
                if sent and rid is None and _message_has_effects(message):
                    raise
                if was_in_txn and _sql_token(message) not in ("commit", "rollback"):
                    # transaction context died with the connection; see
                    # the sync client for the rationale
                    raise
                in_doubt = in_doubt or sent
                self.retries += 1
                last_error = error
                continue
            if response.get("ok"):
                return self._finish(message, response)
            error_info = response.get("error") or {}
            if error_info.get("retryable"):
                self.retries += 1
                last_error = ServiceError(
                    error_info.get("code", "internal"),
                    error_info.get("message", "retryable server error"),
                    error_info,
                )
                continue
            return self._finish(message, _raise_on_error(response))
        if isinstance(last_error, ServiceError):
            raise last_error
        raise ServiceError(
            "unavailable",
            f"request failed after retries: {last_error}",
            {"retryable": False},
        ) from last_error

    async def query(self, sql: str) -> RemoteResult:
        request: dict[str, Any] = {"op": "query", "sql": sql}
        if self.retry_policy is not None and sql_is_write(sql):
            request["rid"] = self.next_rid()
        response = await self.request(request)
        return decode_result(response["result"])

    async def load(self, table: str, documents: list[Mapping[str, Any]]) -> dict[str, Any]:
        request: dict[str, Any] = {
            "op": "load",
            "table": table,
            "documents": [encode_value(dict(document)) for document in documents],
        }
        if self.retry_policy is not None:
            request["rid"] = self.next_rid()
        response = await self.request(request)
        return {
            key: value
            for key, value in response.items()
            if key not in ("ok", "replayed")
        }

    async def status(self) -> dict[str, Any]:
        return (await self.request({"op": "status"}))["status"]

    async def health(self) -> dict[str, Any]:
        return (await self.request({"op": "health"}))["health"]

    async def close(self) -> None:
        try:
            if self._writer is not None:
                await self._send({"op": "close"})
                _raise_on_error(await self._read())
        except (ConnectionError, OSError, ServiceError):
            pass
        finally:
            if self._writer is not None:
                self._writer.close()
                try:
                    await self._writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
            self._reader = None
            self._writer = None

    async def __aenter__(self) -> "AsyncServiceClient":
        return await self.connect()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()
