"""Exactly-once write retries: dedup journal, resume registry, backoff.

The failure a SQL wire protocol cannot hide is the *indeterminate write*:
the client sent ``INSERT``/``COMMIT``/``load``, the connection (or its
patience) died before the response arrived, and the statement may or may
not have applied.  PR 7 answered that honestly -- write timeouts were
``retryable: false`` with "effects may apply" -- which is correct but
useless to a client that needs exactly-once effects.

This module makes retrying writes safe:

* Clients stamp every non-read statement with a session-scoped,
  monotonically increasing **request id** (``rid``).
* The server keeps a per-session :class:`RetryJournal` mapping
  rid -> outcome.  A retried rid returns the *recorded* outcome instead of
  re-executing; a rid whose original attempt is still running on a worker
  thread waits for it.  Only **successes** are journaled: a statement that
  failed had no effects (statement-level atomicity), so re-execution is
  safe and the entry is forgotten.
* Entries are bounded two ways: the client piggybacks an **acked
  watermark** (``ack: <highest rid whose response it received>``) on every
  request, dropping everything at or below it; an LRU ``capacity`` cap is
  the backstop for clients that never ack.
* Statements journaled inside an open ``BEGIN`` are flagged; ``ROLLBACK``
  (or an abort at disconnect) drops them -- their effects were undone, so
  a post-abort retry must re-execute, not replay a success that no longer
  holds.  ``COMMIT`` clears the flags.  The journaled ``COMMIT`` itself is
  the classic case: a commit acknowledged by the journal but lost on the
  wire must never run twice.
* Journals survive reconnects: on disconnect the journal is parked in the
  server's :class:`JournalRegistry` under the session's ``resume_token``
  (issued in the greeting); a new connection reclaims it with
  ``{"op": "resume", "token": ...}`` and retries its in-doubt rid.

:class:`RetryPolicy` is the client half: capped exponential backoff with
jitter for ``busy``/retryable errors and reconnect-with-resume on
connection loss.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any


class JournalEntry:
    """One journaled write attempt (pending until ``done`` is set)."""

    __slots__ = ("rid", "response", "done", "in_txn", "failed", "kind")

    def __init__(self, rid: int):
        self.rid = rid
        self.response: dict[str, Any] | None = None
        #: set when the attempt finished (successfully or not); retries of
        #: an in-flight rid wait on this instead of re-executing
        self.done = threading.Event()
        self.in_txn = False
        self.failed = False
        self.kind = "write"


class RetryJournal:
    """Per-session rid -> outcome dedup journal (see module docstring).

    Thread-safe: the event loop checks/creates entries while worker
    threads record outcomes for statements that outlived their timeout.
    """

    def __init__(self, capacity: int = 256):
        self.capacity = max(1, capacity)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[int, JournalEntry]" = OrderedDict()
        #: highest rid the client confirmed receiving a response for
        self.acked = 0
        self.replays = 0
        self.evicted = 0
        self.recorded = 0

    # ------------------------------------------------------------------
    # the dispatch-side protocol
    # ------------------------------------------------------------------

    def begin(self, rid: int) -> tuple[JournalEntry | None, bool]:
        """Look up or create the entry for ``rid``.

        Returns ``(entry, created)``; ``(None, False)`` means the rid is at
        or below the acked watermark -- the client already confirmed the
        response, so re-sending it is a protocol violation, not a retry.
        """
        with self._lock:
            if rid <= self.acked:
                return None, False
            entry = self._entries.get(rid)
            if entry is not None:
                self._entries.move_to_end(rid)
                return entry, False
            entry = JournalEntry(rid)
            self._entries[rid] = entry
            self._evict_locked()
            return entry, True

    def finish(
        self,
        rid: int,
        response: dict[str, Any],
        *,
        in_txn: bool = False,
        kind: str = "write",
    ) -> None:
        """Record the successful outcome of ``rid`` and wake any waiters."""
        with self._lock:
            entry = self._entries.get(rid)
            if entry is None:  # forgotten (acked/evicted) while running
                return
            if kind == "commit":
                # everything journaled inside the open txn is now durable
                for other in self._entries.values():
                    other.in_txn = False
            elif kind == "rollback":
                self._drop_open_locked(keep=rid)
            entry.response = response
            entry.in_txn = in_txn and kind not in ("commit", "rollback")
            entry.kind = kind
            self.recorded += 1
            entry.done.set()

    def forget(self, rid: int) -> None:
        """Drop a failed/never-started attempt so a retry re-executes."""
        with self._lock:
            entry = self._entries.pop(rid, None)
            if entry is not None:
                entry.failed = True
                entry.done.set()

    def replayed(self, entry: JournalEntry) -> dict[str, Any]:
        """Count and return a replay copy of a recorded outcome."""
        with self._lock:
            self.replays += 1
        response = dict(entry.response or {})
        response["replayed"] = True
        return response

    # ------------------------------------------------------------------
    # watermarks and transaction boundaries
    # ------------------------------------------------------------------

    def ack(self, rid: int) -> None:
        """Client confirmed receiving responses up to ``rid``: drop them."""
        with self._lock:
            if rid <= self.acked:
                return
            self.acked = rid
            for key in [k for k in self._entries if k <= rid]:
                entry = self._entries[key]
                if entry.done.is_set():
                    del self._entries[key]

    def rollback_open(self) -> int:
        """Open transaction aborted: journaled statements inside it are
        void (their effects were undone), so retries must re-execute."""
        with self._lock:
            return self._drop_open_locked()

    def commit_open(self) -> None:
        """Open transaction committed (by a statement that was not itself
        journaled): everything journaled inside it is durable now."""
        with self._lock:
            for entry in self._entries.values():
                entry.in_txn = False

    def _drop_open_locked(self, keep: int | None = None) -> int:
        doomed = [
            rid
            for rid, entry in self._entries.items()
            if entry.in_txn and rid != keep
        ]
        for rid in doomed:
            del self._entries[rid]
        return len(doomed)

    def _evict_locked(self) -> None:
        # LRU backstop for clients that never ack; pending entries are
        # never evicted (a worker thread still owns them)
        while len(self._entries) > self.capacity:
            victim = next(
                (
                    rid
                    for rid, entry in self._entries.items()
                    if entry.done.is_set()
                ),
                None,
            )
            if victim is None:
                return
            del self._entries[victim]
            self.evicted += 1

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "acked": self.acked,
                "recorded": self.recorded,
                "replays": self.replays,
                "evicted": self.evicted,
            }


class JournalRegistry:
    """Parked journals of disconnected sessions, keyed by resume token.

    Bounded FIFO: when full, the oldest parked journal is dropped (its
    client can no longer resume -- the same answer an expired session
    would give).
    """

    def __init__(self, capacity: int = 128):
        self.capacity = max(1, capacity)
        self._lock = threading.Lock()
        self._parked: "OrderedDict[str, RetryJournal]" = OrderedDict()
        self.resumes = 0
        self.dropped = 0

    def park(self, token: str, journal: RetryJournal) -> None:
        with self._lock:
            self._parked[token] = journal
            self._parked.move_to_end(token)
            while len(self._parked) > self.capacity:
                self._parked.popitem(last=False)
                self.dropped += 1

    def claim(self, token: str) -> RetryJournal | None:
        with self._lock:
            journal = self._parked.pop(token, None)
            if journal is not None:
                self.resumes += 1
            return journal

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "parked": len(self._parked),
                "resumes": self.resumes,
                "dropped": self.dropped,
            }


@dataclass
class RetryPolicy:
    """Client-side retry knobs: capped exponential backoff with jitter.

    ``backoff(attempt, rng)`` returns the pre-retry sleep for the given
    0-based attempt: ``backoff_base * 2^attempt``, capped at
    ``backoff_max``, with +/- ``jitter`` (a fraction) of random spread so
    a thundering herd of retrying clients decorrelates.
    """

    max_attempts: int = 6
    #: overall wall-clock budget across attempts (seconds)
    deadline: float = 30.0
    backoff_base: float = 0.02
    backoff_max: float = 1.0
    jitter: float = 0.5
    #: also retry initial connection failures (server briefly down/draining)
    retry_connect: bool = True

    def backoff(self, attempt: int, rng) -> float:
        base = min(self.backoff_base * (2**attempt), self.backoff_max)
        if not self.jitter:
            return base
        return max(0.0, base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0)))
