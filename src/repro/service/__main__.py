"""``python -m repro.service`` -- run a Sinew SQL server.

Examples::

    # in-memory instance on an ephemeral port
    python -m repro.service

    # durable instance with a background checkpointer
    python -m repro.service --path ./data/mydb --port 5543 --checkpoint 30
"""

from __future__ import annotations

import argparse
import asyncio
import signal

from ..core.sinew import SinewConfig, SinewDB
from .server import ServiceConfig, SinewService


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve one SinewDB instance to many SQL clients over TCP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=5543, help="0 = ephemeral")
    parser.add_argument("--name", default="sinew", help="database name")
    parser.add_argument(
        "--path", default=None, help="durable root directory (default: in-memory)"
    )
    parser.add_argument("--max-sessions", type=int, default=64)
    parser.add_argument("--max-inflight", type=int, default=8)
    parser.add_argument(
        "--query-timeout", type=float, default=30.0, help="seconds; 0 = unlimited"
    )
    parser.add_argument("--executor-threads", type=int, default=8)
    parser.add_argument(
        "--checkpoint",
        type=float,
        default=None,
        metavar="SECONDS",
        help="background checkpoint cadence (durable databases only)",
    )
    parser.add_argument(
        "--no-daemon",
        action="store_true",
        help="do not start the background materializer daemon",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="graceful-shutdown grace period for in-flight statements",
    )
    parser.add_argument(
        "--no-supervise",
        action="store_true",
        help="do not supervise the daemon/checkpointer (crashes stay down)",
    )
    return parser


async def _serve(service: SinewService) -> None:
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, service.stop)
        except (NotImplementedError, RuntimeError):
            pass  # non-unix event loops
    serving = asyncio.ensure_future(service.serve())
    while service.port is None and not serving.done():
        await asyncio.sleep(0.01)
    if service.port is not None:
        print(f"sinew-service listening on {service.config.host}:{service.port}")
    await serving


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.path is not None:
        sdb = SinewDB.open(args.path, args.name, SinewConfig())
    else:
        sdb = SinewDB(args.name)
    if not args.no_daemon:
        sdb.start_daemon()
    service = SinewService(
        sdb,
        ServiceConfig(
            host=args.host,
            port=args.port,
            max_sessions=args.max_sessions,
            max_inflight=args.max_inflight,
            query_timeout=args.query_timeout or None,
            executor_threads=args.executor_threads,
            checkpoint_interval=args.checkpoint,
            drain_timeout=args.drain_timeout,
            supervise=not args.no_supervise,
        ),
    )
    try:
        asyncio.run(_serve(service))
    except KeyboardInterrupt:
        pass
    finally:
        sdb.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
