"""The asyncio SQL service: many clients, one shared :class:`SinewDB`.

One ``SinewService`` hosts one engine instance.  Connections speak the
JSON-lines protocol (:mod:`repro.service.protocol`); each gets a private
:class:`~repro.service.session.Session` (its own transaction scope and
prepared statements) while the heavy machinery -- heap, catalog,
materializer daemon, prepared-plan cache, checkpointer -- is shared.

Concurrency model (DESIGN.md section 12):

* engine calls run on a bounded thread pool so the event loop never
  blocks on storage work; reads run concurrently (the engine's
  morsel-parallel scans and extraction caches are already thread-safe
  under the catalog latch protocol);
* writes serialize on one service-wide :class:`~repro.latching.TrackedLock`
  (``service.write``), which also participates in the latch-order
  tracker -- a write path that tried to take the catalog latch in the
  wrong order would trip ``REPRO_DEBUG_LATCHES=1``;
* admission control is two-layered: ``max_sessions`` rejects new
  connections at accept time and ``max_inflight`` sheds excess
  concurrent statements, both with a structured ``busy`` error the
  client can retry on;
* every statement gets ``query_timeout`` seconds; past that the client
  receives a ``timeout`` error (the worker thread finishes in the
  background -- the engine has no cancellation points -- but its
  outcome is captured).  Reads are always retryable; a write stamped
  with a client ``rid`` is retryable too, because the per-session
  dedup journal (:mod:`repro.service.retry`) replays the original
  outcome instead of re-executing.  Only rid-less writes keep the PR 7
  "effects may apply, do not retry" answer.

Fault tolerance (DESIGN.md section 13):

* **exactly-once writes**: ``rid``/``ack`` request fields + the
  ``resume`` op reattach a disconnected session's journal, so a retry
  after a timeout, a killed response, or a reconnect returns the
  recorded outcome exactly once;
* **graceful drain**: ``stop()`` closes the listener, gives in-flight
  statements ``drain_timeout`` seconds to finish, then closes sessions
  (rolling back open transactions);
* **degraded mode**: a WAL I/O failure flips the engine read-only
  (structured ``degraded`` errors for writes, SELECTs keep working);
  the ``recover`` op / ``\\service recover`` brings it back;
* **supervision**: with ``ServiceConfig.supervise`` the materializer
  daemon and the background checkpointer are watched by a
  :class:`~repro.core.supervisor.Supervisor` (bounded-backoff restart,
  permanent trip surfaced in the ``health`` op).

Fault injection: the per-connection paths fire ``service.accept``,
``service.execute`` and ``service.respond``, and shutdown fires
``service.drain``, so tests can kill a session at any protocol stage
and assert the shared engine stays healthy (no leaked latches, no
orphaned transactions).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import threading
from dataclasses import dataclass, field
from typing import Any

from ..core.plan_cache import DEFAULT_PLAN_CACHE_SIZE, PlanCache
from ..core.sinew import SinewDB
from ..core.supervisor import PeriodicWorker
from ..latching import TrackedLock
from ..rdbms.errors import (
    CatalogError,
    ConcurrencyError,
    DatabaseError,
    DegradedError,
    ExecutionError,
    PlanningError,
    SemanticError,
    SqlSyntaxError,
    TransactionError,
)
from ..rdbms.sql.parser import parse
from ..testing.faults import DaemonKilled, InjectedFault
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    decode_value,
    encode_message,
    encode_result,
)
from .retry import JournalEntry, JournalRegistry
from .session import Session, is_write_statement, statement_kind

#: map engine exception types to wire error codes; ordered most-specific
#: first (SemanticError subclasses PlanningError, etc.)
_ERROR_CODES: tuple[tuple[type[Exception], str], ...] = (
    (SqlSyntaxError, "syntax"),
    (SemanticError, "semantic"),
    (PlanningError, "planning"),
    (CatalogError, "catalog"),
    (ConcurrencyError, "concurrency"),
    (DegradedError, "degraded"),
    (TransactionError, "transaction"),
    (ExecutionError, "execution"),
    (InjectedFault, "injected"),
    (DatabaseError, "database"),
    (ProtocolError, "protocol"),
)

#: longest SQL fragment echoed back in error payloads
_SQL_ECHO = 120


def _sql_head(sql: str) -> str:
    """Lowercased first token -- enough to spot COMMIT/ROLLBACK (they are
    single-token statements) without re-parsing every read."""
    parts = sql.split(None, 1)
    return parts[0].lower() if parts else ""


def error_code(error: BaseException) -> str:
    for exc_type, code in _ERROR_CODES:
        if isinstance(error, exc_type):
            return code
    return "internal"


def error_payload(error: BaseException, **extra: Any) -> dict[str, Any]:
    detail: dict[str, Any] = {"code": error_code(error), "message": str(error)}
    detail.update(extra)
    return {"ok": False, "error": detail}


@dataclass
class ServiceConfig:
    """Tunables for one :class:`SinewService`."""

    host: str = "127.0.0.1"
    #: 0 asks the OS for an ephemeral port (tests); ``port`` on the
    #: running service reports the bound one
    port: int = 0
    #: admission control: connections beyond this are refused with a
    #: structured ``busy`` error at accept time
    max_sessions: int = 64
    #: backpressure: statements executing concurrently beyond this are
    #: shed with a ``busy`` error instead of queueing unboundedly
    max_inflight: int = 8
    #: per-statement wall-clock budget in seconds (None = unlimited)
    query_timeout: float | None = 30.0
    #: engine worker threads (reads run concurrently up to this)
    executor_threads: int = 8
    #: background checkpoint cadence in seconds (None = no checkpointer;
    #: only effective on durable databases)
    checkpoint_interval: float | None = None
    #: plan-cache capacity installed on the engine if it has none yet
    plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE
    #: shutdown grace: in-flight statements get this many seconds to
    #: finish before sessions are closed (open transactions roll back)
    drain_timeout: float = 5.0
    #: watch the materializer daemon + checkpointer with a Supervisor
    #: (bounded-backoff restart; see repro.core.supervisor)
    supervise: bool = True
    #: per-session rid -> outcome dedup journal capacity (LRU backstop
    #: for clients that never ack)
    journal_capacity: int = 256
    #: parked journals of disconnected sessions kept for ``resume``
    resume_capacity: int = 128
    #: extra context merged into the greeting (tests tag servers)
    tags: dict[str, Any] = field(default_factory=dict)


class SinewService:
    """One TCP endpoint over one shared engine.

    Lifecycle: construct with an open :class:`SinewDB`, then either
    ``await serve()`` inside an event loop (``python -m repro.service``)
    or use :meth:`start_in_thread`/:meth:`stop_in_thread` to host it on
    a background thread (tests, benchmarks, the shell's ``\\connect``).
    The service never closes the engine -- the caller owns it.
    """

    def __init__(self, sdb: SinewDB, config: ServiceConfig | None = None):
        self.sdb = sdb
        self.config = config or ServiceConfig()
        if self.sdb.plan_cache is None and self.config.plan_cache_size > 0:
            # the embedded default disables the cache; the service is the
            # intended beneficiary (repeated statements across clients)
            self.sdb.plan_cache = PlanCache(self.config.plan_cache_size)
        #: one writer at a time across every session (named + tracked)
        self.write_lock = TrackedLock("service.write")
        self.sessions: dict[int, Session] = {}
        self._next_session_id = 1
        self._inflight = 0
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stopping: asyncio.Event | None = None
        self._checkpoint_worker: PeriodicWorker | None = None
        self._owns_supervisor = False
        self._draining = False
        self._shutting_down = False
        #: journals of disconnected sessions, claimable via ``resume``
        self.journals = JournalRegistry(self.config.resume_capacity)
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=max(1, self.config.executor_threads),
            thread_name_prefix="service-worker",
        )
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._thread_error: BaseException | None = None
        self.port: int | None = None
        #: service-level observability (merged into the ``status`` op)
        self.counters = {
            "connections": 0,
            "rejected_busy": 0,
            "shed_busy": 0,
            "statements": 0,
            "errors": 0,
            "timeouts": 0,
            "protocol_errors": 0,
            "checkpoints": 0,
            "checkpoints_skipped": 0,
            "journaled": 0,
            "retries_deduped": 0,
            "resumes": 0,
            "drained_clean": 0,
            "drain_timeouts": 0,
            "drain_rejected": 0,
            "recoveries": 0,
        }

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------

    async def serve(self) -> None:
        """Bind, accept connections, and run until :meth:`stop` is called."""
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        supervisor = None
        if self.config.supervise:
            self._owns_supervisor = self.sdb.supervisor is None
            supervisor = self.sdb.supervise()
        if self.config.checkpoint_interval is not None and self.sdb.db.path is not None:
            self._checkpoint_worker = PeriodicWorker(
                "checkpointer", self.config.checkpoint_interval, self._checkpoint_tick
            )
            self._checkpoint_worker.start()
            if supervisor is not None:
                supervisor.add(self._checkpoint_worker)
        self._ready.set()
        try:
            await self._stopping.wait()
            await self._drain()
        finally:
            self._shutting_down = True
            # stop the supervisor first so it cannot restart the
            # checkpointer we are about to stop
            if self._owns_supervisor and self.sdb.supervisor is not None:
                self.sdb.supervisor.stop()
                self.sdb.supervisor = None
                self._owns_supervisor = False
            if self._checkpoint_worker is not None:
                self._checkpoint_worker.stop()
            self._server.close()
            await self._server.wait_closed()
            for session in list(self.sessions.values()):
                session.close()
            self.sessions.clear()
            self._executor.shutdown(wait=False)

    async def _drain(self) -> None:
        """Graceful-shutdown phase: stop accepting, let in-flight finish.

        The listener closes first (new connections get refused at the
        socket), then in-flight statements get ``drain_timeout`` seconds
        to complete; whatever is still running when the deadline passes
        is abandoned to the normal teardown path (sessions close, open
        transactions roll back).  An injected ``service.drain`` raise
        skips the grace period entirely -- the abrupt-shutdown path
        chaos schedules exercise.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
        try:
            if self.sdb.faults is not None:
                self.sdb.faults.fire("service.drain")
        except InjectedFault:
            self.counters["drain_timeouts"] += 1
            return
        loop = asyncio.get_running_loop()
        deadline = loop.time() + max(0.0, self.config.drain_timeout)
        while self._inflight > 0 and loop.time() < deadline:
            await asyncio.sleep(0.005)
        if self._inflight > 0:
            self.counters["drain_timeouts"] += 1
        else:
            self.counters["drained_clean"] += 1

    def stop(self) -> None:
        """Request shutdown (safe from any thread, idempotent)."""
        if self._loop is not None and self._stopping is not None:
            try:
                self._loop.call_soon_threadsafe(self._stopping.set)
            except RuntimeError:
                pass  # loop already closed: shutdown has happened

    # ------------------------------------------------------------------
    # background-thread hosting (tests, benchmarks, shell \connect)
    # ------------------------------------------------------------------

    def start_in_thread(self, timeout: float = 10.0) -> int:
        """Host the server on a daemon thread; returns the bound port."""
        if self._thread is not None:
            raise RuntimeError("service already started")

        def runner() -> None:
            try:
                asyncio.run(self.serve())
            except BaseException as error:  # surfaced by start/stop
                self._thread_error = error
                self._ready.set()

        self._thread = threading.Thread(
            target=runner, name="sinew-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("service failed to start within timeout")
        if self._thread_error is not None:
            raise RuntimeError("service failed to start") from self._thread_error
        assert self.port is not None
        return self.port

    def stop_in_thread(self, timeout: float = 10.0) -> None:
        if self._thread is None:
            return
        self.stop()
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError("service thread did not stop within timeout")
        self._thread = None
        if self._thread_error is not None:
            error, self._thread_error = self._thread_error, None
            raise RuntimeError("service thread crashed") from error

    def __enter__(self) -> "SinewService":
        self.start_in_thread()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop_in_thread()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session: Session | None = None
        try:
            self.counters["connections"] += 1
            try:
                if self.sdb.faults is not None:
                    self.sdb.faults.fire("service.accept")
                if len(self.sessions) >= self.config.max_sessions:
                    self.counters["rejected_busy"] += 1
                    writer.write(
                        encode_message(
                            {
                                "ok": False,
                                "error": {
                                    "code": "busy",
                                    "message": (
                                        f"session limit reached "
                                        f"({self.config.max_sessions}); retry later"
                                    ),
                                    "retryable": True,
                                },
                            }
                        )
                    )
                    await writer.drain()
                    return
                session_id = self._next_session_id
                self._next_session_id += 1
                session = Session(
                    session_id,
                    self.sdb,
                    self.write_lock,
                    journal_capacity=self.config.journal_capacity,
                )
                self.sessions[session_id] = session
            except InjectedFault as error:
                # admission fault: the connection dies before a session
                # exists, so there is nothing to clean up in the engine
                self.counters["errors"] += 1
                writer.write(encode_message(error_payload(error)))
                await writer.drain()
                return
            writer.write(
                encode_message(
                    {
                        "ok": True,
                        "server": "sinew-service",
                        "version": PROTOCOL_VERSION,
                        "session": session.id,
                        "resume_token": session.resume_token,
                        **({"tags": self.config.tags} if self.config.tags else {}),
                    }
                )
            )
            await writer.drain()
            await self._request_loop(session, reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client vanished; the finally block still cleans up
        finally:
            if session is not None:
                self.sessions.pop(session.id, None)
                # rolls back any open transaction so a dead client never
                # pins undo state in the shared engine; synchronous on
                # purpose -- an await here could be cancelled at loop
                # teardown and skip the rollback
                session.close()
                # park the journal *after* close: the rollback just
                # voided any entries journaled inside the open txn, and
                # the parked copy must reflect that (a resumed retry of
                # one of those rids re-executes instead of replaying)
                self.journals.park(session.resume_token, session.journal)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _request_loop(
        self,
        session: Session,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        while True:
            line = await reader.readline()
            if not line:
                return  # EOF: client closed the connection
            try:
                request = decode_message(line)
            except ProtocolError as error:
                self.counters["protocol_errors"] += 1
                writer.write(encode_message(error_payload(error)))
                await writer.drain()
                continue
            response = await self._dispatch(session, request)
            try:
                if self.sdb.faults is not None:
                    self.sdb.faults.fire("service.respond")
            except InjectedFault:
                # fault between execution and the response write: the
                # statement's effects stand, the client sees a dead socket
                # (exactly what a network partition produces); session
                # cleanup runs in _handle_connection's finally
                return
            request_id = request.get("id")
            if request_id is not None:
                response["id"] = request_id
            writer.write(encode_message(response))
            await writer.drain()
            if request.get("op") == "close" or self._shutting_down:
                # during loop teardown a cancellation delivered while the
                # statement's executor future was completing can be
                # swallowed by wait_for (it returns the ready result);
                # without this check the handler would loop back into
                # readline() uncancelled and hang the loop shutdown
                return

    # ------------------------------------------------------------------
    # request dispatch
    # ------------------------------------------------------------------

    async def _dispatch(self, session: Session, request: dict[str, Any]) -> dict[str, Any]:
        op = request.get("op")
        rid = request.get("rid")
        ack = request.get("ack")
        if isinstance(ack, int):
            # piggybacked watermark: the client saw every response <= ack
            session.journal.ack(ack)
        try:
            if self._draining and op not in ("close", "ping", "health"):
                self.counters["drain_rejected"] += 1
                return {
                    "ok": False,
                    "error": {
                        "code": "unavailable",
                        "message": "server is draining; reconnect later",
                        "retryable": False,
                        "draining": True,
                    },
                }
            if op == "ping":
                return {"ok": True, "pong": True}
            if op == "query":
                sql = request.get("sql")
                if not isinstance(sql, str):
                    raise ProtocolError("'query' needs a string 'sql' field")
                if isinstance(rid, int):
                    kind = self._sql_kind(sql)
                    if kind != "read":
                        return await self._run_journaled(
                            session,
                            rid,
                            kind,
                            lambda result: {"ok": True, "result": encode_result(result)},
                            session.execute_sql,
                            sql,
                        )
                result = await self._run_engine(session, session.execute_sql, sql)
                self._sync_journal_txn(session, _sql_head(sql))
                return {"ok": True, "result": encode_result(result)}
            if op == "prepare":
                name, sql = request.get("name"), request.get("sql")
                if not isinstance(name, str) or not isinstance(sql, str):
                    raise ProtocolError("'prepare' needs string 'name' and 'sql' fields")
                prepared = await self._run_engine(session, session.prepare, name, sql)
                return {"ok": True, "prepared": name, "kind": prepared.kind}
            if op == "execute":
                name = request.get("name")
                if not isinstance(name, str):
                    raise ProtocolError("'execute' needs a string 'name' field")
                prepared = session.prepared.get(name)
                if isinstance(rid, int) and prepared is not None:
                    kind = statement_kind(prepared.statement)
                    if kind != "read":
                        return await self._run_journaled(
                            session,
                            rid,
                            kind,
                            lambda result: {"ok": True, "result": encode_result(result)},
                            session.execute_prepared,
                            name,
                        )
                result = await self._run_engine(session, session.execute_prepared, name)
                if prepared is not None:
                    self._sync_journal_txn(
                        session, statement_kind(prepared.statement)
                    )
                return {"ok": True, "result": encode_result(result)}
            if op == "deallocate":
                name = request.get("name")
                if not isinstance(name, str):
                    raise ProtocolError("'deallocate' needs a string 'name' field")
                return {"ok": True, "deallocated": session.deallocate(name)}
            if op == "load":
                table = request.get("table")
                documents = request.get("documents")
                if not isinstance(table, str) or not isinstance(documents, list):
                    raise ProtocolError(
                        "'load' needs a string 'table' and a list 'documents'"
                    )
                decoded = [decode_value(document) for document in documents]
                if isinstance(rid, int):
                    return await self._run_journaled(
                        session,
                        rid,
                        "write",
                        lambda report: {"ok": True, **report},
                        session.load_documents,
                        table,
                        decoded,
                    )
                report = await self._run_engine(
                    session, session.load_documents, table, decoded
                )
                return {"ok": True, **report}
            if op == "resume":
                token = request.get("token")
                if not isinstance(token, str):
                    raise ProtocolError("'resume' needs a string 'token' field")
                journal = self.journals.claim(token)
                if journal is None:
                    return {"ok": True, "resumed": False, "acked": 0}
                session.journal = journal
                self.counters["resumes"] += 1
                return {"ok": True, "resumed": True, "acked": journal.acked}
            if op == "health":
                return {"ok": True, "health": self._health()}
            if op == "recover":
                report = await self._run_engine(session, self.sdb.recover_service)
                self.counters["recoveries"] += 1
                return {"ok": True, "recover": report}
            if op == "set":
                key, value = request.get("key"), decode_value(request.get("value"))
                if not isinstance(key, str):
                    raise ProtocolError("'set' needs a string 'key' field")
                session.set_option(key, value)
                return {"ok": True, "settings": dict(session.settings)}
            if op == "session":
                return {"ok": True, "session": session.describe()}
            if op == "status":
                return {"ok": True, "status": self._status()}
            if op == "close":
                return {"ok": True, "closed": True}
            raise ProtocolError(f"unknown op {op!r}")
        except asyncio.TimeoutError:
            self.counters["timeouts"] += 1
            session.errors += 1
            retryable = self._timeout_retryable(session, request)
            message = (
                f"statement exceeded the {self.config.query_timeout}s "
                f"query timeout"
            )
            if not retryable:
                message += (
                    "; the statement is still running on its worker thread"
                    " and its effects may apply -- do not retry blindly"
                )
            return {
                "ok": False,
                "error": {
                    "code": "timeout",
                    "message": message,
                    "retryable": retryable,
                },
            }
        except _Busy:
            self.counters["shed_busy"] += 1
            return {
                "ok": False,
                "error": {
                    "code": "busy",
                    "message": (
                        f"server at max inflight statements "
                        f"({self.config.max_inflight}); retry"
                    ),
                    "retryable": True,
                },
            }
        except Exception as error:
            self.counters["errors"] += 1
            session.errors += 1
            extra: dict[str, Any] = {}
            sql = request.get("sql")
            if isinstance(sql, str):
                extra["sql"] = sql[:_SQL_ECHO]
            if isinstance(error, DegradedError):
                # the write was rejected before any effect; retrying it
                # verbatim is pointless until an operator runs recover
                extra["degraded"] = True
                extra["retryable"] = False
                if error.reason:
                    extra["reason"] = error.reason
            return error_payload(error, **extra)

    def _timeout_retryable(self, session: Session, request: dict[str, Any]) -> bool:
        """Whether a timed-out request is safe to retry verbatim.

        The engine has no cancellation points: a timed-out statement
        keeps running on its worker thread and its effects (an INSERT's
        autocommit, a COMMIT's WAL flush) may still apply after the
        client saw the error.  Reads are idempotent, so always
        retryable.  A write is retryable iff the request carried a
        ``rid``: the journal records the original outcome when the
        worker finishes, so a retry replays it (or waits for it)
        instead of double-applying.  Rid-less writes keep the honest
        "effects may apply, do not retry" answer.
        """
        op = request.get("op")
        journaled = isinstance(request.get("rid"), int)
        if op == "query":
            sql = request.get("sql")
            if not isinstance(sql, str):
                return False
            try:
                write = is_write_statement(parse(sql))
            except Exception:
                return False
            return journaled or not write
        if op == "execute":
            name = request.get("name")
            prepared = session.prepared.get(name) if isinstance(name, str) else None
            if prepared is None:
                return False
            return journaled or not is_write_statement(prepared.statement)
        if op == "load":
            return journaled
        return True

    def _sql_kind(self, sql: str) -> str:
        """Journal classification of raw SQL; parse errors fall through
        to the normal engine path (as ``read``) where they surface as
        structured syntax errors."""
        try:
            return statement_kind(parse(sql))
        except Exception:
            return "read"

    def _sync_journal_txn(self, session: Session, kind: str) -> None:
        """A transaction boundary executed OUTSIDE the journal (no rid):
        the journal must still learn about it, or entries recorded inside
        the closed transaction keep the wrong in-txn flag -- a rolled-back
        write would replay a success whose effects were undone."""
        if kind == "rollback":
            session.journal.rollback_open()
        elif kind == "commit":
            session.journal.commit_open()

    async def _run_engine(self, session: Session, fn: Any, *args: Any) -> Any:
        """Run one engine call on the worker pool with shedding + timeout."""
        if self._inflight >= self.config.max_inflight:
            raise _Busy()
        if self.sdb.faults is not None:
            # "request decoded, statement not yet executed": an injected
            # raise here surfaces as a structured error on this session
            # only; a DaemonKilled tears just this statement down
            self.sdb.faults.fire("service.execute")
        self._inflight += 1
        self.counters["statements"] += 1
        loop = asyncio.get_running_loop()
        try:
            future = loop.run_in_executor(self._executor, lambda: fn(*args))
            if self.config.query_timeout is None:
                return await future
            return await asyncio.wait_for(future, self.config.query_timeout)
        finally:
            self._inflight -= 1

    async def _run_journaled(
        self,
        session: Session,
        rid: int,
        kind: str,
        build: Any,
        fn: Any,
        *args: Any,
    ) -> dict[str, Any]:
        """Run one rid-stamped write with exactly-once retry semantics.

        The journal handshake happens *before* admission control: a
        retry of an already-recorded rid replays the outcome without
        costing an inflight slot, and a retry of a still-running rid
        waits for the original worker instead of racing a second
        execution.  The outcome is recorded on the worker thread itself
        -- after the statement, before the response is sent -- so a
        statement that outlives its timeout (or whose response dies on
        the wire) still lands in the journal for the next retry.
        """
        journal = session.journal
        entry, created = journal.begin(rid)
        if entry is None:
            return {
                "ok": False,
                "error": {
                    "code": "protocol",
                    "message": (
                        f"request id {rid} is at or below the acked "
                        f"watermark ({journal.acked}); it was already "
                        f"confirmed delivered"
                    ),
                },
            }
        if not created:
            return await self._await_outcome(session, entry)
        self.counters["journaled"] += 1
        if self._inflight >= self.config.max_inflight:
            journal.forget(rid)
            raise _Busy()
        if self.sdb.faults is not None:
            try:
                self.sdb.faults.fire("service.execute")
            except BaseException:
                # pre-execution fault: nothing ran, a retry must re-execute
                journal.forget(rid)
                raise
        self._inflight += 1
        self.counters["statements"] += 1
        loop = asyncio.get_running_loop()

        def job() -> dict[str, Any]:
            try:
                result = fn(*args)
            except BaseException:
                journal.forget(rid)
                raise
            response = build(result)
            journal.finish(
                rid,
                response,
                in_txn=session.db_session.in_transaction,
                kind=kind,
            )
            return response

        try:
            future = loop.run_in_executor(self._executor, job)
            if self.config.query_timeout is None:
                return await future
            return await asyncio.wait_for(future, self.config.query_timeout)
        finally:
            self._inflight -= 1

    async def _await_outcome(
        self, session: Session, entry: JournalEntry
    ) -> dict[str, Any]:
        """A retried rid: replay the recorded outcome, or wait for the
        original attempt still running on its worker thread."""
        if entry.response is None and not entry.failed:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(
                None, entry.done.wait, self.config.query_timeout
            )
        if entry.failed:
            # the original attempt errored (no effects, statement-level
            # atomicity) or was aborted before starting: safe to re-send
            return {
                "ok": False,
                "error": {
                    "code": "retry",
                    "message": (
                        "the original attempt of this request failed "
                        "before completing; retry"
                    ),
                    "retryable": True,
                },
            }
        if entry.response is None:
            # still running past another full timeout budget
            raise asyncio.TimeoutError()
        self.counters["retries_deduped"] += 1
        return session.journal.replayed(entry)

    def _status(self) -> dict[str, Any]:
        engine = self.sdb.status()
        payload = {
            "service": {
                "sessions": len(self.sessions),
                "max_sessions": self.config.max_sessions,
                "inflight": self._inflight,
                "max_inflight": self.config.max_inflight,
                "draining": self._draining,
                "counters": dict(self.counters),
                "journals": self.journals.stats(),
            },
            "engine": engine,
        }
        # engine status nests dataclasses and counters; squeeze through
        # JSON once so the wire frame never hits an unencodable object
        return json.loads(json.dumps(payload, default=str))

    def _health(self) -> dict[str, Any]:
        """Cheap liveness summary (the ``health`` op; no engine latches).

        Unlike ``status`` this stays answerable while the engine is
        degraded or draining -- it reads flags and counters only.
        """
        wal = self.sdb.db.wal
        daemon = self.sdb.daemon
        supervisor = self.sdb.supervisor
        degraded = bool(wal.durable and wal.degraded)
        status = "ok"
        if degraded:
            status = "degraded"
        if self._draining:
            status = "draining"
        checkpointer = self._checkpoint_worker
        return {
            "status": status,
            "draining": self._draining,
            "degraded": degraded,
            "degraded_reason": wal.degraded_reason if wal.durable else None,
            "sessions": len(self.sessions),
            "inflight": self._inflight,
            "daemon": {
                "state": daemon.state,
                "alive": daemon.is_alive(),
                "last_error": daemon.last_error,
                "last_error_at": daemon.last_error_at,
            },
            "checkpointer": None
            if checkpointer is None
            else {
                "state": checkpointer.state,
                "ticks": checkpointer.ticks,
                "last_error": checkpointer.last_error,
            },
            "supervisor": None if supervisor is None else supervisor.status(),
            "tripped": [] if supervisor is None else supervisor.tripped(),
        }

    # ------------------------------------------------------------------
    # background checkpointer (a supervisable PeriodicWorker)
    # ------------------------------------------------------------------

    def _checkpoint_tick(self) -> None:
        # cheap pre-checks without the latch: skip the latched round
        # trip while a session transaction is visibly open, and never
        # try to checkpoint a degraded WAL (it cannot fsync)
        if self.sdb.db.txn_manager.active or self.sdb.db.wal.degraded:
            self.counters["checkpoints_skipped"] += 1
            return
        try:
            done = self._checkpoint_once()
        except DaemonKilled:
            # injected crash: escape so the worker freezes and the
            # supervisor's restart/trip machinery takes over
            raise
        except Exception:
            self.counters["checkpoints_skipped"] += 1
        else:
            key = "checkpoints" if done else "checkpoints_skipped"
            self.counters[key] += 1

    def _checkpoint_once(self) -> bool:
        # Under the write latch: DML *and* transaction control (BEGIN/
        # COMMIT/ROLLBACK, plus disconnect-time aborts) all hold it, so
        # no session can open a transaction or commit between the check
        # below and the snapshot -- the cut is transaction-consistent.
        # The materializer daemon's autocommit txns don't hold it, so the
        # check can still see one in flight; that is a plain skip (the
        # engine-side checkpoint would quiesce the daemon via the catalog
        # latch, but a txn begun before the latch must not be cut).
        with self.write_lock:
            if self.sdb.db.txn_manager.active:
                return False
            self.sdb.checkpoint()
            return True


class _Busy(Exception):
    """Internal signal: max_inflight reached, shed this statement."""
