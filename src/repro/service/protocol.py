"""The service wire format: JSON lines with full value-type fidelity.

One request or response per ``\\n``-terminated line of UTF-8 JSON.  Plain
JSON cannot carry everything a :class:`~repro.rdbms.database.QueryResult`
can hold -- BYTEA cells are ``bytes``, REAL cells may be ``nan``/``inf``,
and documents nest arbitrarily -- so values ride in a tagged encoding:

* ``None`` / ``bool`` / ``int`` / finite ``float`` / ``str`` pass through
  (JSON distinguishes ``1`` from ``1.0``, so INTEGER vs REAL survives);
* non-finite floats become ``{"$": "f", "v": "nan" | "inf" | "-inf"}``;
* ``bytes`` become ``{"$": "b", "v": <base64>}``;
* lists encode element-wise (rows themselves are arrays; the client
  rebuilds engine-shaped ``tuple`` rows);
* dicts encode value-wise, and any dict *containing* a ``"$"`` key is
  escape-wrapped as ``{"$": "d", "v": {...}}`` -- so on the wire, a dict
  with a ``"$"`` key is always a tag and the encoding is unambiguous.

The round-trip property (tests/service/test_protocol.py) asserts
``decode(encode(x)) == x`` with matching types for arbitrary nested
multi-typed values, which is exactly the fidelity contract the in-process
``QueryResult`` gives callers.
"""

from __future__ import annotations

import base64
import json
import math
from typing import Any, Iterator, Sequence

#: version 2 added fault-tolerant operations: ``rid``/``ack`` request
#: fields (exactly-once write retries against the per-session dedup
#: journal), the greeting's ``resume_token``, and the ``resume`` /
#: ``health`` / ``recover`` ops.  Version-1 clients interoperate
#: unchanged -- rid-less requests keep the version-1 semantics.
PROTOCOL_VERSION = 2

#: wire type names per Python runtime type (mirrors SqlType values)
_TYPE_NAMES = {
    bool: "boolean",
    int: "integer",
    float: "real",
    str: "text",
    bytes: "bytea",
    list: "array",
    tuple: "array",
    dict: "json",
}

_FLOAT_TAGS = {"nan": math.nan, "inf": math.inf, "-inf": -math.inf}


class ProtocolError(ValueError):
    """A malformed wire message (bad JSON, bad tag, bad frame)."""


# ----------------------------------------------------------------------
# value encoding
# ----------------------------------------------------------------------


def encode_value(value: Any) -> Any:
    """Encode one cell/document value into its JSON-safe wire form."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if math.isnan(value):
            return {"$": "f", "v": "nan"}
        if math.isinf(value):
            return {"$": "f", "v": "inf" if value > 0 else "-inf"}
        return value
    if isinstance(value, bytes):
        return {"$": "b", "v": base64.b64encode(value).decode("ascii")}
    if isinstance(value, (list, tuple)):
        return [encode_value(item) for item in value]
    if isinstance(value, dict):
        encoded = {key: encode_value(item) for key, item in value.items()}
        if "$" in value:
            return {"$": "d", "v": encoded}
        return encoded
    raise ProtocolError(f"cannot encode value of type {type(value).__name__}")


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value`."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    if isinstance(value, dict):
        if "$" in value:
            tag = value.get("$")
            if tag == "f":
                try:
                    return _FLOAT_TAGS[value["v"]]
                except KeyError:
                    raise ProtocolError(f"bad float tag: {value!r}") from None
            if tag == "b":
                try:
                    return base64.b64decode(value["v"])
                except Exception:
                    raise ProtocolError(f"bad bytes tag: {value!r}") from None
            if tag == "d":
                inner = value.get("v")
                if not isinstance(inner, dict):
                    raise ProtocolError(f"bad dict tag: {value!r}")
                return {key: decode_value(item) for key, item in inner.items()}
            raise ProtocolError(f"unknown value tag {tag!r}")
        return {key: decode_value(item) for key, item in value.items()}
    raise ProtocolError(f"cannot decode value of type {type(value).__name__}")


def encode_row(row: Sequence[Any]) -> list[Any]:
    return [encode_value(value) for value in row]


def decode_row(row: Sequence[Any]) -> tuple:
    return tuple(decode_value(value) for value in row)


# ----------------------------------------------------------------------
# message framing
# ----------------------------------------------------------------------


def encode_message(message: dict[str, Any]) -> bytes:
    """One wire frame: compact JSON + newline (JSON never embeds one)."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_message(line: bytes | str) -> dict[str, Any]:
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    line = line.strip()
    if not line:
        raise ProtocolError("empty message")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"bad JSON frame: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------


def infer_column_types(columns: Sequence[str], rows: Sequence[Sequence[Any]]) -> list[str | None]:
    """Per-column wire types observed in the result rows.

    ``None`` for an all-NULL (or empty) column, the single type name when
    every non-NULL value agrees, and ``"mixed"`` for Sinew's multi-typed
    columns -- the honest answer for a universal relation.
    """
    types: list[str | None] = [None] * len(columns)
    for row in rows:
        for index, value in enumerate(row):
            if value is None:
                continue
            name = _TYPE_NAMES.get(type(value), "json")
            if types[index] is None:
                types[index] = name
            elif types[index] != name:
                types[index] = "mixed"
    return types


class RemoteResult:
    """Client-side mirror of :class:`~repro.rdbms.database.QueryResult`.

    Same access surface (``columns``, tuple ``rows``, ``rowcount``,
    ``exec_stats``, ``plan_text``, ``scalar()``, ``column()``) plus the
    wire-level ``types`` list, so code written against the embedded API
    ports to the service without edits.
    """

    def __init__(
        self,
        columns: list[str],
        rows: list[tuple],
        rowcount: int,
        types: list[str | None],
        exec_stats: dict[str, Any],
        plan_text: str | None = None,
        diagnostics: tuple[str, ...] = (),
    ):
        self.columns = columns
        self.rows = rows
        self.rowcount = rowcount
        self.types = types
        self.exec_stats = exec_stats
        self.plan_text = plan_text
        self.diagnostics = diagnostics

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self) -> Any:
        if not self.rows:
            return None
        return self.rows[0][0]

    def column(self, name_or_index: str | int) -> list[Any]:
        if isinstance(name_or_index, str):
            index = self.columns.index(name_or_index)
        else:
            index = name_or_index
        return [row[index] for row in self.rows]


def encode_result(result: Any) -> dict[str, Any]:
    """Serialize a ``QueryResult`` into the response ``result`` payload."""
    return {
        "columns": list(result.columns),
        "types": infer_column_types(result.columns, result.rows),
        "rows": [encode_row(row) for row in result.rows],
        "rowcount": result.rowcount,
        "exec_stats": encode_value(dict(result.exec_stats)),
        "plan_text": result.plan_text,
        "diagnostics": [str(diagnostic) for diagnostic in result.diagnostics],
    }


def decode_result(payload: dict[str, Any]) -> RemoteResult:
    return RemoteResult(
        columns=list(payload.get("columns", [])),
        rows=[decode_row(row) for row in payload.get("rows", [])],
        rowcount=payload.get("rowcount", 0),
        types=list(payload.get("types", [])),
        exec_stats=decode_value(payload.get("exec_stats", {})) or {},
        plan_text=payload.get("plan_text"),
        diagnostics=tuple(payload.get("diagnostics", ())),
    )
