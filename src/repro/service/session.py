"""Per-connection session state over one shared :class:`SinewDB`.

A :class:`Session` is everything one remote client is allowed to own:
its transaction scope (a :class:`~repro.rdbms.database.DbSession`, so
``BEGIN`` in one connection never collides with another's), its named
prepared statements, its settings, and its counters.  Sessions never
share cursors or transaction state; the only shared objects are the
engine itself and the service-wide prepared-plan cache, both of which
are safe under concurrent readers.

Statement execution runs on the service's worker threads.  Reads run
concurrently; anything that mutates the heap or the catalog serializes
on the service's write latch (one writer at a time, readers unblocked)
so two sessions' DML can never interleave row-level operations.  That
includes transaction control: ROLLBACK (and a disconnect-time abort)
applies per-row undo against shared heap tables, COMMIT flushes the
WAL, and BEGIN must be mutually exclusive with the checkpointer's
check-then-snapshot window -- all three hold the write latch.
"""

from __future__ import annotations

import secrets
import time
from dataclasses import dataclass
from typing import Any, Mapping

from ..core.sinew import SinewDB
from ..latching import TrackedLock
from ..rdbms.database import DbSession, QueryResult
from ..rdbms.errors import DatabaseError
from ..rdbms.sql.ast import (
    AlterTableStatement,
    BeginStatement,
    CommitStatement,
    CreateTableStatement,
    DeleteStatement,
    DropTableStatement,
    InsertStatement,
    RollbackStatement,
    SelectStatement,
    Statement,
    UpdateStatement,
)
from ..rdbms.sql.parser import parse
from .retry import RetryJournal

#: statement classes that mutate heap or catalog state and therefore
#: serialize on the service write latch
_WRITE_STATEMENTS = (
    InsertStatement,
    UpdateStatement,
    DeleteStatement,
    CreateTableStatement,
    DropTableStatement,
    AlterTableStatement,
)

#: transaction control serializes on the write latch too: ROLLBACK
#: applies per-row undo callbacks that mutate shared heap tables, COMMIT
#: makes the session's writes visible (WAL flush), and BEGIN must not
#: slip into the checkpointer's check-then-snapshot window (the active-
#: transaction barrier in server._checkpoint_once is only airtight if
#: transaction begin excludes it)
_TXN_STATEMENTS = (
    BeginStatement,
    CommitStatement,
    RollbackStatement,
)

#: session settings a client may change via the ``set`` op, with their
#: expected value type (None in a setting means "use the server default")
_SETTING_TYPES: dict[str, type] = {
    "use_extraction_cache": bool,
    "use_plan_cache": bool,
    "explain_analyze": bool,
}


def is_write_statement(statement: Statement) -> bool:
    """True when the statement must hold the service write latch."""
    return isinstance(statement, _WRITE_STATEMENTS + _TXN_STATEMENTS)


def statement_kind(statement: Statement) -> str:
    """Classify a statement for the retry journal.

    ``commit``/``rollback`` drive the journal's transaction-boundary
    bookkeeping; ``begin``/``write`` are journaled plainly; ``read`` is
    never journaled (re-execution is idempotent).
    """
    if isinstance(statement, CommitStatement):
        return "commit"
    if isinstance(statement, RollbackStatement):
        return "rollback"
    if isinstance(statement, BeginStatement):
        return "begin"
    if isinstance(statement, _WRITE_STATEMENTS):
        return "write"
    return "read"


@dataclass
class PreparedStatement:
    """One named, session-scoped statement (``prepare``/``execute`` ops).

    The parse happens at prepare time (errors surface immediately); the
    analyze/rewrite phase is memoized by the shared plan cache, so
    repeated executions skip the whole front half of the pipeline.
    """

    name: str
    sql: str
    statement: Statement
    executions: int = 0

    @property
    def kind(self) -> str:
        return "select" if isinstance(self.statement, SelectStatement) else "statement"


class Session:
    """One client connection's private state and execution entry points."""

    def __init__(
        self,
        session_id: int,
        sdb: SinewDB,
        write_lock: TrackedLock,
        journal_capacity: int = 256,
    ):
        self.id = session_id
        self.sdb = sdb
        self._write_lock = write_lock
        self.db_session: DbSession = sdb.create_session(f"session-{session_id}")
        #: rid -> outcome dedup journal (exactly-once write retries); on
        #: disconnect the server parks it under ``resume_token`` so a
        #: reconnecting client can claim it back and retry in-doubt writes
        self.journal = RetryJournal(journal_capacity)
        self.resume_token = secrets.token_hex(8)
        self.prepared: dict[str, PreparedStatement] = {}
        self.settings: dict[str, Any] = {
            "use_extraction_cache": None,
            "use_plan_cache": True,
            "explain_analyze": False,
        }
        self.statements = 0
        self.errors = 0
        self.created_at = time.monotonic()
        self.closed = False

    # ------------------------------------------------------------------
    # execution (runs on a service worker thread)
    # ------------------------------------------------------------------

    def execute_sql(self, sql: str) -> QueryResult:
        """Run one SQL statement under this session's scope."""
        statement = parse(sql)
        return self._run(sql, statement)

    def _run(self, sql: str, statement: Statement) -> QueryResult:
        self.statements += 1
        kwargs: dict[str, Any] = {"session": self.db_session}
        if isinstance(statement, SelectStatement):
            extraction = self.settings["use_extraction_cache"]
            kwargs.update(
                explain_analyze=bool(self.settings["explain_analyze"]),
                use_extraction_cache=extraction,
                use_plan_cache=bool(self.settings["use_plan_cache"]),
            )
            return self.sdb.query(sql, **kwargs)
        if is_write_statement(statement):
            with self._write_lock:
                result = self.sdb.query(sql, **kwargs)
                if self.closed and self.db_session.in_transaction:
                    # this statement outlived its connection: close()
                    # already ran (it serialized on the write latch ahead
                    # of us), so a BEGIN landing now would leak an open
                    # transaction nobody can ever finish -- abort it here,
                    # still under the latch
                    self.sdb.db.abort_session(self.db_session)
                return result
        # ANALYZE / EXPLAIN etc.: read-only over shared state
        return self.sdb.query(sql, **kwargs)

    def load_documents(self, table: str, documents: list[Mapping[str, Any]]) -> dict:
        """Bulk-load documents (the service's ingestion path)."""
        with self._write_lock:
            if table not in self.sdb.collections():
                self.sdb.create_collection(table)
            report = self.sdb.load(table, documents)
        return {
            "loaded": report.n_documents,
            "new_attributes": report.new_attributes,
        }

    # ------------------------------------------------------------------
    # prepared statements
    # ------------------------------------------------------------------

    def prepare(self, name: str, sql: str) -> PreparedStatement:
        if not name:
            raise DatabaseError("prepared statement name must be non-empty")
        prepared = PreparedStatement(name=name, sql=sql, statement=parse(sql))
        self.prepared[name] = prepared
        return prepared

    def execute_prepared(self, name: str) -> QueryResult:
        prepared = self.prepared.get(name)
        if prepared is None:
            raise DatabaseError(
                f"session {self.id} has no prepared statement {name!r}"
            )
        prepared.executions += 1
        return self._run(prepared.sql, prepared.statement)

    def deallocate(self, name: str) -> bool:
        return self.prepared.pop(name, None) is not None

    # ------------------------------------------------------------------
    # settings / lifecycle
    # ------------------------------------------------------------------

    def set_option(self, key: str, value: Any) -> None:
        expected = _SETTING_TYPES.get(key)
        if expected is None:
            raise DatabaseError(
                f"unknown session setting {key!r}; "
                f"settable: {', '.join(sorted(_SETTING_TYPES))}"
            )
        if value is not None and not isinstance(value, expected):
            raise DatabaseError(
                f"setting {key!r} expects {expected.__name__}, "
                f"got {type(value).__name__}"
            )
        self.settings[key] = value

    def close(self) -> dict[str, Any]:
        """Release everything this session owns; always safe to re-call.

        The critical guarantee: a dead client's open transaction is
        rolled back, so its uncommitted writes (and undo chain) never
        linger in the shared engine.
        """
        rolled_back = False
        if not self.closed:
            self.closed = True
            # under the write latch: the abort applies per-row undo
            # against shared heap tables and must not interleave with
            # another session's DML (or with this session's own timed-out
            # statement still finishing on a worker thread)
            with self._write_lock:
                rolled_back = self.sdb.db.abort_session(self.db_session)
            if rolled_back:
                # journaled successes inside the aborted txn are void now
                self.journal.rollback_open()
            self.prepared.clear()
        return {"rolled_back": rolled_back, "statements": self.statements}

    def describe(self) -> dict[str, Any]:
        return {
            "id": self.id,
            "statements": self.statements,
            "errors": self.errors,
            "in_transaction": self.db_session.in_transaction,
            "prepared": sorted(self.prepared),
            "settings": dict(self.settings),
            "age_seconds": time.monotonic() - self.created_at,
            "journal": self.journal.stats(),
        }
