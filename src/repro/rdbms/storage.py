"""Paged heap storage with a buffer pool and byte-accurate size accounting.

The heap is the substrate under every system in this reproduction (Sinew,
EAV, and Postgres-JSON all sit on it; the MongoDB baseline uses its own
collection store but shares the :class:`~repro.rdbms.cost.DiskBudget`).

Model
-----
* A table is a sequence of fixed-capacity **pages**; each page holds whole
  tuples (a tuple never spans pages).
* Tuple byte size = fixed tuple header + per-attribute NULL-tracking
  overhead (bitmap or per-attribute, see
  :class:`~repro.rdbms.types.NullStorageModel`) + the width of each
  non-NULL value.  This makes the sparse-data storage-bloat arithmetic of
  paper section 3.1.1 directly observable.
* Every page access goes through a **buffer pool** with LRU replacement.
  A miss increments ``pages_read`` on the shared cost counters; this is how
  the benchmark harness distinguishes the paper's in-memory (16M-record)
  regime from its I/O-bound (64M-record) regime at reduced scale.

Rows are plain Python tuples; ``None`` is SQL NULL.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, Sequence

from .cost import CostCounters, DiskBudget
from .errors import ExecutionError
from .types import (
    NullStorageModel,
    SqlType,
    TUPLE_HEADER_BYTES,
    null_overhead_bytes,
    value_size,
)

#: Default page capacity, matching PostgreSQL's 8 KiB heap pages.
DEFAULT_PAGE_BYTES = 8192


@dataclass(frozen=True)
class Column:
    """One attribute of a physical table schema."""

    name: str
    sql_type: SqlType

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name} {self.sql_type}"


class Schema:
    """Ordered list of :class:`Column` with O(1) name lookup."""

    __slots__ = ("columns", "_index")

    def __init__(self, columns: Sequence[Column]):
        self.columns: tuple[Column, ...] = tuple(columns)
        self._index: dict[str, int] = {}
        for position, column in enumerate(self.columns):
            if column.name in self._index:
                raise ExecutionError(f"duplicate column name: {column.name!r}")
            self._index[column.name] = position

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.columns == other.columns

    def position_of(self, name: str) -> int:
        """Ordinal position of a column, raising if absent."""
        try:
            return self._index[name]
        except KeyError:
            raise ExecutionError(f"no such column: {name!r}") from None

    def column(self, name: str) -> Column:
        return self.columns[self.position_of(name)]

    def names(self) -> list[str]:
        return [column.name for column in self.columns]

    def with_column(self, column: Column) -> "Schema":
        """New schema with ``column`` appended."""
        return Schema(self.columns + (column,))

    def without_column(self, name: str) -> "Schema":
        """New schema with the named column removed."""
        keep = [c for c in self.columns if c.name != name]
        if len(keep) == len(self.columns):
            raise ExecutionError(f"no such column: {name!r}")
        return Schema(keep)


class Page:
    """One heap page: a list of tuple slots plus a byte-usage gauge.

    A slot is ``None`` after the tuple was deleted (dead tuple); the row id
    of a live tuple is stable for its lifetime.
    """

    __slots__ = ("slots", "used_bytes", "capacity_bytes")

    def __init__(self, capacity_bytes: int = DEFAULT_PAGE_BYTES):
        self.slots: list[tuple | None] = []
        self.used_bytes = 0
        self.capacity_bytes = capacity_bytes

    def has_room(self, tuple_bytes: int) -> bool:
        return self.used_bytes + tuple_bytes <= self.capacity_bytes

    def append(self, row: tuple, tuple_bytes: int) -> int:
        """Store ``row``; returns the slot number within the page."""
        self.slots.append(row)
        self.used_bytes += tuple_bytes
        return len(self.slots) - 1


class BufferPool:
    """LRU cache of ``(table_name, page_no)`` keys with miss accounting.

    The pool does not hold page *contents* (the heap keeps those in process
    memory regardless); it tracks *residency* so that scans over data sets
    larger than the pool register page reads on the shared counters, exactly
    like a real buffer manager would issue real I/O.
    """

    def __init__(self, capacity_pages: int, counters: CostCounters):
        if capacity_pages < 1:
            raise ExecutionError("buffer pool needs at least one page")
        self.capacity_pages = capacity_pages
        self.counters = counters
        self._resident: OrderedDict[tuple[str, int], None] = OrderedDict()
        # Parallel morsel workers touch the pool concurrently; the LRU
        # check-then-move sequence is not atomic without this lock (a key
        # evicted between ``in`` and ``move_to_end`` would raise KeyError).
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._resident)

    def access(self, table_name: str, page_no: int) -> bool:
        """Touch a page; returns True on a hit, False on a miss (a 'read')."""
        key = (table_name, page_no)
        with self._lock:
            if key in self._resident:
                self._resident.move_to_end(key)
                self.counters.page_cache_hits += 1
                return True
            self.counters.pages_read += 1
            self._resident[key] = None
            if len(self._resident) > self.capacity_pages:
                self._resident.popitem(last=False)
            return False

    def mark_dirty_write(self, table_name: str, page_no: int) -> None:
        """Record that a page was (re)written."""
        key = (table_name, page_no)
        with self._lock:
            self.counters.pages_written += 1
            self._resident[key] = None
            self._resident.move_to_end(key)
            if len(self._resident) > self.capacity_pages:
                self._resident.popitem(last=False)

    def invalidate_table(self, table_name: str) -> None:
        """Drop every cached page of a table (DROP TABLE, TRUNCATE)."""
        with self._lock:
            stale = [key for key in self._resident if key[0] == table_name]
            for key in stale:
                del self._resident[key]


class HeapTable:
    """Append-mostly heap of tuples with stable row ids.

    Row id encoding: ``rid = page_no * slots_per_page_estimate`` is *not*
    used -- instead a flat ``(page_no, slot_no)`` pair is packed into a
    single integer via an internal directory, keeping ids stable across
    page-boundary irregularities.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        counters: CostCounters,
        buffer_pool: BufferPool,
        disk: DiskBudget,
        null_model: NullStorageModel = NullStorageModel.BITMAP,
        page_bytes: int = DEFAULT_PAGE_BYTES,
    ):
        self.name = name
        self.schema = schema
        self.counters = counters
        self.buffer_pool = buffer_pool
        self.disk = disk
        self.null_model = null_model
        self.page_bytes = page_bytes
        self.pages: list[Page] = []
        self._rid_directory: list[tuple[int, int]] = []  # rid -> (page, slot)
        self.live_rows = 0
        self.total_bytes = 0
        #: monotonic mutation counter: bumped on every row or schema
        #: change, so the process-lane spill store can key its immutable
        #: scan snapshots by ``(name, version)`` and never serve stale rows
        self.version = 0
        #: optional FaultInjector (duck-typed, see repro.testing.faults);
        #: fires "storage.write_row" *before* a row write mutates the page,
        #: so an injected crash never leaves a half-applied write.
        self.faults = None

    # -- size accounting ----------------------------------------------------

    def tuple_bytes(self, row: tuple) -> int:
        """Modelled on-disk size of one row under this table's schema."""
        size = TUPLE_HEADER_BYTES + null_overhead_bytes(
            len(self.schema), self.null_model
        )
        for value, column in zip(row, self.schema.columns):
            if value is not None:
                size += value_size(value, column.sql_type)
        return size

    # -- mutation -----------------------------------------------------------

    def insert(self, row: tuple) -> int:
        """Append a row, returning its row id."""
        if self.faults is not None:
            self.faults.fire("storage.write_row", table=self.name, op="insert")
        if len(row) != len(self.schema):
            raise ExecutionError(
                f"row arity {len(row)} does not match schema arity "
                f"{len(self.schema)} of table {self.name!r}"
            )
        size = self.tuple_bytes(row)
        if not self.pages or not self.pages[-1].has_room(size):
            self.pages.append(Page(self.page_bytes))
            self.disk.charge(self.page_bytes)
        page_no = len(self.pages) - 1
        slot_no = self.pages[page_no].append(row, size)
        self.buffer_pool.mark_dirty_write(self.name, page_no)
        self.counters.tuples_written += 1
        self._rid_directory.append((page_no, slot_no))
        self.live_rows += 1
        self.total_bytes += size
        self.version += 1
        return len(self._rid_directory) - 1

    def update(self, rid: int, row: tuple) -> tuple:
        """Replace the row at ``rid`` in place; returns the old row."""
        if self.faults is not None:
            self.faults.fire("storage.write_row", table=self.name, op="update")
        page_no, slot_no = self._locate(rid)
        page = self.pages[page_no]
        old = page.slots[slot_no]
        if old is None:
            raise ExecutionError(f"row {rid} of {self.name!r} is deleted")
        old_size = self.tuple_bytes(old)
        new_size = self.tuple_bytes(row)
        page.slots[slot_no] = row
        page.used_bytes += new_size - old_size
        self.total_bytes += new_size - old_size
        if new_size > old_size:
            self.disk.charge(new_size - old_size)
        self.buffer_pool.mark_dirty_write(self.name, page_no)
        self.counters.tuples_written += 1
        self.version += 1
        return old

    def delete(self, rid: int) -> tuple:
        """Mark the row at ``rid`` dead; returns the old row."""
        page_no, slot_no = self._locate(rid)
        page = self.pages[page_no]
        old = page.slots[slot_no]
        if old is None:
            raise ExecutionError(f"row {rid} of {self.name!r} is already deleted")
        page.slots[slot_no] = None
        size = self.tuple_bytes(old)
        page.used_bytes -= size
        self.total_bytes -= size
        self.live_rows -= 1
        self.buffer_pool.mark_dirty_write(self.name, page_no)
        self.version += 1
        return old

    def undo_delete(self, rid: int, row: tuple) -> None:
        """Transaction rollback helper: resurrect a deleted row."""
        page_no, slot_no = self._locate(rid)
        page = self.pages[page_no]
        if page.slots[slot_no] is not None:
            raise ExecutionError(f"row {rid} of {self.name!r} is not deleted")
        page.slots[slot_no] = row
        size = self.tuple_bytes(row)
        page.used_bytes += size
        self.total_bytes += size
        self.live_rows += 1
        self.version += 1

    def alloc_dead_slot(self) -> int:
        """Allocate a row id whose slot is born dead.

        Crash recovery uses this for WAL INSERT records of *uncommitted*
        transactions: their rows must not reappear, but the row ids they
        consumed must stay consumed so every later record's rid still
        points at the same physical slot.
        """
        if not self.pages:
            self.pages.append(Page(self.page_bytes))
            self.disk.charge(self.page_bytes)
        page_no = len(self.pages) - 1
        page = self.pages[page_no]
        page.slots.append(None)
        slot_no = len(page.slots) - 1
        self._rid_directory.append((page_no, slot_no))
        self.version += 1
        return len(self._rid_directory) - 1

    # -- checkpointing --------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Checkpoint image: schema + every slot in row-id order.

        Dead slots are kept as ``None`` so a restore reproduces the exact
        rid layout -- WAL records after the checkpoint address rows by rid.
        """
        rows: list[tuple | None] = []
        for page_no, slot_no in self._rid_directory:
            rows.append(self.pages[page_no].slots[slot_no])
        return {
            "columns": [(c.name, c.sql_type.value) for c in self.schema.columns],
            "null_model": self.null_model.value,
            "page_bytes": self.page_bytes,
            "rows": rows,
        }

    def restore_state(self, state: dict) -> None:
        """Refill a freshly created (empty) table from a checkpoint image."""
        for row in state["rows"]:
            if row is None:
                self.alloc_dead_slot()
            else:
                self.insert(tuple(row))

    # -- schema evolution ---------------------------------------------------

    def add_column(self, column: Column) -> None:
        """``ALTER TABLE ADD COLUMN``: widen every stored row with NULL.

        Cheap in PostgreSQL (NULL default adds only catalog metadata); here
        the rows are physically widened but the NULL values cost only the
        per-attribute presence overhead, which the size gauge re-reflects.
        """
        old_arity = len(self.schema)
        self.schema = self.schema.with_column(column)
        delta_per_row = null_overhead_bytes(
            len(self.schema), self.null_model
        ) - null_overhead_bytes(old_arity, self.null_model)
        for page in self.pages:
            for slot_no, row in enumerate(page.slots):
                if row is not None:
                    page.slots[slot_no] = row + (None,)
                    page.used_bytes += delta_per_row
        self.total_bytes += delta_per_row * self.live_rows
        self.version += 1

    def drop_column(self, name: str) -> None:
        """``ALTER TABLE DROP COLUMN``: physically narrow every row."""
        position = self.schema.position_of(name)
        column = self.schema.columns[position]
        old_arity = len(self.schema)
        self.schema = self.schema.without_column(name)
        delta_header = null_overhead_bytes(
            old_arity, self.null_model
        ) - null_overhead_bytes(len(self.schema), self.null_model)
        for page in self.pages:
            for slot_no, row in enumerate(page.slots):
                if row is None:
                    continue
                value = row[position]
                page.slots[slot_no] = row[:position] + row[position + 1 :]
                freed = delta_header
                if value is not None:
                    freed += value_size(value, column.sql_type)
                page.used_bytes -= freed
                self.total_bytes -= freed
        self.version += 1

    def truncate(self) -> None:
        """Drop every row and page, releasing the disk budget."""
        self.disk.release(len(self.pages) * self.page_bytes)
        self.buffer_pool.invalidate_table(self.name)
        self.pages.clear()
        self._rid_directory.clear()
        self.live_rows = 0
        self.total_bytes = 0
        self.version += 1

    # -- access -------------------------------------------------------------

    def scan(self) -> Iterator[tuple[int, tuple]]:
        """Yield ``(rid, row)`` for every live row, page by page.

        Each visited page is pulled through the buffer pool, so scanning a
        table larger than the pool registers reads on the cost counters.
        """
        rid = 0
        directory = self._rid_directory
        n_rids = len(directory)
        for page_no, page in enumerate(self.pages):
            self.buffer_pool.access(self.name, page_no)
            slots = page.slots
            # rids are allocated in append order, so the directory segment
            # for this page is contiguous; walk it without re-deriving.
            while rid < n_rids and directory[rid][0] == page_no:
                row = slots[directory[rid][1]]
                if row is not None:
                    self.counters.tuples_scanned += 1
                    yield rid, row
                rid += 1

    def scan_range(
        self,
        start_rid: int,
        end_rid: int,
        counters: CostCounters | None = None,
    ) -> Iterator[tuple[int, tuple]]:
        """Yield ``(rid, row)`` for live rows with ``start_rid <= rid < end_rid``.

        The morsel-scan primitive: dead slots (deleted rows, recovery
        filler from :meth:`alloc_dead_slot`) are skipped, and each page is
        pulled through the buffer pool once per contiguous visit.  Pass
        ``counters`` to charge tuple accounting to a private (per-worker)
        bundle instead of the shared one -- page accounting always goes
        through the (locked) buffer pool.
        """
        counters = self.counters if counters is None else counters
        directory = self._rid_directory
        end = min(end_rid, len(directory))
        rid = max(0, start_rid)
        pages = self.pages
        last_page = -1
        while rid < end:
            page_no, slot_no = directory[rid]
            if page_no != last_page:
                self.buffer_pool.access(self.name, page_no)
                last_page = page_no
            row = pages[page_no].slots[slot_no]
            if row is not None:
                counters.tuples_scanned += 1
                yield rid, row
            rid += 1

    def fetch(self, rid: int) -> tuple | None:
        """Random access to one row (through the buffer pool)."""
        page_no, slot_no = self._locate(rid)
        self.buffer_pool.access(self.name, page_no)
        row = self.pages[page_no].slots[slot_no]
        if row is not None:
            self.counters.tuples_scanned += 1
        return row

    def _locate(self, rid: int) -> tuple[int, int]:
        if not 0 <= rid < len(self._rid_directory):
            raise ExecutionError(f"row id {rid} out of range for {self.name!r}")
        return self._rid_directory[rid]

    # -- reporting ----------------------------------------------------------

    @property
    def n_pages(self) -> int:
        return len(self.pages)

    @property
    def allocated_rids(self) -> int:
        """Total row ids ever allocated (live + dead); the scan horizon for
        incremental processes like Sinew's column materializer."""
        return len(self._rid_directory)

    def __len__(self) -> int:
        return self.live_rows
