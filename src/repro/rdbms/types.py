"""SQL type system: type tags, inference, casting, and size accounting.

The engine supports the small set of scalar types that Sinew's loader infers
from JSON input (paper section 3.2.1) plus the container types used by the
hybrid storage layer:

========  =============================================================
TEXT      UTF-8 string
INTEGER   64-bit signed integer
REAL      IEEE-754 double ("avg_site_visit real" in Figure 4)
BOOLEAN   true/false
BYTEA     opaque bytes -- the column reservoir is a BYTEA column
ARRAY     a (typed or heterogeneous) sequence -- RDBMS array datatype
JSON      raw JSON text, parsed on access (Postgres-JSON baseline)
========  =============================================================

Byte-size accounting mirrors a row-store layout closely enough for the
storage-size experiment (Table 3) and the sparsity discussion of section
3.1.1 to be meaningful: each tuple pays a header that includes per-attribute
presence information, and each non-NULL value pays a width that depends on
its type.
"""

from __future__ import annotations

import enum
import json
import math
from typing import Any

from .errors import TypeCastError


class SqlType(enum.Enum):
    """Tag for every SQL type the engine understands."""

    TEXT = "text"
    INTEGER = "integer"
    REAL = "real"
    BOOLEAN = "boolean"
    BYTEA = "bytea"
    ARRAY = "array"
    JSON = "json"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    # members are singletons, so the C-level identity hash is correct and
    # keeps catalog lookups keyed on (name, type) off the Python-level
    # Enum.__hash__ (visible in extraction hot-path profiles)
    __hash__ = object.__hash__


#: Types on which ordered comparison (<, BETWEEN, ORDER BY) makes sense.
ORDERED_TYPES = frozenset({SqlType.TEXT, SqlType.INTEGER, SqlType.REAL})

#: Types whose values participate in arithmetic.
NUMERIC_TYPES = frozenset({SqlType.INTEGER, SqlType.REAL})

_TYPE_NAMES = {t.value: t for t in SqlType}
_TYPE_ALIASES = {
    "int": SqlType.INTEGER,
    "int4": SqlType.INTEGER,
    "int8": SqlType.INTEGER,
    "bigint": SqlType.INTEGER,
    "smallint": SqlType.INTEGER,
    "double": SqlType.REAL,
    "double precision": SqlType.REAL,
    "float": SqlType.REAL,
    "float8": SqlType.REAL,
    "numeric": SqlType.REAL,
    "bool": SqlType.BOOLEAN,
    "varchar": SqlType.TEXT,
    "char": SqlType.TEXT,
    "string": SqlType.TEXT,
    "blob": SqlType.BYTEA,
    "jsonb": SqlType.JSON,
}


def type_from_name(name: str) -> SqlType:
    """Resolve a SQL type name (case-insensitive, common aliases) to a tag."""
    key = name.strip().lower()
    if key in _TYPE_NAMES:
        return _TYPE_NAMES[key]
    if key in _TYPE_ALIASES:
        return _TYPE_ALIASES[key]
    raise TypeCastError(f"unknown SQL type name: {name!r}")


def infer_type(value: Any) -> SqlType:
    """Infer the SQL type of a Python value, as Sinew's loader does for JSON.

    ``bool`` is checked before ``int`` because it is a subclass of ``int`` in
    Python.  ``dict`` maps to BYTEA because Sinew stores nested objects as a
    serialized sub-document inside the reservoir (paper section 6.1 notes the
    materialized ``nested_obj`` is "itself a serialized data column").
    """
    if value is None:
        raise TypeCastError("cannot infer a type for NULL")
    if isinstance(value, bool):
        return SqlType.BOOLEAN
    if isinstance(value, int):
        return SqlType.INTEGER
    if isinstance(value, float):
        return SqlType.REAL
    if isinstance(value, str):
        return SqlType.TEXT
    if isinstance(value, (bytes, bytearray, memoryview)):
        return SqlType.BYTEA
    if isinstance(value, (list, tuple)):
        return SqlType.ARRAY
    if isinstance(value, dict):
        return SqlType.BYTEA
    raise TypeCastError(f"cannot map Python value of type {type(value).__name__} to SQL")


def is_instance_of(value: Any, sql_type: SqlType) -> bool:
    """True when ``value`` already has exactly the given SQL type."""
    if value is None:
        return False
    try:
        return infer_type(value) is sql_type
    except TypeCastError:
        return False


_TRUE_LITERALS = {"t", "true", "yes", "on", "1"}
_FALSE_LITERALS = {"f", "false", "no", "off", "0"}


def cast_value(value: Any, target: SqlType) -> Any:
    """Cast ``value`` to ``target``, raising :class:`TypeCastError` on failure.

    The failure behaviour is deliberately PostgreSQL-like: a malformed text
    representation raises rather than yielding NULL.  This is the mechanism
    behind the Postgres-JSON baseline's inability to execute NoBench Q7
    (paper section 6.4).  NULL passes through every cast unchanged.
    """
    if value is None:
        return None
    if target is SqlType.TEXT:
        return _cast_to_text(value)
    if target is SqlType.INTEGER:
        return _cast_to_integer(value)
    if target is SqlType.REAL:
        return _cast_to_real(value)
    if target is SqlType.BOOLEAN:
        return _cast_to_boolean(value)
    if target is SqlType.BYTEA:
        if isinstance(value, (bytes, bytearray, memoryview)):
            return bytes(value)
        raise TypeCastError(f"cannot cast {type(value).__name__} to bytea")
    if target is SqlType.ARRAY:
        if isinstance(value, (list, tuple)):
            return list(value)
        raise TypeCastError(f"cannot cast {type(value).__name__} to array")
    if target is SqlType.JSON:
        if isinstance(value, str):
            return value
        return json.dumps(value)
    raise TypeCastError(f"unsupported cast target: {target}")


def _cast_to_text(value: Any) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, (list, tuple, dict)):
        return json.dumps(value)
    if isinstance(value, (bytes, bytearray, memoryview)):
        return bytes(value).hex()
    return str(value)


def _cast_to_integer(value: Any) -> int:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            raise TypeCastError(f"cannot cast {value!r} to integer")
        return round(value)
    if isinstance(value, str):
        try:
            return int(value.strip())
        except ValueError:
            raise TypeCastError(
                f"invalid input syntax for type integer: {value!r}"
            ) from None
    raise TypeCastError(f"cannot cast {type(value).__name__} to integer")


def _cast_to_real(value: Any) -> float:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value.strip())
        except ValueError:
            raise TypeCastError(
                f"invalid input syntax for type real: {value!r}"
            ) from None
    raise TypeCastError(f"cannot cast {type(value).__name__} to real")


def _cast_to_boolean(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        if value in (0, 1):
            return bool(value)
        raise TypeCastError(f"cannot cast {value!r} to boolean")
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in _TRUE_LITERALS:
            return True
        if lowered in _FALSE_LITERALS:
            return False
        raise TypeCastError(f"invalid input syntax for type boolean: {value!r}")
    raise TypeCastError(f"cannot cast {type(value).__name__} to boolean")


# ---------------------------------------------------------------------------
# Size accounting
# ---------------------------------------------------------------------------

#: Fixed per-tuple header, loosely modelled on PostgreSQL's 23-byte
#: HeapTupleHeader rounded to alignment.
TUPLE_HEADER_BYTES = 24

#: Variable-length values pay a 4-byte length word (Postgres varlena).
VARLENA_HEADER_BYTES = 4


def value_size(value: Any, sql_type: SqlType) -> int:
    """On-disk byte width of one non-NULL value of the given type."""
    if value is None:
        return 0
    if sql_type is SqlType.INTEGER:
        return 8
    if sql_type is SqlType.REAL:
        return 8
    if sql_type is SqlType.BOOLEAN:
        return 1
    if sql_type is SqlType.TEXT:
        return VARLENA_HEADER_BYTES + len(str(value).encode("utf-8"))
    if sql_type is SqlType.BYTEA:
        return VARLENA_HEADER_BYTES + len(value)
    if sql_type is SqlType.JSON:
        text = value if isinstance(value, str) else json.dumps(value)
        return VARLENA_HEADER_BYTES + len(text.encode("utf-8"))
    if sql_type is SqlType.ARRAY:
        inner = 0
        for element in value:
            if element is None:
                continue
            inner += value_size(element, infer_type(element))
        # array header: ndims/flags/elemtype + per-element presence
        return VARLENA_HEADER_BYTES + 12 + len(value) + inner
    raise TypeCastError(f"no size rule for {sql_type}")


class NullStorageModel(enum.Enum):
    """How a row-store charges for declared-but-NULL attributes.

    Paper section 3.1.1 contrasts InnoDB (about 2 bytes of header per
    attribute per record, NULL or not) with PostgreSQL (a presence bitmap of
    one bit per attribute).  The heap table takes one of these models so the
    all-physical storage-bloat experiment can show both regimes.
    """

    BITMAP = "bitmap"  # PostgreSQL-style: 1 bit per declared attribute
    PER_ATTRIBUTE = "per_attribute"  # InnoDB-style: 2 bytes per attribute


def null_overhead_bytes(n_attributes: int, model: NullStorageModel) -> int:
    """Header bytes charged per tuple for attribute presence tracking."""
    if model is NullStorageModel.PER_ATTRIBUTE:
        return 2 * n_attributes
    return (n_attributes + 7) // 8
