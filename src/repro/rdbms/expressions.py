"""Expression AST, three-valued-logic evaluation, and compilation.

Expressions appear in SELECT lists, WHERE/HAVING predicates, join
conditions, GROUP BY and ORDER BY keys, and UPDATE assignments.  The
evaluator implements SQL semantics:

* NULL propagates through arithmetic, comparison, LIKE and BETWEEN;
* AND/OR use Kleene three-valued logic;
* ``COALESCE`` evaluates arguments lazily (this matters for Sinew's dirty
  columns, where the second argument is a reservoir-extraction UDF that
  would be wasted work when the physical column already has the value);
* casts raise :class:`~repro.rdbms.errors.TypeCastError` exactly like
  PostgreSQL, aborting the query.

For execution, expressions are *compiled* into Python closures over a row
tuple (``compile_expr``), which keeps per-row interpretation overhead low
enough for benchmark-sized tables.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from .errors import ExecutionError
from .types import SqlType, cast_value

Row = tuple
CompiledExpr = Callable[[Row], Any]


# ---------------------------------------------------------------------------
# AST nodes
# ---------------------------------------------------------------------------


class Expr:
    """Base class for expression AST nodes.

    Every concrete node carries an optional ``span`` -- the ``(start, end)``
    character range it covers in the original SQL text -- populated by the
    parser and consumed by diagnostics.  Spans are excluded from equality
    and repr so that structurally identical expressions from different
    source locations still compare equal (the planner's subtree-replacement
    machinery depends on that).
    """

    span: tuple[int, int] | None = None

    def children(self) -> Iterator["Expr"]:
        return iter(())

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal of this subtree."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True)
class Literal(Expr):
    """A constant value (string, number, boolean, or NULL)."""

    value: Any
    span: tuple[int, int] | None = field(default=None, compare=False, repr=False)

    def __str__(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        return repr(self.value)


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A (possibly qualified) column reference.

    ``table`` is the alias qualifier (``t1`` in ``t1."user.id"``) or None.
    ``name`` may contain dots when the logical attribute is a flattened
    nested key (``user.id``) -- Sinew's universal relation exposes those as
    ordinary quoted identifiers.
    """

    table: str | None
    name: str
    span: tuple[int, int] | None = field(default=None, compare=False, repr=False)

    def __str__(self) -> str:
        quoted = f'"{self.name}"' if _needs_quotes(self.name) else self.name
        return f"{self.table}.{quoted}" if self.table else quoted


@dataclass(frozen=True)
class Star(Expr):
    """``*`` or ``alias.*`` in a SELECT list."""

    table: str | None = None
    span: tuple[int, int] | None = field(default=None, compare=False, repr=False)

    def __str__(self) -> str:
        return f"{self.table}.*" if self.table else "*"


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Arithmetic, comparison, logical, or concatenation operator."""

    op: str
    left: Expr
    right: Expr
    span: tuple[int, int] | None = field(default=None, compare=False, repr=False)

    def children(self) -> Iterator[Expr]:
        yield self.left
        yield self.right

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    """``NOT expr`` or unary minus."""

    op: str
    operand: Expr
    span: tuple[int, int] | None = field(default=None, compare=False, repr=False)

    def children(self) -> Iterator[Expr]:
        yield self.operand

    def __str__(self) -> str:
        return f"({self.op} {self.operand})"


@dataclass(frozen=True)
class IsNull(Expr):
    """``expr IS [NOT] NULL``."""

    operand: Expr
    negated: bool = False
    span: tuple[int, int] | None = field(default=None, compare=False, repr=False)

    def children(self) -> Iterator[Expr]:
        yield self.operand

    def __str__(self) -> str:
        return f"({self.operand} IS {'NOT ' if self.negated else ''}NULL)"


@dataclass(frozen=True)
class Between(Expr):
    """``expr [NOT] BETWEEN low AND high``.

    Kept as a dedicated node (rather than desugared to two comparisons) so
    the operand is evaluated once per row.  The paper notes MongoDB
    precomputes the tested value while Postgres re-evaluates it for each
    bound; our Sinew build follows the single-evaluation behaviour.
    """

    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False
    span: tuple[int, int] | None = field(default=None, compare=False, repr=False)

    def children(self) -> Iterator[Expr]:
        yield self.operand
        yield self.low
        yield self.high

    def __str__(self) -> str:
        not_part = "NOT " if self.negated else ""
        return f"({self.operand} {not_part}BETWEEN {self.low} AND {self.high})"


@dataclass(frozen=True)
class InList(Expr):
    """``expr [NOT] IN (item, ...)``."""

    operand: Expr
    items: tuple[Expr, ...]
    negated: bool = False
    span: tuple[int, int] | None = field(default=None, compare=False, repr=False)

    def children(self) -> Iterator[Expr]:
        yield self.operand
        yield from self.items

    def __str__(self) -> str:
        inner = ", ".join(str(item) for item in self.items)
        return f"({self.operand} {'NOT ' if self.negated else ''}IN ({inner}))"


@dataclass(frozen=True)
class Like(Expr):
    """``expr [NOT] LIKE pattern`` with %/_ wildcards."""

    operand: Expr
    pattern: Expr
    negated: bool = False
    span: tuple[int, int] | None = field(default=None, compare=False, repr=False)

    def children(self) -> Iterator[Expr]:
        yield self.operand
        yield self.pattern

    def __str__(self) -> str:
        return f"({self.operand} {'NOT ' if self.negated else ''}LIKE {self.pattern})"


@dataclass(frozen=True)
class FunctionCall(Expr):
    """Scalar or aggregate function invocation.

    Whether the name denotes an aggregate is decided by the function
    registry at planning time, not here.
    """

    name: str
    args: tuple[Expr, ...]
    distinct: bool = False
    span: tuple[int, int] | None = field(default=None, compare=False, repr=False)

    def children(self) -> Iterator[Expr]:
        yield from self.args

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        distinct = "DISTINCT " if self.distinct else ""
        return f"{self.name}({distinct}{inner})"


@dataclass(frozen=True)
class Coalesce(Expr):
    """``COALESCE(a, b, ...)`` with lazy argument evaluation."""

    args: tuple[Expr, ...]
    span: tuple[int, int] | None = field(default=None, compare=False, repr=False)

    def children(self) -> Iterator[Expr]:
        yield from self.args

    def __str__(self) -> str:
        return f"COALESCE({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class Cast(Expr):
    """``CAST(expr AS type)`` / ``expr::type``; raises on malformed input."""

    operand: Expr
    target: SqlType
    span: tuple[int, int] | None = field(default=None, compare=False, repr=False)

    def children(self) -> Iterator[Expr]:
        yield self.operand

    def __str__(self) -> str:
        return f"CAST({self.operand} AS {self.target})"


@dataclass(frozen=True)
class AnyPredicate(Expr):
    """``scalar = ANY (array_expr)`` -- NoBench Q8's array containment."""

    needle: Expr
    haystack: Expr
    span: tuple[int, int] | None = field(default=None, compare=False, repr=False)

    def children(self) -> Iterator[Expr]:
        yield self.needle
        yield self.haystack

    def __str__(self) -> str:
        return f"({self.needle} = ANY ({self.haystack}))"


_IDENTIFIER_RE = re.compile(r"^[a-z_][a-z0-9_]*$")


def _needs_quotes(name: str) -> bool:
    return not _IDENTIFIER_RE.match(name)


# ---------------------------------------------------------------------------
# Evaluation helpers (three-valued logic)
# ---------------------------------------------------------------------------


def _compare(op: str, left: Any, right: Any) -> bool | None:
    """SQL comparison with NULL propagation and type bracketing.

    Cross-type comparisons between numbers work (INTEGER vs REAL); any other
    cross-type comparison is UNKNOWN (None), mirroring how Sinew's typed
    extraction sidesteps mixed-type keys by returning NULL for values of the
    wrong type.
    """
    if left is None or right is None:
        return None
    left_is_num = isinstance(left, (int, float)) and not isinstance(left, bool)
    right_is_num = isinstance(right, (int, float)) and not isinstance(right, bool)
    if left_is_num != right_is_num or (
        not left_is_num and type(left) is not type(right)
    ):
        if op == "=":
            return False
        if op in ("<>", "!="):
            return True
        return None
    try:
        if op == "=":
            return left == right
        if op in ("<>", "!="):
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError:
        return None
    raise ExecutionError(f"unknown comparison operator {op!r}")


def _arith(op: str, left: Any, right: Any) -> Any:
    if left is None or right is None:
        return None
    if op == "||":
        return str(left) + str(right)
    if not isinstance(left, (int, float)) or not isinstance(right, (int, float)):
        raise ExecutionError(
            f"operator {op!r} requires numeric operands, got "
            f"{type(left).__name__} and {type(right).__name__}"
        )
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise ExecutionError("division by zero")
        if isinstance(left, int) and isinstance(right, int):
            return left // right if (left % right == 0) else left / right
        return left / right
    if op == "%":
        if right == 0:
            raise ExecutionError("division by zero")
        return left % right
    raise ExecutionError(f"unknown arithmetic operator {op!r}")


def _kleene_and(left: bool | None, right: bool | None) -> bool | None:
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def _kleene_or(left: bool | None, right: bool | None) -> bool | None:
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def like_to_regex(pattern: str) -> re.Pattern:
    """Translate a SQL LIKE pattern into an anchored regular expression."""
    out: list[str] = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------


class Resolver:
    """Maps column references to positions in the runtime row tuple."""

    def resolve(self, ref: ColumnRef) -> int:
        raise NotImplementedError

    def resolve_function(self, name: str):
        """Return the scalar-function implementation for ``name``."""
        raise NotImplementedError


class SchemaResolver(Resolver):
    """Resolver over a flat list of (qualifier, name) output columns.

    Used by operators whose input row layout is a concatenation of base
    table columns (scans, joins).  Raises on genuinely ambiguous unqualified
    references, as a SQL engine must.
    """

    def __init__(self, columns: Sequence[tuple[str | None, str]], functions=None):
        self.columns = list(columns)
        self._functions = functions
        self._by_name: dict[str, list[int]] = {}
        self._by_qualified: dict[tuple[str, str], int] = {}
        for position, (qualifier, name) in enumerate(self.columns):
            self._by_name.setdefault(name, []).append(position)
            if qualifier is not None:
                self._by_qualified[(qualifier, name)] = position

    def resolve(self, ref: ColumnRef) -> int:
        if ref.table is not None:
            key = (ref.table, ref.name)
            if key in self._by_qualified:
                return self._by_qualified[key]
            raise ExecutionError(f"no such column: {ref.table}.{ref.name}")
        positions = self._by_name.get(ref.name, [])
        if len(positions) == 1:
            return positions[0]
        if not positions:
            raise ExecutionError(f"no such column: {ref.name!r}")
        raise ExecutionError(f"ambiguous column reference: {ref.name!r}")

    def resolve_function(self, name: str):
        if self._functions is None:
            raise ExecutionError(f"no function registry available for {name!r}")
        return self._functions.scalar(name)


def compile_expr(expr: Expr, resolver: Resolver) -> CompiledExpr:
    """Compile an expression tree into a closure ``row -> value``."""
    if isinstance(expr, Literal):
        value = expr.value
        return lambda row: value

    if isinstance(expr, ColumnRef):
        position = resolver.resolve(expr)
        return lambda row: row[position]

    if isinstance(expr, BinaryOp):
        left = compile_expr(expr.left, resolver)
        right = compile_expr(expr.right, resolver)
        op = expr.op
        if op == "AND":
            return lambda row: _kleene_and(left(row), right(row))
        if op == "OR":
            return lambda row: _kleene_or(left(row), right(row))
        if op in ("=", "<>", "!=", "<", "<=", ">", ">="):
            return lambda row: _compare(op, left(row), right(row))
        return lambda row: _arith(op, left(row), right(row))

    if isinstance(expr, UnaryOp):
        operand = compile_expr(expr.operand, resolver)
        if expr.op == "NOT":
            def _not(row: Row) -> bool | None:
                value = operand(row)
                return None if value is None else not value

            return _not
        if expr.op == "-":
            def _neg(row: Row) -> Any:
                value = operand(row)
                return None if value is None else -value

            return _neg
        if expr.op == "+":
            return operand
        raise ExecutionError(f"unknown unary operator {expr.op!r}")

    if isinstance(expr, IsNull):
        operand = compile_expr(expr.operand, resolver)
        if expr.negated:
            return lambda row: operand(row) is not None
        return lambda row: operand(row) is None

    if isinstance(expr, Between):
        operand = compile_expr(expr.operand, resolver)
        low = compile_expr(expr.low, resolver)
        high = compile_expr(expr.high, resolver)
        negated = expr.negated

        def _between(row: Row) -> bool | None:
            value = operand(row)
            result = _kleene_and(
                _compare(">=", value, low(row)), _compare("<=", value, high(row))
            )
            if negated and result is not None:
                return not result
            return result

        return _between

    if isinstance(expr, InList):
        operand = compile_expr(expr.operand, resolver)
        items = [compile_expr(item, resolver) for item in expr.items]
        negated = expr.negated

        def _in(row: Row) -> bool | None:
            value = operand(row)
            if value is None:
                return None
            saw_null = False
            for item in items:
                candidate = item(row)
                if candidate is None:
                    saw_null = True
                elif _compare("=", value, candidate) is True:
                    return not negated
            if saw_null:
                return None
            return negated

        return _in

    if isinstance(expr, Like):
        operand = compile_expr(expr.operand, resolver)
        if isinstance(expr.pattern, Literal) and isinstance(expr.pattern.value, str):
            regex = like_to_regex(expr.pattern.value)

            def _like_const(row: Row) -> bool | None:
                value = operand(row)
                if value is None:
                    return None
                matched = regex.match(str(value)) is not None
                return not matched if expr.negated else matched

            return _like_const
        pattern = compile_expr(expr.pattern, resolver)

        def _like(row: Row) -> bool | None:
            value = operand(row)
            pat = pattern(row)
            if value is None or pat is None:
                return None
            matched = like_to_regex(str(pat)).match(str(value)) is not None
            return not matched if expr.negated else matched

        return _like

    if isinstance(expr, Coalesce):
        compiled = [compile_expr(arg, resolver) for arg in expr.args]

        def _coalesce(row: Row) -> Any:
            for fn in compiled:
                value = fn(row)
                if value is not None:
                    return value
            return None

        return _coalesce

    if isinstance(expr, Cast):
        operand = compile_expr(expr.operand, resolver)
        target = expr.target
        return lambda row: cast_value(operand(row), target)

    if isinstance(expr, AnyPredicate):
        needle = compile_expr(expr.needle, resolver)
        haystack = compile_expr(expr.haystack, resolver)

        def _any(row: Row) -> bool | None:
            value = needle(row)
            array = haystack(row)
            if value is None or array is None:
                return None
            if not isinstance(array, (list, tuple)):
                return None
            return any(_compare("=", value, element) is True for element in array)

        return _any

    if isinstance(expr, FunctionCall):
        implementation = resolver.resolve_function(expr.name)
        args = [compile_expr(arg, resolver) for arg in expr.args]
        fn = implementation.fn
        if implementation.counts_as_udf:
            counters = implementation.counters

            def _udf(row: Row) -> Any:
                if counters is not None:
                    counters.udf_calls += 1
                return fn(*[a(row) for a in args])

            return _udf
        return lambda row: fn(*[a(row) for a in args])

    raise ExecutionError(f"cannot compile expression node {type(expr).__name__}")


def contains_function_call(expr: Expr) -> bool:
    """True when any node in the tree is a function call.

    The planner uses this to fall back to the fixed default selectivity for
    predicates the statistics subsystem cannot see through -- the exact
    behaviour the paper exploits in Table 2 (virtual columns are invisible
    to the optimizer because they hide behind ``extract_key`` UDF calls).
    """
    return any(isinstance(node, FunctionCall) for node in expr.walk())


def referenced_columns(expr: Expr) -> list[ColumnRef]:
    """All column references in the tree, in pre-order."""
    return [node for node in expr.walk() if isinstance(node, ColumnRef)]
