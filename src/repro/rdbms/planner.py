"""Cost-based query planner.

The planner turns a bound :class:`~repro.rdbms.sql.ast.SelectStatement` into
a physical operator tree.  Its decisions are deliberately PostgreSQL-shaped,
because the paper's Table 2 experiment is about *how those decisions change*
once Sinew materializes a virtual column into a physical one:

* **Predicate estimates** come from per-column statistics when the predicate
  references physical columns, and fall back to the fixed
  :data:`~repro.rdbms.statistics.DEFAULT_UDF_PREDICATE_ROWS` estimate when
  the predicate goes through a UDF (i.e. a Sinew virtual column).
* **Aggregate strategy** (HashAggregate vs. Sort+GroupAggregate/Unique)
  depends on whether the estimated grouped state fits ``work_mem`` -- a
  200-row estimate always hashes; a realistic multi-thousand-distinct
  estimate switches to the sort-based strategy.
* **Join order** is chosen by exhaustive left-deep enumeration with
  cardinality estimates, so a mis-estimated virtual-column filter reorders
  the join tree exactly as the paper shows.
* **Join algorithm**: hash join when the inner fits ``work_mem``, otherwise
  merge join; nested loop only without an equi-key.
"""

from __future__ import annotations

import itertools
import pickle
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from .errors import CatalogError, PlanningError
from .expressions import (
    AnyPredicate,
    Between,
    BinaryOp,
    Cast,
    Coalesce,
    ColumnRef,
    Expr,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Star,
    UnaryOp,
    contains_function_call,
    referenced_columns,
)
from .functions import _BUILTIN_AGGREGATES, FunctionRegistry
from .executor import ExecutorPool
from .plan_nodes import (
    AggSpec,
    Filter,
    GroupAggregate,
    HashAggregate,
    HashJoin,
    Limit,
    MergeJoin,
    NestedLoopJoin,
    ParallelHashAggregate,
    ParallelScan,
    ParallelSort,
    PlanNode,
    Project,
    SeqScan,
    Sort,
    Unique,
)
from .sql.ast import OrderItem, SelectItem, SelectStatement, TableRef
from .statistics import (
    ColumnStats,
    SelectivityEstimator,
    TableStats,
)
from .storage import HeapTable

#: PostgreSQL's default n_distinct guess when a column has no statistics.
DEFAULT_N_DISTINCT = 200

#: Modelled hash-table entry overhead (bucket pointers, entry header).
HASH_ENTRY_OVERHEAD_BYTES = 64


@dataclass
class _Relation:
    """One FROM-clause table instance during planning."""

    binding: str
    table: HeapTable
    stats: TableStats | None
    filters: list[Expr] = field(default_factory=list)
    plan: PlanNode | None = None


@dataclass
class _JoinEdge:
    """An equi-join conjunct between two relations."""

    left_binding: str
    right_binding: str
    left_expr: Expr
    right_expr: Expr


class Planner:
    """Plans SELECT statements against a set of heap tables."""

    def __init__(
        self,
        tables: dict[str, HeapTable],
        stats: dict[str, TableStats],
        functions: FunctionRegistry,
        work_mem_bytes: int,
        parallel_workers: int = 1,
        executor_pool: ExecutorPool | None = None,
        executor_lane: str = "thread",
    ):
        self.tables = tables
        self.stats = stats
        self.functions = functions
        self.work_mem_bytes = work_mem_bytes
        self.parallel_workers = max(1, parallel_workers)
        self.executor_pool = executor_pool
        #: configured lane preference: "serial" disables the morsel
        #: rewrite entirely, "thread" is the shared-memory default, and
        #: "process" routes each eligible fragment across the GIL --
        #: falling back to threads per fragment when its expressions
        #: cannot cross a process boundary (see :meth:`_process_safe`).
        self.executor_lane = executor_lane

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------

    def plan_select(self, statement: SelectStatement) -> PlanNode:
        relations = self._bind_from(statement.from_tables)
        conjuncts = _split_conjuncts(statement.where)
        edges, residuals = self._classify_conjuncts(conjuncts, relations)

        for relation in relations.values():
            relation.plan = self._scan_plan(relation)

        plan = self._join_plan(list(relations.values()), edges, relations)

        for residual in residuals:
            selectivity = self._estimator_for(relations, plan).estimate(residual)
            plan = Filter(plan, residual, selectivity)

        plan = self._aggregate_and_project(statement, plan, relations)

        if statement.limit is not None:
            plan = Limit(plan, statement.limit)
        return self._maybe_parallelize(plan, statement)

    # ------------------------------------------------------------------
    # morsel-driven parallelism
    # ------------------------------------------------------------------

    def _maybe_parallelize(
        self, plan: PlanNode, statement: SelectStatement
    ) -> PlanNode:
        """Rewrite scan-side fragments into morsel-parallel operators.

        Eligibility gates (see DESIGN.md section 10):

        * ``parallel_workers > 1`` and a pool to run on;
        * no ``LIMIT`` without ``ORDER BY`` -- pushing such a limit across
          morsels would change *which* rows are returned relative to the
          serial scan, and not pushing it means scanning everything for a
          query the serial engine can short-circuit;
        * no volatile (or unknown) scalar functions in any expression a
          worker would evaluate;
        * aggregates must be mergeable and non-DISTINCT to run as
          per-worker partials; joins stay serial.
        """
        if self.parallel_workers <= 1 or self.executor_pool is None:
            return plan
        if self.executor_lane == "serial":
            return plan
        if statement.limit is not None and not statement.order_by:
            return plan
        return self._parallel_rewrite(plan)

    def _parallel_rewrite(self, node: PlanNode) -> PlanNode:
        replacement = self._parallel_replacement(node)
        if replacement is not None:
            return replacement
        if isinstance(
            node,
            (Limit, Project, Sort, Filter, Unique, HashAggregate, GroupAggregate),
        ):
            node.child = self._parallel_rewrite(node.child)
        return node

    def _parallel_replacement(self, node: PlanNode) -> PlanNode | None:
        """The parallel operator replacing ``node``'s fragment, or None."""
        workers = self.parallel_workers
        pool = self.executor_pool
        if isinstance(node, Project):
            chain = self._match_scan_chain(node.child)
            if chain is None:
                return None
            scan, predicates = chain
            pushed = [*predicates, *node.expressions]
            if not self._parallel_safe(pushed):
                return None
            names = [name for _qualifier, name in node.output_columns]
            return ParallelScan(
                scan.table,
                scan.qualifier,
                predicates,
                (node.expressions, names),
                workers,
                pool,
                node,
                lane=self._fragment_lane(pushed),
            )
        if isinstance(node, Filter):
            chain = self._match_scan_chain(node)
            if chain is None:
                return None
            scan, predicates = chain
            if not self._parallel_safe(predicates):
                return None
            return ParallelScan(
                scan.table,
                scan.qualifier,
                predicates,
                None,
                workers,
                pool,
                node,
                lane=self._fragment_lane(predicates),
            )
        if isinstance(node, Sort):
            chain, projection = self._match_projected_chain(node.child)
            if chain is None:
                return None
            scan, predicates = chain
            key_exprs = [expr for expr, _asc in node.keys]
            pushed = [*predicates, *key_exprs]
            if projection is not None:
                pushed.extend(projection[0])
            if not self._parallel_safe(pushed):
                return None
            return ParallelSort(
                scan.table,
                scan.qualifier,
                predicates,
                projection,
                workers,
                pool,
                node.keys,
                node,
                lane=self._fragment_lane(pushed),
            )
        if isinstance(node, HashAggregate):
            specs = node.aggregates
            if any(spec.distinct for spec in specs):
                return None
            if any(spec.function.merge is None for spec in specs):
                return None
            chain, projection = self._match_projected_chain(node.child)
            if chain is None:
                return None
            scan, predicates = chain
            pushed = [*predicates, *node.group_exprs]
            pushed.extend(
                spec.argument for spec in specs if spec.argument is not None
            )
            if projection is not None:
                pushed.extend(projection[0])
            if not self._parallel_safe(pushed):
                return None
            return ParallelHashAggregate(
                scan.table,
                scan.qualifier,
                predicates,
                projection,
                workers,
                pool,
                node.group_exprs,
                specs,
                node,
                lane=self._fragment_lane(pushed, specs),
            )
        return None

    @staticmethod
    def _match_scan_chain(node: PlanNode) -> tuple[SeqScan, list[Expr]] | None:
        """Match a ``Filter*(SeqScan)`` fragment, predicates in apply order."""
        predicates: list[Expr] = []
        while isinstance(node, Filter):
            predicates.append(node.predicate)
            node = node.child
        if isinstance(node, SeqScan):
            # the innermost Filter runs first serially; reverse to preserve
            # evaluation order (and therefore short-circuit UDF counts)
            return node, list(reversed(predicates))
        return None

    def _match_projected_chain(self, node: PlanNode):
        """Match a scan chain with an optional Project on top of it."""
        chain = self._match_scan_chain(node)
        if chain is not None:
            return chain, None
        if isinstance(node, Project):
            chain = self._match_scan_chain(node.child)
            if chain is not None:
                names = [name for _qualifier, name in node.output_columns]
                return chain, (node.expressions, names)
        return None, None

    def _parallel_safe(self, expressions: Iterable[Expr]) -> bool:
        """True when every function a worker would call is parallel-safe."""
        for expr in expressions:
            for sub in expr.walk():
                if not isinstance(sub, FunctionCall):
                    continue
                if self.functions.is_aggregate(sub.name):
                    continue
                if not self.functions.has_scalar(sub.name):
                    return False
                if self.functions.scalar(sub.name).volatile:
                    return False
        return True

    def _fragment_lane(
        self, expressions: Iterable[Expr], aggregates: Iterable[AggSpec] = ()
    ) -> str:
        """Pick the executor lane for one already-parallel-safe fragment.

        ``process`` is a per-fragment *preference*, not a mandate: a
        fragment whose expressions cannot cross the process boundary
        silently runs on the thread lane instead (never an error --
        EXPLAIN surfaces the chosen lane).  Volatile functions never get
        here; :meth:`_parallel_safe` already kept them serial.
        """
        expressions = list(expressions)
        if self.executor_lane != "process":
            return "thread"
        if not self._process_safe(expressions, aggregates):
            return "thread"
        return "process"

    def _process_safe(
        self, expressions: list[Expr], aggregates: Iterable[AggSpec]
    ) -> bool:
        """True when the fragment's programs survive the pickle boundary.

        Three gates: every aggregate must be a built-in carrying a
        ``merge`` (workers rebuild them by name); every scalar must carry
        a ``remote_spec`` -- with a live ``remote_catalog`` when the spec
        is a Sinew extraction method; and the expression trees themselves
        must pickle (a ``Literal`` can wrap an arbitrary Python object
        when a statement is built from a raw AST).
        """
        for spec in aggregates:
            function = spec.function
            if _BUILTIN_AGGREGATES.get(function.name) is not function:
                return False
            if function.merge is None:
                return False
        for expr in expressions:
            for sub in expr.walk():
                if not isinstance(sub, FunctionCall):
                    continue
                if self.functions.is_aggregate(sub.name):
                    continue
                implementation = self.functions.scalar(sub.name)
                remote = implementation.remote_spec
                if remote is None:
                    return False
                if (
                    remote[0] == "sinew_extract"
                    and getattr(self.functions, "remote_catalog", None) is None
                ):
                    return False
        try:
            pickle.dumps(tuple(expressions), protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return False
        return True

    # ------------------------------------------------------------------
    # FROM binding and predicate classification
    # ------------------------------------------------------------------

    def _bind_from(self, from_tables: tuple[TableRef, ...]) -> dict[str, _Relation]:
        if not from_tables:
            raise PlanningError("SELECT without FROM is not supported")
        relations: dict[str, _Relation] = {}
        for ref in from_tables:
            if ref.name not in self.tables:
                raise CatalogError(
                    f"no such table: {ref.name!r}",
                    position=ref.span[0] if ref.span else None,
                )
            if ref.binding in relations:
                raise PlanningError(f"duplicate table binding: {ref.binding!r}")
            relations[ref.binding] = _Relation(
                binding=ref.binding,
                table=self.tables[ref.name],
                stats=self.stats.get(ref.name),
            )
        return relations

    def _bindings_of(self, expr: Expr, relations: dict[str, _Relation]) -> set[str]:
        """The set of relations an expression touches (validates references)."""
        bindings: set[str] = set()
        for ref in referenced_columns(expr):
            position = ref.span[0] if ref.span else None
            if ref.table is not None:
                if ref.table not in relations:
                    raise CatalogError(
                        f"unknown table alias: {ref.table!r}", position=position
                    )
                if ref.name not in relations[ref.table].table.schema:
                    raise CatalogError(
                        f"no such column: {ref.table}.{ref.name}",
                        position=position,
                    )
                bindings.add(ref.table)
                continue
            owners = [
                binding
                for binding, relation in relations.items()
                if ref.name in relation.table.schema
            ]
            if not owners:
                raise CatalogError(f"no such column: {ref.name!r}", position=position)
            if len(owners) > 1:
                raise PlanningError(
                    f"ambiguous column reference: {ref.name!r}", position=position
                )
            bindings.add(owners[0])
        return bindings

    def _classify_conjuncts(
        self, conjuncts: list[Expr], relations: dict[str, _Relation]
    ) -> tuple[list[_JoinEdge], list[Expr]]:
        edges: list[_JoinEdge] = []
        residuals: list[Expr] = []
        for conjunct in conjuncts:
            bindings = self._bindings_of(conjunct, relations)
            if len(bindings) <= 1:
                if bindings:
                    relations[next(iter(bindings))].filters.append(conjunct)
                else:
                    residuals.append(conjunct)  # constant predicate
                continue
            edge = self._as_equi_edge(conjunct, relations)
            if edge is not None and len(bindings) == 2:
                edges.append(edge)
            else:
                residuals.append(conjunct)
        return edges, residuals

    def _as_equi_edge(
        self, conjunct: Expr, relations: dict[str, _Relation]
    ) -> _JoinEdge | None:
        if not (isinstance(conjunct, BinaryOp) and conjunct.op == "="):
            return None
        left_bindings = self._bindings_of(conjunct.left, relations)
        right_bindings = self._bindings_of(conjunct.right, relations)
        if len(left_bindings) != 1 or len(right_bindings) != 1:
            return None
        left_binding = next(iter(left_bindings))
        right_binding = next(iter(right_bindings))
        if left_binding == right_binding:
            return None
        return _JoinEdge(left_binding, right_binding, conjunct.left, conjunct.right)

    # ------------------------------------------------------------------
    # scans and filters
    # ------------------------------------------------------------------

    def _column_stats_for(
        self, relations: dict[str, _Relation]
    ) -> Callable[[ColumnRef], ColumnStats | None]:
        def lookup(ref: ColumnRef) -> ColumnStats | None:
            candidates: Iterable[_Relation]
            if ref.table is not None:
                relation = relations.get(ref.table)
                candidates = (relation,) if relation else ()
            else:
                candidates = relations.values()
            for relation in candidates:
                if relation is None or relation.stats is None:
                    continue
                if ref.name in relation.stats.columns:
                    return relation.stats.columns[ref.name]
            return None

        return lookup

    def _estimator_for(
        self, relations: dict[str, _Relation], plan: PlanNode
    ) -> SelectivityEstimator:
        return SelectivityEstimator(
            self._column_stats_for(relations), total_rows=max(1, int(plan.est_rows))
        )

    def _scan_plan(self, relation: _Relation) -> PlanNode:
        plan: PlanNode = SeqScan(relation.table, relation.binding)
        if relation.filters:
            estimator = SelectivityEstimator(
                self._column_stats_for({relation.binding: relation}),
                total_rows=max(1, len(relation.table)),
            )
            for predicate in relation.filters:
                plan = Filter(plan, predicate, estimator.estimate(predicate))
        return plan

    # ------------------------------------------------------------------
    # join ordering
    # ------------------------------------------------------------------

    def _join_plan(
        self,
        relations: list[_Relation],
        edges: list[_JoinEdge],
        relation_map: dict[str, _Relation],
    ) -> PlanNode:
        if len(relations) == 1:
            assert relations[0].plan is not None
            return relations[0].plan

        if len(relations) > 6:
            raise PlanningError("too many tables in FROM (max 6)")

        best_plan: PlanNode | None = None
        for order in itertools.permutations(relations):
            plan = self._left_deep_plan(order, edges, relation_map)
            if plan is None:
                continue
            if best_plan is None or plan.est_cost < best_plan.est_cost:
                best_plan = plan
        if best_plan is None:
            raise PlanningError("could not find a join plan")
        return best_plan

    def _left_deep_plan(
        self,
        order: tuple[_Relation, ...],
        edges: list[_JoinEdge],
        relation_map: dict[str, _Relation],
    ) -> PlanNode | None:
        joined = {order[0].binding}
        plan = order[0].plan
        assert plan is not None
        used_edges: set[int] = set()
        for relation in order[1:]:
            applicable: list[tuple[int, _JoinEdge, bool]] = []
            for index, edge in enumerate(edges):
                if index in used_edges:
                    continue
                if edge.left_binding in joined and edge.right_binding == relation.binding:
                    applicable.append((index, edge, False))
                elif edge.right_binding in joined and edge.left_binding == relation.binding:
                    applicable.append((index, edge, True))
            inner = relation.plan
            assert inner is not None
            if applicable:
                outer_keys = []
                inner_keys = []
                for index, edge, flipped in applicable:
                    used_edges.add(index)
                    if flipped:
                        outer_keys.append(edge.right_expr)
                        inner_keys.append(edge.left_expr)
                    else:
                        outer_keys.append(edge.left_expr)
                        inner_keys.append(edge.right_expr)
                est_rows = self._join_cardinality(
                    plan, inner, outer_keys, inner_keys, relation_map
                )
                plan = self._choose_join(plan, inner, outer_keys, inner_keys, est_rows)
            else:
                # no applicable edge: avoid cartesian products unless forced
                # (when this is the only remaining relation ordering).
                est_rows = plan.est_rows * inner.est_rows
                plan = NestedLoopJoin(plan, inner, None, est_rows)
            joined.add(relation.binding)
        return plan

    def _choose_join(
        self,
        outer: PlanNode,
        inner: PlanNode,
        outer_keys: list[Expr],
        inner_keys: list[Expr],
        est_rows: float,
    ) -> PlanNode:
        inner_bytes = inner.est_rows * (inner.est_row_bytes + HASH_ENTRY_OVERHEAD_BYTES)
        if inner_bytes <= self.work_mem_bytes:
            return HashJoin(outer, inner, outer_keys, inner_keys, est_rows)
        return MergeJoin(outer, inner, outer_keys, inner_keys, est_rows)

    def _join_cardinality(
        self,
        outer: PlanNode,
        inner: PlanNode,
        outer_keys: list[Expr],
        inner_keys: list[Expr],
        relation_map: dict[str, _Relation],
    ) -> float:
        stats_lookup = self._column_stats_for(relation_map)
        selectivity = 1.0
        for outer_key, inner_key in zip(outer_keys, inner_keys):
            ndv_outer = self._key_ndv(outer_key, stats_lookup)
            ndv_inner = self._key_ndv(inner_key, stats_lookup)
            selectivity *= 1.0 / max(ndv_outer, ndv_inner, 1)
        return max(1.0, outer.est_rows * inner.est_rows * selectivity)

    def _key_ndv(self, key: Expr, stats_lookup) -> int:
        if isinstance(key, ColumnRef):
            stats = stats_lookup(key)
            if stats is not None and stats.n_distinct > 0:
                return stats.n_distinct
        return DEFAULT_N_DISTINCT

    # ------------------------------------------------------------------
    # aggregation, distinct, projection, order by
    # ------------------------------------------------------------------

    def _aggregate_and_project(
        self,
        statement: SelectStatement,
        plan: PlanNode,
        relations: dict[str, _Relation],
    ) -> PlanNode:
        select_items = self._expand_stars(statement.items, plan)
        output_names = [
            self._output_name(item, index) for index, item in enumerate(select_items)
        ]
        aggregate_calls = self._collect_aggregates(
            [item.expr for item in select_items]
            + ([statement.having] if statement.having is not None else [])
            + [item.expr for item in statement.order_by]
        )

        order_items = list(statement.order_by)
        if statement.group_by or aggregate_calls:
            plan, select_items, having, order_items = self._plan_aggregation(
                statement, plan, select_items, aggregate_calls, relations
            )
            if having is not None:
                estimator = self._estimator_for(relations, plan)
                plan = Filter(plan, having, estimator.estimate(having))
        else:
            having = None

        # ORDER BY keys that reference scan columns must sort before the
        # projection discards them; alias references sort after.
        pre_projection_sort = order_items and self._resolvable(
            [item.expr for item in order_items], plan
        )
        if pre_projection_sort:
            plan = Sort(plan, [(item.expr, item.ascending) for item in order_items])

        names = output_names
        pre_projection = plan
        plan = Project(plan, [item.expr for item in select_items], names)

        if statement.distinct:
            plan = self._plan_distinct(
                plan, relations, [item.expr for item in select_items], pre_projection
            )

        if order_items and not pre_projection_sort:
            keys = []
            for item in order_items:
                rewritten = self._rewrite_for_output(item.expr, select_items, names)
                keys.append((rewritten, item.ascending))
            plan = Sort(plan, keys)
        return plan

    def _expand_stars(
        self, items: tuple[SelectItem, ...], plan: PlanNode
    ) -> list[SelectItem]:
        expanded: list[SelectItem] = []
        for item in items:
            if isinstance(item.expr, Star):
                for qualifier, name in plan.output_columns:
                    if item.expr.table is None or item.expr.table == qualifier:
                        expanded.append(SelectItem(ColumnRef(qualifier, name), name))
                if item.expr.table is not None and not any(
                    qualifier == item.expr.table
                    for qualifier, _name in plan.output_columns
                ):
                    raise CatalogError(f"unknown table alias: {item.expr.table!r}")
            else:
                expanded.append(item)
        return expanded

    def _collect_aggregates(self, expressions: list[Expr]) -> list[FunctionCall]:
        calls: list[FunctionCall] = []
        for expr in expressions:
            if expr is None:
                continue
            for node in expr.walk():
                if isinstance(node, FunctionCall) and self.functions.is_aggregate(
                    node.name
                ):
                    if node not in calls:
                        calls.append(node)
        return calls

    def _plan_aggregation(
        self,
        statement: SelectStatement,
        plan: PlanNode,
        select_items: list[SelectItem],
        aggregate_calls: list[FunctionCall],
        relations: dict[str, _Relation],
    ):
        group_exprs = list(statement.group_by)
        specs: list[AggSpec] = []
        for index, call in enumerate(aggregate_calls):
            argument: Expr | None
            if not call.args or isinstance(call.args[0], Star):
                argument = None
            else:
                argument = call.args[0]
            specs.append(
                AggSpec(
                    function=self.functions.aggregate(call.name),
                    argument=argument,
                    distinct=call.distinct,
                    output_name=f"__agg{index}",
                )
            )

        est_groups = self._estimate_groups(group_exprs, plan, relations)
        agg_row_bytes = 16.0 * (len(group_exprs) + len(specs)) + HASH_ENTRY_OVERHEAD_BYTES
        if est_groups * agg_row_bytes <= self.work_mem_bytes:
            agg: PlanNode = HashAggregate(plan, group_exprs, specs, est_groups)
        else:
            sorted_input = Sort(plan, [(e, True) for e in group_exprs])
            agg = GroupAggregate(sorted_input, group_exprs, specs, est_groups)

        # Rewrite outer expressions onto the aggregate's output layout.
        mapping: list[tuple[Expr, Expr]] = []
        for index, group_expr in enumerate(group_exprs):
            mapping.append((group_expr, ColumnRef(None, f"__key{index}")))
        for call, spec in zip(aggregate_calls, specs):
            mapping.append((call, ColumnRef(None, spec.output_name)))

        new_items = [
            SelectItem(_replace_subtrees(item.expr, mapping), item.alias)
            for item in select_items
        ]
        self._validate_aggregated(new_items, agg)
        having = (
            _replace_subtrees(statement.having, mapping)
            if statement.having is not None
            else None
        )
        order_items = [
            OrderItem(_replace_subtrees(item.expr, mapping), item.ascending)
            for item in statement.order_by
        ]
        return agg, new_items, having, order_items

    def _validate_aggregated(self, items: list[SelectItem], agg: PlanNode) -> None:
        valid_names = {name for _qualifier, name in agg.output_columns}
        for item in items:
            for ref in referenced_columns(item.expr):
                if ref.table is None and ref.name in valid_names:
                    continue
                raise PlanningError(
                    f"column {ref} must appear in GROUP BY or an aggregate"
                )

    def _estimate_groups(
        self,
        group_exprs: list[Expr],
        plan: PlanNode,
        relations: dict[str, _Relation],
    ) -> float:
        if not group_exprs:
            return 1.0
        stats_lookup = self._column_stats_for(relations)
        estimate = 1.0
        for expr in group_exprs:
            if contains_function_call(expr) or not isinstance(expr, ColumnRef):
                # Opaque key (UDF over the reservoir): default guess, exactly
                # like PostgreSQL's DEFAULT_NUM_DISTINCT.
                estimate *= DEFAULT_N_DISTINCT
                continue
            stats = stats_lookup(expr)
            if stats is not None and stats.n_distinct > 0:
                estimate *= stats.n_distinct
            else:
                estimate *= DEFAULT_N_DISTINCT
        return min(estimate, max(1.0, plan.est_rows))

    def _plan_distinct(
        self,
        plan: PlanNode,
        relations: dict[str, _Relation],
        select_exprs: list[Expr],
        pre_projection: PlanNode,
    ) -> PlanNode:
        """DISTINCT over the projection: hash when the estimated distinct set
        fits work_mem, otherwise sort + unique.

        The distinct-set estimate uses column statistics for physical
        columns and the DEFAULT_N_DISTINCT guess for anything hidden
        behind a UDF -- so DISTINCT over a Sinew virtual column hashes (the
        200-group guess always fits) while the same query over the
        materialized physical column switches to Sort+Unique once the true
        distinct count outgrows work_mem.  That is the first row of the
        paper's Table 2.
        """
        group_exprs = [ColumnRef(None, name) for _qualifier, name in plan.output_columns]
        est_groups = self._estimate_groups(select_exprs, pre_projection, relations)
        row_bytes = plan.est_row_bytes + HASH_ENTRY_OVERHEAD_BYTES
        if est_groups * row_bytes <= self.work_mem_bytes:
            return HashAggregate(plan, group_exprs, [], est_groups)
        ordered = Sort(plan, [(e, True) for e in group_exprs])
        return Unique(ordered)

    def _resolvable(self, expressions: list[Expr], plan: PlanNode) -> bool:
        available_unqualified = {name for _qualifier, name in plan.output_columns}
        available_qualified = {
            (qualifier, name)
            for qualifier, name in plan.output_columns
            if qualifier is not None
        }
        for expr in expressions:
            for ref in referenced_columns(expr):
                if ref.table is None:
                    if ref.name not in available_unqualified:
                        return False
                elif (ref.table, ref.name) not in available_qualified:
                    return False
        return True

    def _rewrite_for_output(
        self, expr: Expr, select_items: list[SelectItem], names: list[str]
    ) -> Expr:
        mapping: list[tuple[Expr, Expr]] = []
        for item, name in zip(select_items, names):
            mapping.append((item.expr, ColumnRef(None, name)))
            if item.alias is not None and isinstance(expr, ColumnRef):
                if expr.table is None and expr.name == item.alias:
                    return ColumnRef(None, name)
        rewritten = _replace_subtrees(expr, mapping)
        for ref in referenced_columns(rewritten):
            if ref.table is None and ref.name in names:
                continue
            raise PlanningError(
                "ORDER BY expression must appear in the SELECT list: " f"{expr}"
            )
        return rewritten

    @staticmethod
    def _output_name(item: SelectItem, index: int) -> str:
        if item.alias is not None:
            return item.alias
        if isinstance(item.expr, ColumnRef):
            return item.expr.name
        if isinstance(item.expr, FunctionCall):
            return item.expr.name
        return f"column{index + 1}"


# ---------------------------------------------------------------------------
# expression utilities
# ---------------------------------------------------------------------------


def _split_conjuncts(predicate: Expr | None) -> list[Expr]:
    """Flatten a WHERE clause into top-level AND conjuncts."""
    if predicate is None:
        return []
    if isinstance(predicate, BinaryOp) and predicate.op == "AND":
        return _split_conjuncts(predicate.left) + _split_conjuncts(predicate.right)
    return [predicate]


def _replace_subtrees(expr: Expr, mapping: list[tuple[Expr, Expr]]) -> Expr:
    """Structurally replace subtrees of ``expr`` (used for aggregate and
    group-key substitution)."""
    for original, replacement in mapping:
        if expr == original:
            return replacement
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            expr.op,
            _replace_subtrees(expr.left, mapping),
            _replace_subtrees(expr.right, mapping),
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, _replace_subtrees(expr.operand, mapping))
    if isinstance(expr, IsNull):
        return IsNull(_replace_subtrees(expr.operand, mapping), expr.negated)
    if isinstance(expr, Between):
        return Between(
            _replace_subtrees(expr.operand, mapping),
            _replace_subtrees(expr.low, mapping),
            _replace_subtrees(expr.high, mapping),
            expr.negated,
        )
    if isinstance(expr, InList):
        return InList(
            _replace_subtrees(expr.operand, mapping),
            tuple(_replace_subtrees(item, mapping) for item in expr.items),
            expr.negated,
        )
    if isinstance(expr, Like):
        return Like(
            _replace_subtrees(expr.operand, mapping),
            _replace_subtrees(expr.pattern, mapping),
            expr.negated,
        )
    if isinstance(expr, FunctionCall):
        return FunctionCall(
            expr.name,
            tuple(_replace_subtrees(a, mapping) for a in expr.args),
            expr.distinct,
        )
    if isinstance(expr, Coalesce):
        return Coalesce(tuple(_replace_subtrees(a, mapping) for a in expr.args))
    if isinstance(expr, Cast):
        return Cast(_replace_subtrees(expr.operand, mapping), expr.target)
    if isinstance(expr, AnyPredicate):
        return AnyPredicate(
            _replace_subtrees(expr.needle, mapping),
            _replace_subtrees(expr.haystack, mapping),
        )
    return expr
