"""Vectorized batch execution: column batches + batch expression kernels.

The morsel workers (thread lane *and* process lane) run the pushed-down
Scan -> Filter -> Project fragment batch-at-a-time in the MonetDB /
VectorWise style: the scan buffers :data:`BATCH_ROWS` heap rows into a
:class:`ColumnBatch`, predicates evaluate as **kernels** over a selection
vector (one Python-level loop per expression node per batch instead of
one closure call per node per row), and the projection emits a compacted
column-major output batch that the sort-key and grouping stages consume
without re-materializing rows first.

Equivalence contract (the whole point of the careful kernel design): a
batch program produces *exactly* the serial row-at-a-time results and
extraction counters --

* **Totals** match because every kernel evaluates precisely the rows the
  serial closure would have: predicates run over the survivors of the
  previous predicate (the selection vector is the cross-predicate
  short-circuit), and the lazy forms (``COALESCE``, ``IN``) refine the
  selection per argument instead of evaluating eagerly.  ``AND``/``OR``/
  ``BETWEEN``/``= ANY`` evaluate both sides unconditionally -- exactly
  what :func:`repro.rdbms.expressions.compile_expr` compiles them to.
* **Decode/hit splits** match because the per-worker extraction context
  is sized to hold at least one full batch (see
  ``_WorkerQueryScope.extraction_cache_capacity``): column-major
  evaluation touches each row's reservoir header once per kernel, and
  every kernel after the first hits the entries the first one decoded --
  the same decode-once-hit-rest pattern as row-major evaluation.

Only error *positions* may differ: a failing CAST in predicate three
aborts the batch before projections of earlier rows ran, where the
streaming serial pipeline had already projected them.  Failed queries
return no counters, so nothing observable diverges.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Sequence

from .errors import ExecutionError
from .expressions import (
    AnyPredicate,
    Between,
    BinaryOp,
    Cast,
    Coalesce,
    ColumnRef,
    Expr,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Resolver,
    UnaryOp,
    _arith,
    _compare,
    _kleene_and,
    _kleene_or,
    like_to_regex,
)
from .types import cast_value

Row = tuple

#: Rows per column batch.  Large enough to amortize the per-batch kernel
#: dispatch over ~1k rows, small enough that the extraction-context cache
#: sized to one batch stays tiny (see module docstring).
BATCH_ROWS = 1024

#: A compiled batch expression: ``(batch, selection) -> values``, where
#: ``selection`` is a list of row indices into the batch and the result
#: is positionally aligned with it.
BatchKernel = Callable[["ColumnBatch", list[int]], list[Any]]


class ColumnBatch:
    """A fixed-size batch of rows in columnar form with a validity mask.

    Two constructions cover the pipeline's two handoffs:

    * :meth:`from_rows` wraps the row tuples a heap scan produced;
      per-column lists are sliced out lazily (one pass per *referenced*
      column -- the NoBench table has dozens of physical columns and a
      query touches a handful).
    * :meth:`from_columns` builds directly from kernel outputs (the
      projected batches filters/projections emit); rows are only zipped
      back together at the operator boundary that needs tuples.

    ``valid`` is the validity mask: filters clear bits instead of moving
    rows, and :meth:`selection` is the index form kernels consume.
    """

    __slots__ = ("n_rows", "valid", "_rows", "_columns")

    def __init__(
        self,
        n_rows: int,
        rows: list[Row] | None,
        columns: dict[int, list[Any]],
    ):
        self.n_rows = n_rows
        self.valid = bytearray(b"\x01" * n_rows)
        self._rows = rows
        self._columns = columns

    @classmethod
    def from_rows(cls, rows: list[Row]) -> "ColumnBatch":
        return cls(len(rows), rows, {})

    @classmethod
    def from_columns(cls, columns: Sequence[list[Any]], n_rows: int) -> "ColumnBatch":
        return cls(n_rows, None, dict(enumerate(columns)))

    def column(self, position: int) -> list[Any]:
        """The full per-column list for ``position`` (lazily sliced)."""
        col = self._columns.get(position)
        if col is None:
            if self._rows is None:
                raise ExecutionError(
                    f"column {position} not materialized in this batch"
                )
            col = self._columns[position] = [row[position] for row in self._rows]
        return col

    def gather(self, position: int, selection: list[int]) -> list[Any]:
        """Column values for the selected rows, aligned with ``selection``."""
        col = self.column(position)
        return [col[i] for i in selection]

    def selection(self) -> list[int]:
        """Indices of currently-valid rows, in row order."""
        valid = self.valid
        return [i for i in range(self.n_rows) if valid[i]]

    def restrict(self, keep: Iterable[int]) -> None:
        """Clear the validity mask down to ``keep`` (a subset of valid)."""
        self.valid = bytearray(self.n_rows)
        for i in keep:
            self.valid[i] = 1

    def rows(self) -> list[Row]:
        """Valid rows as tuples, in row order."""
        if self._rows is not None:
            rows = self._rows
            valid = self.valid
            if len(rows) == self.n_rows and all(valid):
                return rows
            return [rows[i] for i in range(self.n_rows) if valid[i]]
        selection = self.selection()
        n_columns = len(self._columns)
        columns = [self._columns[p] for p in range(n_columns)]
        return [tuple(col[i] for col in columns) for i in selection]

    def __len__(self) -> int:
        return sum(self.valid)


# ---------------------------------------------------------------------------
# batch kernel compilation
# ---------------------------------------------------------------------------


def compile_batch(expr: Expr, resolver: Resolver) -> BatchKernel:
    """Compile an expression tree into a batch kernel.

    Mirrors :func:`repro.rdbms.expressions.compile_expr` node for node;
    see the module docstring for the equivalence argument.
    """
    if isinstance(expr, Literal):
        value = expr.value
        return lambda batch, sel: [value] * len(sel)

    if isinstance(expr, ColumnRef):
        position = resolver.resolve(expr)
        return lambda batch, sel: batch.gather(position, sel)

    if isinstance(expr, BinaryOp):
        left = compile_batch(expr.left, resolver)
        right = compile_batch(expr.right, resolver)
        op = expr.op
        if op == "AND":
            return lambda batch, sel: [
                _kleene_and(lv, rv)
                for lv, rv in zip(left(batch, sel), right(batch, sel))
            ]
        if op == "OR":
            return lambda batch, sel: [
                _kleene_or(lv, rv)
                for lv, rv in zip(left(batch, sel), right(batch, sel))
            ]
        if op in ("=", "<>", "!=", "<", "<=", ">", ">="):
            return lambda batch, sel: [
                _compare(op, lv, rv)
                for lv, rv in zip(left(batch, sel), right(batch, sel))
            ]
        return lambda batch, sel: [
            _arith(op, lv, rv)
            for lv, rv in zip(left(batch, sel), right(batch, sel))
        ]

    if isinstance(expr, UnaryOp):
        operand = compile_batch(expr.operand, resolver)
        if expr.op == "NOT":
            return lambda batch, sel: [
                None if v is None else not v for v in operand(batch, sel)
            ]
        if expr.op == "-":
            return lambda batch, sel: [
                None if v is None else -v for v in operand(batch, sel)
            ]
        if expr.op == "+":
            return operand
        raise ExecutionError(f"unknown unary operator {expr.op!r}")

    if isinstance(expr, IsNull):
        operand = compile_batch(expr.operand, resolver)
        if expr.negated:
            return lambda batch, sel: [
                v is not None for v in operand(batch, sel)
            ]
        return lambda batch, sel: [v is None for v in operand(batch, sel)]

    if isinstance(expr, Between):
        operand = compile_batch(expr.operand, resolver)
        low = compile_batch(expr.low, resolver)
        high = compile_batch(expr.high, resolver)
        negated = expr.negated

        def _between(batch: ColumnBatch, sel: list[int]) -> list[Any]:
            out = []
            for value, lo, hi in zip(
                operand(batch, sel), low(batch, sel), high(batch, sel)
            ):
                result = _kleene_and(
                    _compare(">=", value, lo), _compare("<=", value, hi)
                )
                if negated and result is not None:
                    result = not result
                out.append(result)
            return out

        return _between

    if isinstance(expr, InList):
        operand = compile_batch(expr.operand, resolver)
        items = [compile_batch(item, resolver) for item in expr.items]
        negated = expr.negated

        def _in(batch: ColumnBatch, sel: list[int]) -> list[Any]:
            values = operand(batch, sel)
            out: list[Any] = [None] * len(sel)
            saw_null = [False] * len(sel)
            # lazy item evaluation: each list item only runs for rows no
            # earlier item matched -- the per-row short-circuit, expressed
            # as selection refinement
            pending = [j for j, v in enumerate(values) if v is not None]
            for item in items:
                if not pending:
                    break
                candidates = item(batch, [sel[j] for j in pending])
                still_pending = []
                for j, candidate in zip(pending, candidates):
                    if candidate is None:
                        saw_null[j] = True
                        still_pending.append(j)
                    elif _compare("=", values[j], candidate) is True:
                        out[j] = not negated
                    else:
                        still_pending.append(j)
                pending = still_pending
            for j in pending:
                out[j] = None if saw_null[j] else negated
            return out

        return _in

    if isinstance(expr, Like):
        operand = compile_batch(expr.operand, resolver)
        negated = expr.negated
        if isinstance(expr.pattern, Literal) and isinstance(expr.pattern.value, str):
            regex = like_to_regex(expr.pattern.value)

            def _like_const(batch: ColumnBatch, sel: list[int]) -> list[Any]:
                out = []
                for value in operand(batch, sel):
                    if value is None:
                        out.append(None)
                        continue
                    matched = regex.match(str(value)) is not None
                    out.append(not matched if negated else matched)
                return out

            return _like_const
        pattern = compile_batch(expr.pattern, resolver)

        def _like(batch: ColumnBatch, sel: list[int]) -> list[Any]:
            out = []
            for value, pat in zip(operand(batch, sel), pattern(batch, sel)):
                if value is None or pat is None:
                    out.append(None)
                    continue
                matched = like_to_regex(str(pat)).match(str(value)) is not None
                out.append(not matched if negated else matched)
            return out

        return _like

    if isinstance(expr, Coalesce):
        compiled = [compile_batch(arg, resolver) for arg in expr.args]

        def _coalesce(batch: ColumnBatch, sel: list[int]) -> list[Any]:
            out: list[Any] = [None] * len(sel)
            # lazy argument evaluation (the dirty-column contract: the
            # extraction-UDF bridge argument must not run for rows whose
            # physical column already has the value)
            pending = list(range(len(sel)))
            for kernel in compiled:
                if not pending:
                    break
                values = kernel(batch, [sel[j] for j in pending])
                still_pending = []
                for j, value in zip(pending, values):
                    if value is None:
                        still_pending.append(j)
                    else:
                        out[j] = value
                pending = still_pending
            return out

        return _coalesce

    if isinstance(expr, Cast):
        operand = compile_batch(expr.operand, resolver)
        target = expr.target
        return lambda batch, sel: [
            cast_value(v, target) for v in operand(batch, sel)
        ]

    if isinstance(expr, AnyPredicate):
        needle = compile_batch(expr.needle, resolver)
        haystack = compile_batch(expr.haystack, resolver)

        def _any(batch: ColumnBatch, sel: list[int]) -> list[Any]:
            out = []
            for value, array in zip(needle(batch, sel), haystack(batch, sel)):
                if value is None or array is None:
                    out.append(None)
                elif not isinstance(array, (list, tuple)):
                    out.append(None)
                else:
                    out.append(
                        any(
                            _compare("=", value, element) is True
                            for element in array
                        )
                    )
            return out

        return _any

    if isinstance(expr, FunctionCall):
        implementation = resolver.resolve_function(expr.name)
        args = [compile_batch(arg, resolver) for arg in expr.args]
        fn = implementation.fn
        counters = implementation.counters if implementation.counts_as_udf else None

        def _call(batch: ColumnBatch, sel: list[int]) -> list[Any]:
            out = []
            if args:
                arg_columns = [kernel(batch, sel) for kernel in args]
                for packed in zip(*arg_columns):
                    if counters is not None:
                        counters.udf_calls += 1
                    out.append(fn(*packed))
            else:
                for _ in sel:
                    if counters is not None:
                        counters.udf_calls += 1
                    out.append(fn())
            return out

        return _call

    raise ExecutionError(f"cannot compile expression node {type(expr).__name__}")


# ---------------------------------------------------------------------------
# the scan-side batch pipeline
# ---------------------------------------------------------------------------


class BatchProgram:
    """Compiled Scan -> Filter -> Project fragment over column batches."""

    def __init__(
        self,
        resolver: Resolver,
        predicates: Sequence[Expr],
        projection: Sequence[Expr] | None,
        batch_rows: int = BATCH_ROWS,
    ):
        self.predicates = [compile_batch(p, resolver) for p in predicates]
        self.projection = (
            [compile_batch(e, resolver) for e in projection]
            if projection is not None
            else None
        )
        self.batch_rows = max(1, batch_rows)

    def run(self, rows: Iterable[Row]) -> Iterator[ColumnBatch]:
        """Yield output batches for a row stream.

        Projected batches are compacted (kernels ran over the survivors
        only, so every row is valid); unprojected batches keep the scan
        layout with the validity mask cleared down to the survivors --
        consumers iterate ``batch.selection()`` / ``batch.rows()``.
        """
        buffer: list[Row] = []
        append = buffer.append
        batch_rows = self.batch_rows
        for row in rows:
            append(row)
            if len(buffer) >= batch_rows:
                yield self._apply(buffer)
                buffer = []
                append = buffer.append
        if buffer:
            yield self._apply(buffer)

    def _apply(self, rows: list[Row]) -> ColumnBatch:
        batch = ColumnBatch.from_rows(rows)
        sel = list(range(batch.n_rows))
        for predicate in self.predicates:
            if not sel:
                break
            flags = predicate(batch, sel)
            sel = [i for i, flag in zip(sel, flags) if flag is True]
        batch.restrict(sel)
        if self.projection is None:
            return batch
        columns = [kernel(batch, sel) for kernel in self.projection]
        return ColumnBatch.from_columns(columns, len(sel))
