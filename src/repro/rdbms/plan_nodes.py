"""Physical plan operators: cost estimates, execution, and EXPLAIN text.

Each node carries

* ``output_columns`` -- the ``(qualifier, name)`` layout of its output rows,
* ``est_rows`` / ``est_row_bytes`` / ``est_cost`` -- the planner's estimates,
* ``rows(context)`` -- a generator executing the operator, and
* ``explain_lines()`` -- PostgreSQL-flavoured EXPLAIN output.

The operator inventory mirrors what the paper's Table 2 plans mention:
Seq Scan, Filter, Project, Nested Loop / Hash Join / Merge Join, Sort,
Unique, HashAggregate, GroupAggregate, and Limit.

Memory-overflow behaviour matters for the reproduction: Sort and the two
hash operators charge scratch space against the database's
:class:`~repro.rdbms.cost.DiskBudget` whenever their input exceeds
``work_mem`` -- this is the mechanism by which the EAV baseline dies with
"out of disk" on NoBench Q8/Q9/Q11 and MongoDB's client-side join dies on
Q11, exactly as reported in paper sections 6.4-6.5.
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass, replace
from typing import Any, Iterator, Sequence

from .cost import CostCounters, DiskBudget, ExtractionStats
from .errors import ExecutionError
from .executor import ExecutorPool, morsel_rows_for, partition_morsels
from .expressions import (
    CompiledExpr,
    Expr,
    FunctionCall,
    SchemaResolver,
    Star,
    compile_expr,
)
from .functions import AggregateFunction, FunctionRegistry
from .storage import HeapTable
from .vectorized import BATCH_ROWS, BatchProgram, ColumnBatch, compile_batch

Row = tuple
OutputColumns = list[tuple[str | None, str]]

#: Abstract cost units, PostgreSQL-style.
SEQ_PAGE_COST = 1.0
CPU_TUPLE_COST = 0.01
CPU_OPERATOR_COST = 0.0025
UDF_CALL_COST = 0.1
SORT_COST_FACTOR = 0.02


class ExecutionContext:
    """Runtime services handed to every operator."""

    def __init__(
        self,
        counters: CostCounters,
        functions: FunctionRegistry,
        disk: DiskBudget,
        work_mem_bytes: int,
        *,
        analyze: bool = False,
        use_extraction_cache: bool = True,
        extraction_hint: int | None = None,
    ):
        self.counters = counters
        self.functions = functions
        self.disk = disk
        self.work_mem_bytes = work_mem_bytes
        #: EXPLAIN ANALYZE mode: operators record per-node row counts and
        #: inclusive wall time into :attr:`node_stats` (keyed by ``id(node)``)
        self.analyze = analyze
        self.node_stats: dict[int, NodeStats] = {}
        #: per-query extraction counters, shared with the reservoir
        #: extractor's decode cache for the lifetime of this query
        self.extract_stats = ExtractionStats()
        #: whether the extractor may cache decoded headers for this query
        self.use_extraction_cache = use_extraction_cache
        #: rewriter hint: max distinct keys extracted per row (multi-key
        #: queries are the ones the decode cache pays off on)
        self.extraction_hint = extraction_hint
        #: parallel-execution bookkeeping (populated by the morsel
        #: operators' gather phase; see :meth:`record_parallel`)
        self.parallel_workers = 0
        self.parallel_morsels = 0
        #: which executor lane the parallel fragment ran on
        #: ("thread" | "process"); None until a parallel gather happens
        self.parallel_lane: str | None = None
        self._worker_stats: dict[int, dict[str, int]] = {}

    def record_parallel(self, workers: int, results: Sequence[Any]) -> None:
        """Fold per-morsel worker results into the query-wide totals.

        Runs single-threaded after the gather, so the shared counters and
        extraction stats stay exact without per-increment locking.  Also
        accumulates a per-OS-thread breakdown for EXPLAIN ANALYZE.
        """
        self.parallel_workers = max(self.parallel_workers, workers)
        self.parallel_morsels += len(results)
        for result in results:
            self.counters.accumulate(result.counters)
            self.extract_stats.merge(result.stats)
            bucket = self._worker_stats.setdefault(
                result.thread_ident,
                {
                    "rows": 0,
                    "morsels": 0,
                    "tuples_scanned": 0,
                    "udf_calls": 0,
                    "header_decodes": 0,
                    "header_cache_hits": 0,
                    "subdoc_decodes": 0,
                    "subdoc_cache_hits": 0,
                },
            )
            bucket["rows"] += result.rows
            bucket["morsels"] += 1
            bucket["tuples_scanned"] += result.counters.tuples_scanned
            bucket["udf_calls"] += result.counters.udf_calls
            bucket["header_decodes"] += result.stats.header_decodes
            bucket["header_cache_hits"] += result.stats.header_cache_hits
            bucket["subdoc_decodes"] += result.stats.subdoc_decodes
            bucket["subdoc_cache_hits"] += result.stats.subdoc_cache_hits

    def parallel_summary(self) -> dict[str, Any] | None:
        """Workers/morsels/per-worker counters, or None for serial plans."""
        if not self.parallel_workers:
            return None
        per_worker = [
            {"worker": index, **bucket}
            for index, bucket in enumerate(self._worker_stats.values())
        ]
        return {
            "workers": self.parallel_workers,
            "morsels": self.parallel_morsels,
            "lane": self.parallel_lane or "thread",
            "per_worker": per_worker,
        }


@dataclass
class NodeStats:
    """EXPLAIN ANALYZE measurements for one plan node."""

    rows: int = 0
    seconds: float = 0.0
    loops: int = 0


class PlanNode:
    """Base physical operator."""

    output_columns: OutputColumns
    est_rows: float = 0.0
    est_row_bytes: float = 48.0
    est_cost: float = 0.0

    def children(self) -> Sequence["PlanNode"]:
        return ()

    def rows(self, context: ExecutionContext) -> Iterator[Row]:
        raise NotImplementedError

    def run(self, context: ExecutionContext) -> Iterator[Row]:
        """Execute this node, recording EXPLAIN ANALYZE stats when asked.

        Internal plan edges call ``child.run(context)`` rather than
        ``child.rows(context)`` so instrumentation wraps every operator.
        Outside ANALYZE mode this is the raw row iterator -- no wrapper
        generator frame sits between operators on the normal path.
        """
        if not context.analyze:
            return self.rows(context)
        return self._run_instrumented(context)

    def _run_instrumented(self, context: ExecutionContext) -> Iterator[Row]:
        """ANALYZE-mode execution: per-node row counts and inclusive wall
        time (a parent's clock keeps running while it pulls from its
        children, matching PostgreSQL's actual-time semantics)."""
        stats = context.node_stats.get(id(self))
        if stats is None:
            stats = context.node_stats[id(self)] = NodeStats()
        stats.loops += 1
        iterator = self.rows(context)
        while True:
            started = time.perf_counter()
            try:
                row = next(iterator)
            except StopIteration:
                stats.seconds += time.perf_counter() - started
                return
            stats.seconds += time.perf_counter() - started
            stats.rows += 1
            yield row

    def node_label(self) -> str:
        raise NotImplementedError

    def explain_lines(self, depth: int = 0) -> list[str]:
        prefix = "" if depth == 0 else "  " * depth + "->  "
        line = f"{prefix}{self.node_label()}  (rows={int(self.est_rows)})"
        lines = [line]
        for child in self.children():
            lines.extend(child.explain_lines(depth + 1))
        return lines

    def explain(self) -> str:
        return "\n".join(self.explain_lines())

    def explain_analyze_lines(
        self, context: ExecutionContext, depth: int = 0
    ) -> list[str]:
        """EXPLAIN ANALYZE rendering: estimates plus measured actuals."""
        prefix = "" if depth == 0 else "  " * depth + "->  "
        stats = context.node_stats.get(id(self))
        if stats is None:
            actual = "(never executed)"
        else:
            actual = (
                f"(actual rows={stats.rows} loops={stats.loops} "
                f"time={stats.seconds * 1000:.3f} ms)"
            )
        lines = [
            f"{prefix}{self.node_label()}  (rows={int(self.est_rows)})  {actual}"
        ]
        for child in self.children():
            lines.extend(child.explain_analyze_lines(context, depth + 1))
        return lines

    def resolver(self, functions: FunctionRegistry) -> SchemaResolver:
        return SchemaResolver(self.output_columns, functions)

    def walk(self) -> Iterator["PlanNode"]:
        yield self
        for child in self.children():
            yield from child.walk()


class SeqScan(PlanNode):
    """Full scan of a heap table through the buffer pool."""

    def __init__(self, table: HeapTable, qualifier: str, est_rows: float | None = None):
        self.table = table
        self.qualifier = qualifier
        self.output_columns = [(qualifier, c.name) for c in table.schema]
        self.est_rows = float(len(table)) if est_rows is None else est_rows
        self.est_row_bytes = (
            table.total_bytes / max(1, len(table)) if len(table) else 48.0
        )
        self.est_cost = table.n_pages * SEQ_PAGE_COST + len(table) * CPU_TUPLE_COST

    def rows(self, context: ExecutionContext) -> Iterator[Row]:
        for _rid, row in self.table.scan():
            yield row

    def node_label(self) -> str:
        name = self.table.name
        if self.qualifier != name:
            return f"Seq Scan on {name} {self.qualifier}"
        return f"Seq Scan on {name}"


class Filter(PlanNode):
    """Row filter; keeps rows whose predicate evaluates to TRUE."""

    def __init__(self, child: PlanNode, predicate: Expr, selectivity: float):
        self.child = child
        self.predicate = predicate
        self.output_columns = list(child.output_columns)
        self.est_rows = max(1.0, child.est_rows * selectivity)
        self.est_row_bytes = child.est_row_bytes
        self.est_cost = child.est_cost + child.est_rows * CPU_OPERATOR_COST

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)

    def rows(self, context: ExecutionContext) -> Iterator[Row]:
        compiled = compile_expr(self.predicate, self.resolver(context.functions))
        for row in self.child.run(context):
            if compiled(row) is True:
                yield row

    def node_label(self) -> str:
        return f"Filter: {self.predicate}"

    def explain_lines(self, depth: int = 0) -> list[str]:
        # Postgres renders filters as an annotation of the child node; we
        # keep the filter visible but inline its child at the same depth.
        prefix = "" if depth == 0 else "  " * depth + "->  "
        lines = [f"{prefix}{self.node_label()}  (rows={int(self.est_rows)})"]
        lines.extend(self.child.explain_lines(depth + 1))
        return lines


class Project(PlanNode):
    """Computes the SELECT list."""

    def __init__(
        self,
        child: PlanNode,
        expressions: Sequence[Expr],
        names: Sequence[str],
    ):
        if len(expressions) != len(names):
            raise ExecutionError("projection arity mismatch")
        self.child = child
        self.expressions = list(expressions)
        self.output_columns = [(None, name) for name in names]
        self.est_rows = child.est_rows
        self.est_row_bytes = max(16.0, 16.0 * len(expressions))
        self.est_cost = child.est_cost + child.est_rows * CPU_OPERATOR_COST * max(
            1, len(expressions)
        )

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)

    def rows(self, context: ExecutionContext) -> Iterator[Row]:
        resolver = self.child.resolver(context.functions)
        compiled = [compile_expr(e, resolver) for e in self.expressions]
        for row in self.child.run(context):
            yield tuple(fn(row) for fn in compiled)

    def node_label(self) -> str:
        rendered = ", ".join(str(e) for e in self.expressions)
        if len(rendered) > 160:
            rendered = rendered[:157] + "..."
        return f"Project: {rendered}"


class Limit(PlanNode):
    def __init__(self, child: PlanNode, limit: int):
        self.child = child
        self.limit = limit
        self.output_columns = list(child.output_columns)
        self.est_rows = min(child.est_rows, float(limit))
        self.est_row_bytes = child.est_row_bytes
        self.est_cost = child.est_cost

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)

    def rows(self, context: ExecutionContext) -> Iterator[Row]:
        produced = 0
        for row in self.child.run(context):
            if produced >= self.limit:
                return
            produced += 1
            yield row

    def node_label(self) -> str:
        return f"Limit {self.limit}"


def _encode_sort_value(value: Any) -> tuple:
    """Total-order encoding of one sort-key value.

    Values of mixed types are bucketed by a type rank first so ``sorted``
    never raises (a type-bracketed collation); containers are encoded
    recursively so arrays holding NULLs or mixed types compare safely too.
    """
    if isinstance(value, bool):
        return (1, "bool", int(value))
    if isinstance(value, (int, float)):
        return (0, "num", float(value))
    if isinstance(value, str):
        return (2, "str", value)
    if isinstance(value, bytes):
        return (3, "bytes", value)
    if isinstance(value, (list, tuple)):
        return (
            4,
            "array",
            tuple(
                (5, "null", 0) if element is None else _encode_sort_value(element)
                for element in value
            ),
        )
    return (6, type(value).__name__, repr(value))


def sort_rows(
    buffered: list[Row], compiled_keys: list[tuple[CompiledExpr, bool]]
) -> None:
    """In-place multi-key sort with explicit NULL placement.

    NULLs sort *last* ascending and *first* descending (PostgreSQL's
    defaults).  One stable pass per key, applied last-key-first, gives
    per-key direction without any comparison-inverting wrapper -- the NULL
    flag leads the key tuple, so ``reverse=True`` flips it along with the
    value.
    """
    for fn, ascending in reversed(compiled_keys):

        def key(row: Row, fn=fn) -> tuple:
            value = fn(row)
            if value is None:
                return (1, ())
            return (0, _encode_sort_value(value))

        buffered.sort(key=key, reverse=not ascending)


class Sort(PlanNode):
    """Full in-memory sort; charges scratch space when over work_mem."""

    def __init__(self, child: PlanNode, keys: Sequence[tuple[Expr, bool]]):
        self.child = child
        self.keys = list(keys)
        self.output_columns = list(child.output_columns)
        self.est_rows = child.est_rows
        self.est_row_bytes = child.est_row_bytes
        n = max(2.0, child.est_rows)
        import math

        self.est_cost = child.est_cost + SORT_COST_FACTOR * n * math.log2(n)

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)

    def rows(self, context: ExecutionContext) -> Iterator[Row]:
        resolver = self.child.resolver(context.functions)
        compiled = [(compile_expr(e, resolver), asc) for e, asc in self.keys]
        buffered = list(self.child.run(context))
        spilled = charge_spill(
            context, len(buffered), self.child.est_row_bytes
        )
        sort_rows(buffered, compiled)
        release_spill(context, spilled)
        yield from buffered

    def node_label(self) -> str:
        rendered = ", ".join(
            f"{expr}{'' if asc else ' DESC'}" for expr, asc in self.keys
        )
        return f"Sort  Key: {rendered}"


def charge_spill(context: ExecutionContext, n_rows: int, row_bytes: float) -> int:
    """Charge scratch space for a buffered input exceeding work_mem.

    Returns the number of bytes charged (0 when the input fit in memory) so
    the caller can release them when the operator finishes.
    """
    total = int(n_rows * max(row_bytes, 16.0))
    if total <= context.work_mem_bytes:
        return 0
    spill = total - context.work_mem_bytes
    context.counters.spill_bytes += spill
    context.disk.charge(spill)
    return spill


def release_spill(context: ExecutionContext, spilled: int) -> None:
    if spilled:
        context.disk.release(spilled)


class Unique(PlanNode):
    """Removes duplicates from *sorted* input (pairs with Sort)."""

    def __init__(self, child: PlanNode):
        self.child = child
        self.output_columns = list(child.output_columns)
        self.est_rows = max(1.0, child.est_rows * 0.9)
        self.est_row_bytes = child.est_row_bytes
        self.est_cost = child.est_cost + child.est_rows * CPU_OPERATOR_COST

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)

    def rows(self, context: ExecutionContext) -> Iterator[Row]:
        previous: Row | None = None
        first = True
        for row in self.child.run(context):
            if first or row != previous:
                yield row
            previous = row
            first = False

    def node_label(self) -> str:
        return "Unique"


@dataclass
class AggSpec:
    """One aggregate in the SELECT/HAVING list."""

    function: AggregateFunction
    argument: Expr | None  # None for count(*)
    distinct: bool
    output_name: str


class _AggregateBase(PlanNode):
    """Shared machinery for hash and sorted grouping."""

    def __init__(
        self,
        child: PlanNode,
        group_exprs: Sequence[Expr],
        aggregates: Sequence[AggSpec],
        est_groups: float,
    ):
        self.child = child
        self.group_exprs = list(group_exprs)
        self.aggregates = list(aggregates)
        self.output_columns = [
            (None, f"__key{i}") for i in range(len(self.group_exprs))
        ] + [(None, spec.output_name) for spec in self.aggregates]
        self.est_rows = max(1.0, est_groups)
        self.est_row_bytes = 16.0 * max(1, len(self.output_columns))
        self.est_cost = child.est_cost + child.est_rows * CPU_OPERATOR_COST * (
            len(self.group_exprs) + len(self.aggregates) + 1
        )

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)

    def _compile(self, context: ExecutionContext):
        resolver = self.child.resolver(context.functions)
        group_fns = [compile_expr(e, resolver) for e in self.group_exprs]
        agg_fns: list[CompiledExpr | None] = []
        for spec in self.aggregates:
            if spec.argument is None or isinstance(spec.argument, Star):
                agg_fns.append(None)
            else:
                agg_fns.append(compile_expr(spec.argument, resolver))
        return group_fns, agg_fns

    def _finalise(self, key: tuple, states: list[Any]) -> Row:
        finals = [
            spec.function.final(state)
            for spec, state in zip(self.aggregates, states)
        ]
        return key + tuple(finals)

    def _step_all(self, specs_states, agg_fns, row, distinct_seen) -> None:
        for index, (spec, _state) in enumerate(specs_states):
            fn = agg_fns[index]
            if fn is None:
                value: Any = 1  # count(*) counts every row
            else:
                value = fn(row)
                if value is None and spec.function.skip_nulls:
                    continue
            if spec.distinct:
                seen = distinct_seen[index]
                if value in seen:
                    continue
                seen.add(value)
            specs_states[index] = (spec, spec.function.step(specs_states[index][1], value))


class HashAggregate(_AggregateBase):
    """Hash-based grouping; also implements hash DISTINCT when it has no
    aggregate specs (each group key is the full distinct row)."""

    def rows(self, context: ExecutionContext) -> Iterator[Row]:
        group_fns, agg_fns = self._compile(context)
        groups: dict[tuple, list] = {}
        distinct_sets: dict[tuple, list[set]] = {}
        n_buffered = 0
        for row in self.child.run(context):
            key = tuple(fn(row) for fn in group_fns)
            if key not in groups:
                groups[key] = [
                    (spec, spec.function.init()) for spec in self.aggregates
                ]
                distinct_sets[key] = [set() for _ in self.aggregates]
                n_buffered += 1
            self._step_all(groups[key], agg_fns, row, distinct_sets[key])
        if not groups and not self.group_exprs:
            # SQL: a global aggregate always yields exactly one row.
            states = [(spec, spec.function.init()) for spec in self.aggregates]
            yield self._finalise((), [state for _spec, state in states])
            return
        spilled = charge_spill(context, n_buffered, self.est_row_bytes)
        try:
            for key, specs_states in groups.items():
                yield self._finalise(key, [state for _spec, state in specs_states])
        finally:
            release_spill(context, spilled)

    def node_label(self) -> str:
        return "HashAggregate"


class GroupAggregate(_AggregateBase):
    """Sort-based grouping over input already sorted on the group keys."""

    def rows(self, context: ExecutionContext) -> Iterator[Row]:
        group_fns, agg_fns = self._compile(context)
        current_key: tuple | None = None
        states: list | None = None
        distinct_seen: list[set] = []
        for row in self.child.run(context):
            key = tuple(fn(row) for fn in group_fns)
            if key != current_key:
                if states is not None:
                    yield self._finalise(
                        current_key, [state for _spec, state in states]
                    )
                current_key = key
                states = [(spec, spec.function.init()) for spec in self.aggregates]
                distinct_seen = [set() for _ in self.aggregates]
            self._step_all(states, agg_fns, row, distinct_seen)
        if states is not None:
            yield self._finalise(current_key, [state for _spec, state in states])
        elif not self.group_exprs:
            empty = [(spec, spec.function.init()) for spec in self.aggregates]
            yield self._finalise((), [state for _spec, state in empty])

    def node_label(self) -> str:
        return "GroupAggregate"


class NestedLoopJoin(PlanNode):
    """Materialised-inner nested loop with optional join condition."""

    def __init__(
        self,
        outer: PlanNode,
        inner: PlanNode,
        condition: Expr | None,
        est_rows: float,
    ):
        self.outer = outer
        self.inner = inner
        self.condition = condition
        self.output_columns = list(outer.output_columns) + list(inner.output_columns)
        self.est_rows = max(1.0, est_rows)
        self.est_row_bytes = outer.est_row_bytes + inner.est_row_bytes
        self.est_cost = (
            outer.est_cost
            + inner.est_cost
            + outer.est_rows * inner.est_rows * CPU_OPERATOR_COST
        )

    def children(self) -> Sequence[PlanNode]:
        return (self.outer, self.inner)

    def rows(self, context: ExecutionContext) -> Iterator[Row]:
        inner_rows = list(self.inner.run(context))
        spilled = charge_spill(context, len(inner_rows), self.inner.est_row_bytes)
        try:
            compiled = (
                compile_expr(self.condition, self.resolver(context.functions))
                if self.condition is not None
                else None
            )
            for outer_row in self.outer.run(context):
                for inner_row in inner_rows:
                    combined = outer_row + inner_row
                    if compiled is None or compiled(combined) is True:
                        yield combined
        finally:
            release_spill(context, spilled)

    def node_label(self) -> str:
        return "Nested Loop"


class HashJoin(PlanNode):
    """Equi-join building a hash table on the inner input."""

    def __init__(
        self,
        outer: PlanNode,
        inner: PlanNode,
        outer_keys: Sequence[Expr],
        inner_keys: Sequence[Expr],
        est_rows: float,
        residual: Expr | None = None,
    ):
        self.outer = outer
        self.inner = inner
        self.outer_keys = list(outer_keys)
        self.inner_keys = list(inner_keys)
        self.residual = residual
        self.output_columns = list(outer.output_columns) + list(inner.output_columns)
        self.est_rows = max(1.0, est_rows)
        self.est_row_bytes = outer.est_row_bytes + inner.est_row_bytes
        self.est_cost = (
            outer.est_cost
            + inner.est_cost
            + (outer.est_rows + inner.est_rows) * CPU_OPERATOR_COST * 2
        )

    def children(self) -> Sequence[PlanNode]:
        return (self.outer, self.inner)

    def rows(self, context: ExecutionContext) -> Iterator[Row]:
        inner_resolver = self.inner.resolver(context.functions)
        inner_key_fns = [compile_expr(e, inner_resolver) for e in self.inner_keys]
        table: dict[tuple, list[Row]] = {}
        n_inner = 0
        for row in self.inner.run(context):
            key = tuple(fn(row) for fn in inner_key_fns)
            if any(part is None for part in key):
                continue
            table.setdefault(key, []).append(row)
            n_inner += 1
        spilled = charge_spill(context, n_inner, self.inner.est_row_bytes)
        try:
            outer_resolver = self.outer.resolver(context.functions)
            outer_key_fns = [compile_expr(e, outer_resolver) for e in self.outer_keys]
            residual_fn = (
                compile_expr(self.residual, self.resolver(context.functions))
                if self.residual is not None
                else None
            )
            for outer_row in self.outer.run(context):
                key = tuple(fn(outer_row) for fn in outer_key_fns)
                if any(part is None for part in key):
                    continue
                for inner_row in table.get(key, ()):
                    combined = outer_row + inner_row
                    if residual_fn is None or residual_fn(combined) is True:
                        yield combined
        finally:
            release_spill(context, spilled)

    def node_label(self) -> str:
        condition = " AND ".join(
            f"{o} = {i}" for o, i in zip(self.outer_keys, self.inner_keys)
        )
        return f"Hash Join  Cond: {condition}"


class MergeJoin(PlanNode):
    """Sort-merge equi-join (sorts both inputs on the join keys)."""

    def __init__(
        self,
        outer: PlanNode,
        inner: PlanNode,
        outer_keys: Sequence[Expr],
        inner_keys: Sequence[Expr],
        est_rows: float,
        residual: Expr | None = None,
    ):
        self.outer = Sort(outer, [(k, True) for k in outer_keys])
        self.inner = Sort(inner, [(k, True) for k in inner_keys])
        self.outer_keys = list(outer_keys)
        self.inner_keys = list(inner_keys)
        self.residual = residual
        self.output_columns = list(outer.output_columns) + list(inner.output_columns)
        self.est_rows = max(1.0, est_rows)
        self.est_row_bytes = outer.est_row_bytes + inner.est_row_bytes
        self.est_cost = (
            self.outer.est_cost
            + self.inner.est_cost
            + (outer.est_rows + inner.est_rows) * CPU_OPERATOR_COST
        )

    def children(self) -> Sequence[PlanNode]:
        return (self.outer, self.inner)

    def rows(self, context: ExecutionContext) -> Iterator[Row]:
        outer_resolver = self.outer.resolver(context.functions)
        inner_resolver = self.inner.resolver(context.functions)
        outer_key_fns = [compile_expr(e, outer_resolver) for e in self.outer_keys]
        inner_key_fns = [compile_expr(e, inner_resolver) for e in self.inner_keys]
        residual_fn = (
            compile_expr(self.residual, self.resolver(context.functions))
            if self.residual is not None
            else None
        )

        def key_of(row: Row, fns) -> tuple:
            return tuple(fn(row) for fn in fns)

        outer_rows = [
            r for r in self.outer.run(context)
            if not any(v is None for v in key_of(r, outer_key_fns))
        ]
        inner_rows = [
            r for r in self.inner.run(context)
            if not any(v is None for v in key_of(r, inner_key_fns))
        ]
        i = j = 0
        while i < len(outer_rows) and j < len(inner_rows):
            outer_key = key_of(outer_rows[i], outer_key_fns)
            inner_key = key_of(inner_rows[j], inner_key_fns)
            cmp = _compare_keys(outer_key, inner_key)
            if cmp < 0:
                i += 1
            elif cmp > 0:
                j += 1
            else:
                # gather the matching runs on both sides
                i_end = i
                while (
                    i_end < len(outer_rows)
                    and key_of(outer_rows[i_end], outer_key_fns) == outer_key
                ):
                    i_end += 1
                j_end = j
                while (
                    j_end < len(inner_rows)
                    and key_of(inner_rows[j_end], inner_key_fns) == inner_key
                ):
                    j_end += 1
                for oi in range(i, i_end):
                    for ji in range(j, j_end):
                        combined = outer_rows[oi] + inner_rows[ji]
                        if residual_fn is None or residual_fn(combined) is True:
                            yield combined
                i, j = i_end, j_end

    def node_label(self) -> str:
        condition = " AND ".join(
            f"{o} = {i}" for o, i in zip(self.outer_keys, self.inner_keys)
        )
        return f"Merge Join  Cond: {condition}"


def _type_rank(value: Any) -> int:
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 0
    return 2


def _compare_keys(left: tuple, right: tuple) -> int:
    for lv, rv in zip(left, right):
        lr, rr = _type_rank(lv), _type_rank(rv)
        if lr != rr:
            return -1 if lr < rr else 1
        if lv == rv:
            continue
        try:
            return -1 if lv < rv else 1
        except TypeError:
            ls, rs = str(lv), str(rv)
            if ls == rs:
                continue
            return -1 if ls < rs else 1
    return 0


# ---------------------------------------------------------------------------
# morsel-driven parallel operators
# ---------------------------------------------------------------------------


class _WorkerFunctions:
    """Function-registry facade that hands out per-worker counter bindings.

    Compiled UDF closures increment ``implementation.counters`` directly,
    which is racy across threads (``obj.attr += 1`` is not atomic); the
    facade rebinds each counted scalar to the worker's private bundle so
    increments stay single-threaded and the gather-time fold is exact.
    """

    def __init__(self, functions: FunctionRegistry, counters: CostCounters):
        self._functions = functions
        self._counters = counters

    def scalar(self, name: str):
        implementation = self._functions.scalar(name)
        if implementation.counts_as_udf and implementation.counters is not None:
            return replace(implementation, counters=self._counters)
        return implementation

    def has_scalar(self, name: str) -> bool:
        return self._functions.has_scalar(name)

    def aggregate(self, name: str):
        return self._functions.aggregate(name)

    def is_aggregate(self, name: str) -> bool:
        return self._functions.is_aggregate(name)


class _WorkerQueryScope:
    """The minimal execution-context surface query listeners read.

    Each morsel task passes one of these to ``FunctionRegistry.begin_query``
    so the reservoir extractor installs a *per-worker* extraction context
    (its context stack is a ``threading.local``) whose decode counters land
    in the task's private :class:`ExtractionStats`.
    """

    def __init__(
        self,
        stats: ExtractionStats,
        use_extraction_cache: bool,
        extraction_hint: int | None,
        batch_rows: int = BATCH_ROWS,
    ):
        self.extract_stats = stats
        self.use_extraction_cache = use_extraction_cache
        self.extraction_hint = extraction_hint
        # Column-major kernels touch each batch row once per kernel, so
        # the decode cache must hold a few full batches of headers for
        # the decode/hit split to match row-major evaluation exactly
        # (see the repro.rdbms.vectorized module docstring).
        self.extraction_cache_capacity = max(256, 4 * batch_rows)


@dataclass
class _MorselResult:
    """One morsel task's payload plus its private counter bundles."""

    index: int
    payload: Any
    rows: int  # rows surviving the scan + filter stage
    counters: CostCounters
    stats: ExtractionStats
    thread_ident: int


class ParallelScan(PlanNode):
    """Morsel-parallel Seq Scan with pushed-down filters and projection.

    Each worker installs its own extraction context, compiles the pushed
    predicates (and, when folded, the projection) against its private UDF
    counters, and scans one contiguous rid morsel.  The gather walks
    results in morsel order -- rids are allocated in append order, so the
    output row order is identical to the serial Filter/Project chain this
    node replaces.
    """

    def __init__(
        self,
        table: HeapTable,
        qualifier: str,
        predicates: Sequence[Expr],
        projection: tuple[Sequence[Expr], Sequence[str]] | None,
        workers: int,
        pool: ExecutorPool,
        template: PlanNode,
        lane: str = "thread",
        batch_rows: int = BATCH_ROWS,
    ):
        self.table = table
        self.qualifier = qualifier
        self.predicates = list(predicates)
        self.projection = (
            (list(projection[0]), list(projection[1]))
            if projection is not None
            else None
        )
        self.workers = workers
        self.pool = pool
        #: "thread" (shared-memory morsel workers) or "process" (pickled
        #: tasks over a spawn pool); the planner picks per fragment
        self.lane = lane
        self.batch_rows = batch_rows
        self.scan_columns: OutputColumns = [
            (qualifier, c.name) for c in table.schema
        ]
        if self.projection is not None:
            self.output_columns = [(None, name) for name in self.projection[1]]
        else:
            self.output_columns = list(self.scan_columns)
        self.est_rows = template.est_rows
        self.est_row_bytes = template.est_row_bytes
        self.est_cost = template.est_cost

    # -- worker pipeline -----------------------------------------------------

    def _input_columns(self) -> OutputColumns:
        """Row layout seen by post-processing stages (sort keys, grouping)."""
        if self.projection is not None:
            return [(None, name) for name in self.projection[1]]
        return self.scan_columns

    def _make_task(self, context: ExecutionContext, post=None):
        table = self.table
        predicates = self.predicates
        projection = self.projection
        scan_columns = self.scan_columns
        functions = context.functions
        use_cache = context.use_extraction_cache
        hint = context.extraction_hint
        batch_rows = self.batch_rows

        def run_morsel(morsel):
            counters = CostCounters()
            stats = ExtractionStats()
            worker_functions = _WorkerFunctions(functions, counters)
            scope = _WorkerQueryScope(stats, use_cache, hint, batch_rows=batch_rows)
            functions.begin_query(scope)
            try:
                resolver = SchemaResolver(scan_columns, worker_functions)
                program = BatchProgram(
                    resolver,
                    predicates,
                    projection[0] if projection is not None else None,
                    batch_rows=batch_rows,
                )
                scan = table.scan_range(
                    morsel.start_rid, morsel.end_rid, counters=counters
                )
                batches = list(program.run(row for _rid, row in scan))
                n_rows = sum(len(batch) for batch in batches)
                if post is None:
                    payload = [row for batch in batches for row in batch.rows()]
                else:
                    payload = post(batches, worker_functions)
            finally:
                functions.end_query(scope)
            return _MorselResult(
                morsel.index,
                payload,
                n_rows,
                counters,
                stats,
                threading.get_ident(),
            )

        return run_morsel

    # -- remote (process-lane) task building ---------------------------------

    def _pushed_expressions(self) -> list[Expr]:
        """Every expression a worker evaluates (for remote function specs)."""
        pushed = list(self.predicates)
        if self.projection is not None:
            pushed.extend(self.projection[0])
        return pushed

    def _remote_function_specs(
        self, functions: FunctionRegistry
    ) -> tuple[tuple[str, str, str, str], ...]:
        """``(name, kind, target, return_type)`` for every called scalar.

        The planner only routes a fragment to the process lane when every
        scalar carries a remote spec, so a missing one here is a protocol
        bug, not a user error.
        """
        specs: dict[str, tuple[str, str, str, str]] = {}
        for expr in self._pushed_expressions():
            for node in expr.walk():
                if not isinstance(node, FunctionCall):
                    continue
                name = node.name.lower()
                if name in specs or not functions.has_scalar(name):
                    continue
                implementation = functions.scalar(name)
                remote = implementation.remote_spec
                if remote is None:
                    raise ExecutionError(
                        f"function {name}() has no remote spec; the planner "
                        "must not route it to the process lane",
                        context="process-lane task build",
                    )
                specs[name] = (
                    name,
                    remote[0],
                    remote[1],
                    implementation.return_type.value,
                )
        return tuple(specs.values())

    def _gather_process(
        self, context: ExecutionContext, remote_post
    ) -> list[_MorselResult]:
        from .process_worker import ProcessTask, run_process_task

        table = self.table
        pool = self.pool
        functions = context.functions
        table_path = pool.spill.path_for(
            "table", (table.name, table.version), table.snapshot_state
        )
        specs = self._remote_function_specs(functions)
        catalog_path = None
        if any(kind == "sinew_extract" for _n, kind, _t, _rt in specs):
            extractor = functions.remote_catalog
            catalog_path = pool.spill.path_for(
                "catalog", extractor.remote_token(), extractor.remote_payload
            )
        n_rids = table.allocated_rids
        morsels = partition_morsels(n_rids, morsel_rows_for(n_rids, self.workers))
        projection = (
            (tuple(self.projection[0]), tuple(self.projection[1]))
            if self.projection is not None
            else None
        )
        tasks = [
            ProcessTask(
                index=morsel.index,
                start_rid=morsel.start_rid,
                end_rid=morsel.end_rid,
                table_path=table_path,
                scan_columns=tuple(self.scan_columns),
                predicates=tuple(self.predicates),
                projection=projection,
                post=remote_post,
                function_specs=specs,
                catalog_path=catalog_path,
                use_cache=context.use_extraction_cache,
                hint=context.extraction_hint,
                batch_rows=self.batch_rows,
            )
            for morsel in morsels
        ]
        return pool.map_tasks(run_process_task, tasks)

    def _gather(
        self, context: ExecutionContext, post=None, remote_post=None
    ) -> list[_MorselResult]:
        if self.lane == "process":
            results = self._gather_process(context, remote_post)
        else:
            morsels = partition_morsels(self.table.allocated_rids)
            results = self.pool.map_morsels(self._make_task(context, post), morsels)
        context.record_parallel(self.workers, results)
        context.parallel_lane = self.lane
        return results

    def rows(self, context: ExecutionContext) -> Iterator[Row]:
        for result in self._gather(context):
            yield from result.payload

    # -- explain -------------------------------------------------------------

    def node_label(self) -> str:
        name = self.table.name
        scan = f"Parallel Seq Scan on {name}"
        if self.qualifier != name:
            scan = f"{scan} {self.qualifier}"
        return f"{scan}  (workers={self.workers}){self._lane_label()}"

    def _lane_label(self) -> str:
        return f" [lane={self.lane} batch={self.batch_rows}]"

    def _annotation_lines(self, depth: int) -> list[str]:
        pad = "  " * (depth + 2)
        lines = [f"{pad}Filter: {predicate}" for predicate in self.predicates]
        if self.projection is not None:
            rendered = ", ".join(str(e) for e in self.projection[0])
            if len(rendered) > 160:
                rendered = rendered[:157] + "..."
            lines.append(f"{pad}Project: {rendered}")
        return lines

    def explain_lines(self, depth: int = 0) -> list[str]:
        lines = super().explain_lines(depth)
        lines.extend(self._annotation_lines(depth))
        return lines

    def explain_analyze_lines(
        self, context: ExecutionContext, depth: int = 0
    ) -> list[str]:
        lines = super().explain_analyze_lines(context, depth)
        lines.extend(self._annotation_lines(depth))
        return lines


def _null_aware_encode(value: Any) -> tuple:
    """Sort-key encoding matching :func:`sort_rows` NULL placement."""
    return (1, ()) if value is None else (0, _encode_sort_value(value))


class _RunKey:
    """Comparison wrapper for k-way merging per-worker sorted runs.

    Encodes the multi-key NULL placement of :func:`sort_rows` (NULLs last
    ascending, first descending) as one total order, which is what
    ``heapq.merge`` and single-pass ``list.sort`` need to reproduce the
    serial multi-pass stable sort exactly.
    """

    __slots__ = ("parts",)

    def __init__(self, parts: tuple):
        #: tuple of ``(encoded_value, ascending)`` pairs, one per sort key
        self.parts = parts

    def __lt__(self, other: "_RunKey") -> bool:
        for (left, ascending), (right, _asc) in zip(self.parts, other.parts):
            if left == right:
                continue
            return (left < right) if ascending else (right < left)
        return False

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _RunKey) and self.parts == other.parts


def batch_sort_run(
    batches: Sequence[ColumnBatch],
    worker_functions: "_WorkerFunctions",
    input_columns: OutputColumns,
    keys: Sequence[tuple[Expr, bool]],
) -> list[tuple[_RunKey, Row]]:
    """One worker's sorted run, key columns evaluated batch-at-a-time.

    Shared between the thread-lane post closure and the process worker
    (:mod:`repro.rdbms.process_worker`), so both lanes decorate and sort
    with identical key encoding and tie behaviour.
    """
    resolver = SchemaResolver(input_columns, worker_functions)
    compiled = [(compile_batch(expr, resolver), asc) for expr, asc in keys]
    decorated: list[tuple[_RunKey, Row]] = []
    for batch in batches:
        sel = batch.selection()
        if not sel:
            continue
        key_columns = [(kernel(batch, sel), asc) for kernel, asc in compiled]
        for offset, row in enumerate(batch.rows()):
            decorated.append(
                (
                    _RunKey(
                        tuple(
                            (_null_aware_encode(column[offset]), asc)
                            for column, asc in key_columns
                        )
                    ),
                    row,
                )
            )
    decorated.sort(key=lambda pair: pair[0])
    return decorated


def batch_aggregate_run(
    batches: Sequence[ColumnBatch],
    worker_functions: "_WorkerFunctions",
    input_columns: OutputColumns,
    group_exprs: Sequence[Expr],
    aggregates: Sequence["AggSpec"],
) -> dict[tuple, list]:
    """One worker's partial aggregation states, grouped in scan order.

    Group keys and aggregate arguments evaluate as batch kernels over
    each output batch's survivors; the per-row state transitions are the
    same init/step machinery the serial HashAggregate runs.  Shared with
    the process worker, like :func:`batch_sort_run`.
    """
    resolver = SchemaResolver(input_columns, worker_functions)
    group_kernels = [compile_batch(e, resolver) for e in group_exprs]
    agg_kernels = [
        None
        if spec.argument is None or isinstance(spec.argument, Star)
        else compile_batch(spec.argument, resolver)
        for spec in aggregates
    ]
    groups: dict[tuple, list] = {}
    for batch in batches:
        sel = batch.selection()
        if not sel:
            continue
        key_columns = [kernel(batch, sel) for kernel in group_kernels]
        value_columns = [
            None if kernel is None else kernel(batch, sel)
            for kernel in agg_kernels
        ]
        for offset in range(len(sel)):
            key = tuple(column[offset] for column in key_columns)
            states = groups.get(key)
            if states is None:
                states = groups[key] = [
                    spec.function.init() for spec in aggregates
                ]
            for index, spec in enumerate(aggregates):
                column = value_columns[index]
                if column is None:
                    value: Any = 1  # count(*) counts every row
                else:
                    value = column[offset]
                    if value is None and spec.function.skip_nulls:
                        continue
                states[index] = spec.function.step(states[index], value)
    return groups


class ParallelSort(ParallelScan):
    """Per-worker sorted runs over morsels + stable k-way merge.

    Workers evaluate the sort keys once per surviving row (inside their
    own extraction context), sort their run, and the gather merges runs in
    morsel order.  ``heapq.merge`` is stable across its inputs in argument
    order, so ties come out in scan order -- exactly the serial stable
    multi-pass sort's output.
    """

    def __init__(
        self,
        table: HeapTable,
        qualifier: str,
        predicates: Sequence[Expr],
        projection: tuple[Sequence[Expr], Sequence[str]] | None,
        workers: int,
        pool: ExecutorPool,
        keys: Sequence[tuple[Expr, bool]],
        template: PlanNode,
        lane: str = "thread",
        batch_rows: int = BATCH_ROWS,
    ):
        super().__init__(
            table,
            qualifier,
            predicates,
            projection,
            workers,
            pool,
            template,
            lane=lane,
            batch_rows=batch_rows,
        )
        self.keys = list(keys)
        self.output_columns = list(template.output_columns)

    def _pushed_expressions(self) -> list[Expr]:
        pushed = super()._pushed_expressions()
        pushed.extend(expr for expr, _asc in self.keys)
        return pushed

    def rows(self, context: ExecutionContext) -> Iterator[Row]:
        input_columns = self._input_columns()
        keys = self.keys

        def post(batches, worker_functions):
            return batch_sort_run(batches, worker_functions, input_columns, keys)

        results = self._gather(context, post, remote_post=("sort", tuple(keys)))
        runs = [result.payload for result in results if result.payload]
        total_rows = sum(len(run) for run in runs)
        spilled = charge_spill(context, total_rows, self.est_row_bytes)
        try:
            for _key, row in heapq.merge(*runs, key=lambda pair: pair[0]):
                yield row
        finally:
            release_spill(context, spilled)

    def node_label(self) -> str:
        rendered = ", ".join(
            f"{expr}{'' if asc else ' DESC'}" for expr, asc in self.keys
        )
        return (
            f"Parallel Sort  Key: {rendered}  "
            f"(workers={self.workers}){self._lane_label()}"
        )


class ParallelHashAggregate(ParallelScan):
    """Per-worker partial aggregation over morsels, merged at gather.

    Output is serial-identical: group keys first appear in scan order (the
    gather walks morsels in rid order and dicts preserve insertion order),
    and partial states combine through each aggregate's ``merge``.  The
    planner only builds this node when every aggregate has a merge and none
    is DISTINCT.  With no aggregate specs this is hash DISTINCT, and the
    merge degenerates to ordered set union.
    """

    def __init__(
        self,
        table: HeapTable,
        qualifier: str,
        predicates: Sequence[Expr],
        projection: tuple[Sequence[Expr], Sequence[str]] | None,
        workers: int,
        pool: ExecutorPool,
        group_exprs: Sequence[Expr],
        aggregates: Sequence[AggSpec],
        template: PlanNode,
        lane: str = "thread",
        batch_rows: int = BATCH_ROWS,
    ):
        super().__init__(
            table,
            qualifier,
            predicates,
            projection,
            workers,
            pool,
            template,
            lane=lane,
            batch_rows=batch_rows,
        )
        self.group_exprs = list(group_exprs)
        self.aggregates = list(aggregates)
        self.output_columns = list(template.output_columns)

    def _pushed_expressions(self) -> list[Expr]:
        pushed = super()._pushed_expressions()
        pushed.extend(self.group_exprs)
        pushed.extend(
            spec.argument
            for spec in self.aggregates
            if spec.argument is not None and not isinstance(spec.argument, Star)
        )
        return pushed

    def rows(self, context: ExecutionContext) -> Iterator[Row]:
        input_columns = self._input_columns()
        group_exprs = self.group_exprs
        aggregates = self.aggregates

        def post(batches, worker_functions):
            return batch_aggregate_run(
                batches, worker_functions, input_columns, group_exprs, aggregates
            )

        remote_aggs = tuple(
            (
                spec.function.name,
                None
                if spec.argument is None or isinstance(spec.argument, Star)
                else spec.argument,
            )
            for spec in aggregates
        )
        results = self._gather(
            context, post, remote_post=("agg", tuple(group_exprs), remote_aggs)
        )
        merged: dict[tuple, list] = {}
        for result in results:
            for key, states in result.payload.items():
                existing = merged.get(key)
                if existing is None:
                    merged[key] = states
                else:
                    merged[key] = [
                        spec.function.merge(left, right)
                        for spec, left, right in zip(aggregates, existing, states)
                    ]
        if not merged and not group_exprs:
            # SQL: a global aggregate always yields exactly one row.
            finals = [spec.function.final(spec.function.init()) for spec in aggregates]
            yield tuple(finals)
            return
        spilled = charge_spill(context, len(merged), self.est_row_bytes)
        try:
            for key, states in merged.items():
                yield key + tuple(
                    spec.function.final(state)
                    for spec, state in zip(aggregates, states)
                )
        finally:
            release_spill(context, spilled)

    def node_label(self) -> str:
        return (
            f"Parallel HashAggregate  (workers={self.workers})"
            f"{self._lane_label()}"
        )
