"""Exception hierarchy for the relational engine.

The engine mirrors the error surface of a conventional RDBMS closely enough
for the paper's failure modes to be reproducible:

* ``TypeCastError`` corresponds to PostgreSQL's ``invalid input syntax for
  type ...`` error, which is what makes NoBench Q7 fail on the Postgres
  JSON baseline (paper section 6.4).
* ``DiskFullError`` corresponds to running out of scratch/table space, which
  is what terminates NoBench Q8/Q9/Q11 on the EAV baseline and Q11 on
  MongoDB (paper sections 6.4 and 6.5).
"""

from __future__ import annotations


class DatabaseError(Exception):
    """Base class for every error raised by the engine."""


class SqlSyntaxError(DatabaseError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None):
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class CatalogError(DatabaseError):
    """A referenced table, column, or function does not exist (or already
    exists when it must not)."""


class TypeCastError(DatabaseError):
    """A value could not be converted to the requested SQL type.

    Matches PostgreSQL's behaviour of aborting the whole query on a
    malformed cast such as ``'twenty'::integer``.
    """


class ExecutionError(DatabaseError):
    """A runtime failure while executing a plan (bad expression, overflow,
    unexpected NULL, ...)."""


class PlanningError(DatabaseError):
    """The planner could not produce a plan for a (parsed) statement."""


class DiskFullError(DatabaseError):
    """The database exceeded its configured disk budget.

    Raised while appending heap pages or spilling intermediate results.  Used
    to reproduce the paper's out-of-disk terminations for the EAV and
    MongoDB baselines.
    """

    def __init__(self, used_bytes: int, budget_bytes: int):
        self.used_bytes = used_bytes
        self.budget_bytes = budget_bytes
        super().__init__(
            f"disk budget exhausted: {used_bytes} bytes used, "
            f"budget is {budget_bytes} bytes"
        )


class TransactionError(DatabaseError):
    """Illegal transaction state transition (commit without begin, ...)."""


class ConcurrencyError(DatabaseError):
    """A latch could not be acquired (loader vs. materializer exclusion)."""
