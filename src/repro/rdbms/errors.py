"""Exception hierarchy for the relational engine.

The engine mirrors the error surface of a conventional RDBMS closely enough
for the paper's failure modes to be reproducible:

* ``TypeCastError`` corresponds to PostgreSQL's ``invalid input syntax for
  type ...`` error, which is what makes NoBench Q7 fail on the Postgres
  JSON baseline (paper section 6.4).
* ``DiskFullError`` corresponds to running out of scratch/table space, which
  is what terminates NoBench Q8/Q9/Q11 on the EAV baseline and Q11 on
  MongoDB (paper sections 6.4 and 6.5).

Every error carries a uniform optional ``position`` (character offset into
the SQL text) and ``context`` (a short clause naming what was being done),
rendered consistently by ``__str__``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..analysis.diagnostics import Diagnostic


class DatabaseError(Exception):
    """Base class for every error raised by the engine.

    ``position`` is a character offset into the offending SQL text (or None
    when no source location applies); ``context`` is a short human-readable
    clause describing the operation that failed.
    """

    def __init__(
        self,
        message: str = "",
        position: int | None = None,
        context: str | None = None,
    ):
        super().__init__(message)
        self.message = message
        self.position = position
        self.context = context

    def __str__(self) -> str:
        text = self.message
        if self.position is not None:
            text = f"{text} (at position {self.position})"
        if self.context:
            text = f"{text} [{self.context}]"
        return text


class SqlSyntaxError(DatabaseError):
    """The SQL text could not be tokenized or parsed."""


class CatalogError(DatabaseError):
    """A referenced table, column, or function does not exist (or already
    exists when it must not)."""


class TypeCastError(DatabaseError):
    """A value could not be converted to the requested SQL type.

    Matches PostgreSQL's behaviour of aborting the whole query on a
    malformed cast such as ``'twenty'::integer``.
    """


class ExecutionError(DatabaseError):
    """A runtime failure while executing a plan (bad expression, overflow,
    unexpected NULL, ...)."""


class PlanningError(DatabaseError):
    """The planner could not produce a plan for a (parsed) statement."""


class SemanticError(PlanningError):
    """The semantic analyzer rejected a statement before planning.

    Subclasses :class:`PlanningError` so existing ``except PlanningError``
    call sites keep working; carries the full list of structured
    :class:`~repro.analysis.diagnostics.Diagnostic` records (errors *and*
    warnings) that the analysis pass produced.
    """

    def __init__(self, diagnostics: Sequence["Diagnostic"]):
        self.diagnostics = tuple(diagnostics)
        errors = [d for d in self.diagnostics if d.is_error]
        first = errors[0] if errors else self.diagnostics[0]
        message = f"{first.code}: {first.message}"
        if len(errors) > 1:
            message += f" (+{len(errors) - 1} more)"
        super().__init__(
            message,
            position=first.span[0] if first.span else None,
            context="semantic analysis",
        )


class DiskFullError(DatabaseError):
    """The database exceeded its configured disk budget.

    Raised while appending heap pages or spilling intermediate results.  Used
    to reproduce the paper's out-of-disk terminations for the EAV and
    MongoDB baselines.
    """

    def __init__(self, used_bytes: int, budget_bytes: int):
        self.used_bytes = used_bytes
        self.budget_bytes = budget_bytes
        super().__init__(
            f"disk budget exhausted: {used_bytes} bytes used, "
            f"budget is {budget_bytes} bytes"
        )


class TransactionError(DatabaseError):
    """Illegal transaction state transition (commit without begin, ...)."""


class ConcurrencyError(DatabaseError):
    """A latch could not be acquired (loader vs. materializer exclusion)."""


class DegradedError(TransactionError):
    """The engine is in read-only degraded mode after a WAL I/O failure.

    An ``OSError`` (ENOSPC, EIO, ...) from a WAL append or fsync means the
    log can no longer promise durability, so instead of dying -- or worse,
    acknowledging writes it cannot recover -- the engine flips the WAL into
    a *degraded* state: reads keep working (they never touch the log),
    every write is rejected with this error, and an operator brings the
    system back with ``WriteAheadLog.try_recover()`` (surfaced as
    ``\\service recover`` in the shell) once the underlying disk problem is
    fixed.

    Subclasses :class:`TransactionError` so existing transaction-layer
    handlers keep working; ``reason`` records the original I/O error.
    """

    def __init__(
        self,
        message: str = "",
        position: int | None = None,
        context: str | None = None,
        *,
        reason: str | None = None,
    ):
        super().__init__(message, position, context)
        self.reason = reason


class RecoveryError(DatabaseError):
    """Crash recovery found an on-disk state it cannot replay consistently
    (row-id misalignment, checkpoint referencing missing segments, ...)."""
