"""Worker-process side of the process executor lane.

A :class:`ProcessTask` is the pickle-safe description of one morsel's
work: a rid range, the spill-file path of the scan input, the pushed
expression programs (predicates / projection / sort keys / aggregate
specs -- plain frozen-dataclass ASTs, which pickle), and *names* for
every function the expressions call.  Nothing with a lock, a socket, or
a closure crosses the process boundary; the worker rebuilds callables
from the names:

* ``("builtin", name)`` specs resolve against the fresh
  :class:`~repro.rdbms.functions.FunctionRegistry` every worker creates
  (its built-in scalars are identical in every process by construction);
* ``("sinew_extract", method)`` specs rebind the named method onto a
  private :class:`~repro.core.extractors.ReservoirExtractor` whose
  catalog is restored from the spilled ``(attr_id, key_name, type)``
  triples -- the exact dictionary the parent's documents were
  serialized against, keyed by catalog epoch so it can never be stale.

Workers cache the unpickled table image and the rebuilt registry by
spill path, so a 4-worker query pays the rebuild four times on its
first batch of tasks and never again for the same table/catalog
version.  Each *task* still gets fresh counter bundles: results return
as :class:`~repro.rdbms.plan_nodes._MorselResult` (payload + private
:class:`CostCounters` / :class:`ExtractionStats`), which the parent
folds in morsel order exactly like thread-lane results.

Worker processes run tasks one at a time on a single thread, so the
module-level caches need no locking.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from typing import Any

from .cost import CostCounters, ExtractionStats
from .errors import ExecutionError
from .expressions import Expr, SchemaResolver
from .functions import _BUILTIN_AGGREGATES, FunctionRegistry
from .plan_nodes import (
    AggSpec,
    _MorselResult,
    _WorkerFunctions,
    _WorkerQueryScope,
    batch_aggregate_run,
    batch_sort_run,
)
from .types import SqlType
from .vectorized import BATCH_ROWS, BatchProgram


@dataclass(frozen=True)
class ProcessTask:
    """One morsel of scan-side work, shipped to a worker process.

    ``post`` selects the fold shape: ``None`` returns the surviving
    (projected) rows, ``("sort", keys)`` a sorted decorated run, and
    ``("agg", group_exprs, ((agg_name, argument), ...))`` a partial
    aggregation state dict.  ``function_specs`` carries
    ``(name, kind, target, return_type_value)`` for every scalar the
    expressions call.
    """

    index: int
    start_rid: int
    end_rid: int
    table_path: str
    scan_columns: tuple[tuple[str | None, str], ...]
    predicates: tuple[Expr, ...]
    projection: tuple[tuple[Expr, ...], tuple[str, ...]] | None
    post: tuple | None
    function_specs: tuple[tuple[str, str, str, str], ...]
    catalog_path: str | None
    use_cache: bool
    hint: int | None
    batch_rows: int = BATCH_ROWS


@dataclass(frozen=True)
class ExitTask:
    """Fault-injection task: the worker dies without cleanup.

    Used by the worker-death tests to exercise the BrokenProcessPool
    recovery path in :meth:`ExecutorPool.map_tasks` -- ``os._exit``
    bypasses every finally block, exactly like an OOM kill.
    """

    code: int = 1


#: per-process caches, keyed by spill path (paths embed version/epoch
#: tokens, so a stale entry is simply never looked up again)
_TABLE_ROWS: dict[str, list] = {}
_REGISTRIES: dict[tuple, FunctionRegistry] = {}


def _table_rows(path: str) -> list:
    rows = _TABLE_ROWS.get(path)
    if rows is None:
        with open(path, "rb") as handle:
            state = pickle.load(handle)
        rows = _TABLE_ROWS[path] = state["rows"]
    return rows


def _load_extractor(catalog_path: str | None):
    # Imported lazily: plain-RDBMS queries (no extraction UDFs) must not
    # pull the Sinew layer into every worker process.
    from ..core.catalog import SinewCatalog
    from ..core.extractors import ReservoirExtractor

    if catalog_path is None:
        raise ExecutionError(
            "extraction UDF shipped to a worker process without a catalog "
            "snapshot",
            context="process-lane worker",
        )
    with open(catalog_path, "rb") as handle:
        triples = pickle.load(handle)
    catalog = SinewCatalog()
    for attr_id, key_name, type_value in triples:
        catalog.ensure_attribute(attr_id, key_name, SqlType(type_value))
    return ReservoirExtractor(catalog)


def _registry_for(task: ProcessTask) -> FunctionRegistry:
    key = (task.catalog_path, task.function_specs)
    registry = _REGISTRIES.get(key)
    if registry is not None:
        return registry
    # The registry-level counters are a placeholder: _WorkerFunctions
    # rebinds every counted scalar to the running task's private bundle.
    registry = FunctionRegistry(CostCounters())
    extractor = None
    for name, kind, target, type_value in task.function_specs:
        if kind == "builtin":
            continue  # a fresh registry already has the built-in scalars
        if kind != "sinew_extract":
            raise ExecutionError(
                f"unknown remote function spec {kind!r} for {name}()",
                context="process-lane worker",
            )
        if extractor is None:
            extractor = _load_extractor(task.catalog_path)
            # scope the extractor's decode cache to each task's lifetime,
            # mirroring register_extraction_udfs on the parent side
            registry.register_query_listener(extractor)
        registry.register_scalar(
            name,
            getattr(extractor, target),
            SqlType(type_value),
            counts_as_udf=True,
            remote_spec=(kind, target),
        )
    _REGISTRIES[key] = registry
    return registry


def _scan(task: ProcessTask, counters: CostCounters):
    """Yield live rows of the task's rid range from the spilled image."""
    rows = _table_rows(task.table_path)
    end = min(task.end_rid, len(rows))
    for rid in range(max(0, task.start_rid), end):
        row = rows[rid]
        if row is not None:
            counters.tuples_scanned += 1
            yield row


def run_process_task(task: ProcessTask | ExitTask) -> Any:
    """Execute one morsel task; the process-pool entry point."""
    if isinstance(task, ExitTask):
        os._exit(task.code)
    counters = CostCounters()
    stats = ExtractionStats()
    registry = _registry_for(task)
    worker_functions = _WorkerFunctions(registry, counters)
    scope = _WorkerQueryScope(
        stats, task.use_cache, task.hint, batch_rows=task.batch_rows
    )
    registry.begin_query(scope)
    try:
        scan_columns = list(task.scan_columns)
        resolver = SchemaResolver(scan_columns, worker_functions)
        program = BatchProgram(
            resolver,
            list(task.predicates),
            list(task.projection[0]) if task.projection is not None else None,
            batch_rows=task.batch_rows,
        )
        batches = list(program.run(_scan(task, counters)))
        n_rows = sum(len(batch) for batch in batches)
        if task.projection is not None:
            input_columns = [(None, name) for name in task.projection[1]]
        else:
            input_columns = scan_columns
        if task.post is None:
            payload: Any = [row for batch in batches for row in batch.rows()]
        elif task.post[0] == "sort":
            payload = batch_sort_run(
                batches, worker_functions, input_columns, list(task.post[1])
            )
        elif task.post[0] == "agg":
            aggregates = [
                AggSpec(_BUILTIN_AGGREGATES[name], argument, False, name)
                for name, argument in task.post[2]
            ]
            payload = batch_aggregate_run(
                batches,
                worker_functions,
                input_columns,
                list(task.post[1]),
                aggregates,
            )
        else:
            raise ExecutionError(
                f"unknown post spec {task.post[0]!r}",
                context="process-lane worker",
            )
    finally:
        registry.end_query(scope)
    return _MorselResult(task.index, payload, n_rows, counters, stats, os.getpid())
