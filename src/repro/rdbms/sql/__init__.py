"""SQL front end: lexer, parser, and statement AST."""

from .ast import (
    AlterTableStatement,
    AnalyzeStatement,
    ColumnDef,
    CreateTableStatement,
    DeleteStatement,
    DropTableStatement,
    ExplainStatement,
    InsertStatement,
    OrderItem,
    SelectItem,
    SelectStatement,
    Statement,
    TableRef,
    UpdateStatement,
)
from .lexer import Token, TokenType, tokenize
from .parser import parse, parse_expression

__all__ = [
    "AlterTableStatement",
    "AnalyzeStatement",
    "ColumnDef",
    "CreateTableStatement",
    "DeleteStatement",
    "DropTableStatement",
    "ExplainStatement",
    "InsertStatement",
    "OrderItem",
    "SelectItem",
    "SelectStatement",
    "Statement",
    "TableRef",
    "Token",
    "TokenType",
    "UpdateStatement",
    "parse",
    "parse_expression",
    "tokenize",
]
