"""Recursive-descent SQL parser.

Grammar coverage is the dialect the paper's workload needs: SELECT with
joins (comma and ``JOIN ... ON``), WHERE, GROUP BY, HAVING, ORDER BY,
LIMIT, DISTINCT; INSERT/UPDATE/DELETE; CREATE/DROP/ALTER TABLE; ANALYZE;
EXPLAIN; transaction control.  Expression syntax includes BETWEEN, IN,
LIKE, IS [NOT] NULL, ``= ANY(array)`` containment (NoBench Q8), CAST /
``::`` casts, COALESCE (the dirty-column rewrite of paper section 3.2.2),
and function calls (the ``extract_key_*`` UDFs).
"""

from __future__ import annotations

from ..errors import SqlSyntaxError
from ..expressions import (
    AnyPredicate,
    Between,
    BinaryOp,
    Coalesce,
    ColumnRef,
    Expr,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Star,
    UnaryOp,
)
from ..types import type_from_name
from .ast import (
    AlterTableStatement,
    AnalyzeStatement,
    BeginStatement,
    ColumnDef,
    CommitStatement,
    CreateTableStatement,
    DeleteStatement,
    DropTableStatement,
    ExplainStatement,
    InsertStatement,
    OrderItem,
    RollbackStatement,
    SelectItem,
    SelectStatement,
    Statement,
    TableRef,
    UpdateStatement,
)
from .lexer import Token, TokenType, tokenize

_COMPARISON_OPS = ("=", "<>", "!=", "<", "<=", ">", ">=")

Span = tuple[int, int]


def _merge_spans(left: Span | None, right: Span | None) -> Span | None:
    """Smallest span covering both operands (None when either is unknown)."""
    if left is None or right is None:
        return left or right
    return (min(left[0], right[0]), max(left[1], right[1]))


def parse(sql: str) -> Statement:
    """Parse one SQL statement (a trailing semicolon is allowed)."""
    return _Parser(tokenize(sql)).parse_statement()


def parse_expression(sql: str) -> Expr:
    """Parse a standalone expression (used by tests and the rewriter)."""
    parser = _Parser(tokenize(sql))
    expr = parser.parse_expr()
    parser.expect_eof()
    return expr


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.position = 0

    # -- token-stream helpers -------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        if token.type is not TokenType.EOF:
            self.position += 1
        return token

    def _prev_end(self) -> int:
        """End offset of the most recently consumed token."""
        return self.tokens[max(self.position - 1, 0)].span[1]

    def _span_from(self, start: int) -> Span:
        return (start, self._prev_end())

    def accept(self, token_type: TokenType, value: str | None = None) -> Token | None:
        if self.peek().matches(token_type, value):
            return self.advance()
        return None

    def accept_keyword(self, *words: str) -> bool:
        """Consume a sequence of keywords if all of them are next."""
        for offset, word in enumerate(words):
            if not self.peek(offset).matches(TokenType.KEYWORD, word):
                return False
        for _ in words:
            self.advance()
        return True

    def expect(self, token_type: TokenType, value: str | None = None) -> Token:
        token = self.accept(token_type, value)
        if token is None:
            actual = self.peek()
            expected = value or token_type.value
            raise SqlSyntaxError(
                f"expected {expected!r}, found {actual.value!r}",
                position=actual.position,
            )
        return token

    def expect_keyword(self, word: str) -> None:
        self.expect(TokenType.KEYWORD, word)

    def expect_eof(self) -> None:
        self.accept(TokenType.PUNCT, ";")
        if self.peek().type is not TokenType.EOF:
            token = self.peek()
            raise SqlSyntaxError(
                f"unexpected trailing input: {token.value!r}", position=token.position
            )

    # -- statements -------------------------------------------------------

    def parse_statement(self) -> Statement:
        token = self.peek()
        if token.type is not TokenType.KEYWORD:
            raise SqlSyntaxError(
                f"expected a statement keyword, found {token.value!r}",
                position=token.position,
            )
        dispatch = {
            "select": self._parse_select_statement,
            "insert": self._parse_insert,
            "update": self._parse_update,
            "delete": self._parse_delete,
            "create": self._parse_create_table,
            "drop": self._parse_drop_table,
            "alter": self._parse_alter_table,
            "analyze": self._parse_analyze,
            "explain": self._parse_explain,
            "begin": self._parse_begin,
            "commit": self._parse_commit,
            "rollback": self._parse_rollback,
        }
        if token.value not in dispatch:
            raise SqlSyntaxError(
                f"unsupported statement: {token.value!r}", position=token.position
            )
        statement = dispatch[token.value]()
        self.expect_eof()
        return statement

    def _parse_select_statement(self) -> SelectStatement:
        statement = self._parse_select()
        return statement

    def _parse_select(self) -> SelectStatement:
        self.expect_keyword("select")
        distinct = self.accept_keyword("distinct")
        items = [self._parse_select_item()]
        while self.accept(TokenType.PUNCT, ","):
            items.append(self._parse_select_item())

        from_tables: list[TableRef] = []
        where: Expr | None = None
        if self.accept_keyword("from"):
            from_tables.append(self._parse_table_ref())
            while True:
                if self.accept(TokenType.PUNCT, ","):
                    from_tables.append(self._parse_table_ref())
                    continue
                is_join = (
                    self.accept_keyword("join")
                    or self.accept_keyword("inner", "join")
                    or self.accept_keyword("left", "join")
                )
                if is_join:
                    from_tables.append(self._parse_table_ref())
                    self.expect_keyword("on")
                    condition = self.parse_expr()
                    where = condition if where is None else BinaryOp("AND", where, condition)
                    continue
                break

        if self.accept_keyword("where"):
            condition = self.parse_expr()
            where = condition if where is None else BinaryOp("AND", where, condition)

        group_by: list[Expr] = []
        if self.accept_keyword("group", "by"):
            group_by.append(self.parse_expr())
            while self.accept(TokenType.PUNCT, ","):
                group_by.append(self.parse_expr())

        having: Expr | None = None
        if self.accept_keyword("having"):
            having = self.parse_expr()

        order_by: list[OrderItem] = []
        if self.accept_keyword("order", "by"):
            order_by.append(self._parse_order_item())
            while self.accept(TokenType.PUNCT, ","):
                order_by.append(self._parse_order_item())

        limit: int | None = None
        if self.accept_keyword("limit"):
            token = self.expect(TokenType.NUMBER)
            limit = int(token.value)

        return SelectStatement(
            items=tuple(items),
            from_tables=tuple(from_tables),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            distinct=distinct,
        )

    def _parse_select_item(self) -> SelectItem:
        # "*" and "alias.*"
        if self.peek().matches(TokenType.OPERATOR, "*"):
            token = self.advance()
            return SelectItem(Star(span=token.span))
        if (
            self.peek().type in (TokenType.IDENT, TokenType.QIDENT)
            and self.peek(1).matches(TokenType.PUNCT, ".")
            and self.peek(2).matches(TokenType.OPERATOR, "*")
        ):
            start = self.peek().position
            qualifier = self.advance().value
            self.advance()
            self.advance()
            return SelectItem(Star(qualifier, span=self._span_from(start)))
        expr = self.parse_expr()
        alias: str | None = None
        if self.accept_keyword("as"):
            alias = self._parse_identifier("output alias")
        elif self.peek().type in (TokenType.IDENT, TokenType.QIDENT):
            alias = self.advance().value
        return SelectItem(expr, alias)

    def _parse_order_item(self) -> OrderItem:
        expr = self.parse_expr()
        ascending = True
        if self.accept_keyword("desc"):
            ascending = False
        else:
            self.accept_keyword("asc")
        return OrderItem(expr, ascending)

    def _parse_table_ref(self) -> TableRef:
        start = self.peek().position
        name = self._parse_identifier("table name")
        alias: str | None = None
        if self.accept_keyword("as"):
            alias = self._parse_identifier("table alias")
        elif self.peek().type in (TokenType.IDENT, TokenType.QIDENT):
            alias = self.advance().value
        return TableRef(name, alias, span=self._span_from(start))

    def _parse_insert(self) -> InsertStatement:
        self.expect_keyword("insert")
        self.expect_keyword("into")
        table = self._parse_identifier("table name")
        columns: tuple[str, ...] | None = None
        if self.accept(TokenType.PUNCT, "("):
            names = [self._parse_identifier("column name")]
            while self.accept(TokenType.PUNCT, ","):
                names.append(self._parse_identifier("column name"))
            self.expect(TokenType.PUNCT, ")")
            columns = tuple(names)
        self.expect_keyword("values")
        rows = [self._parse_value_row()]
        while self.accept(TokenType.PUNCT, ","):
            rows.append(self._parse_value_row())
        return InsertStatement(table, columns, tuple(rows))

    def _parse_value_row(self) -> tuple[Expr, ...]:
        self.expect(TokenType.PUNCT, "(")
        values = [self.parse_expr()]
        while self.accept(TokenType.PUNCT, ","):
            values.append(self.parse_expr())
        self.expect(TokenType.PUNCT, ")")
        return tuple(values)

    def _parse_update(self) -> UpdateStatement:
        self.expect_keyword("update")
        table = self._parse_identifier("table name")
        self.expect_keyword("set")
        assignments = [self._parse_assignment()]
        while self.accept(TokenType.PUNCT, ","):
            assignments.append(self._parse_assignment())
        where: Expr | None = None
        if self.accept_keyword("where"):
            where = self.parse_expr()
        return UpdateStatement(table, tuple(assignments), where)

    def _parse_assignment(self) -> tuple[str, Expr]:
        name = self._parse_identifier("column name")
        self.expect(TokenType.OPERATOR, "=")
        return name, self.parse_expr()

    def _parse_delete(self) -> DeleteStatement:
        self.expect_keyword("delete")
        self.expect_keyword("from")
        table = self._parse_identifier("table name")
        where: Expr | None = None
        if self.accept_keyword("where"):
            where = self.parse_expr()
        return DeleteStatement(table, where)

    def _parse_create_table(self) -> CreateTableStatement:
        self.expect_keyword("create")
        self.expect_keyword("table")
        if_not_exists = self.accept_keyword("if", "not", "exists")
        table = self._parse_identifier("table name")
        self.expect(TokenType.PUNCT, "(")
        columns = [self._parse_column_def()]
        while self.accept(TokenType.PUNCT, ","):
            columns.append(self._parse_column_def())
        self.expect(TokenType.PUNCT, ")")
        return CreateTableStatement(table, tuple(columns), if_not_exists)

    def _parse_column_def(self) -> ColumnDef:
        name = self._parse_identifier("column name")
        sql_type = self._parse_type_name()
        return ColumnDef(name, sql_type)

    def _parse_type_name(self):
        first = self.expect(TokenType.IDENT).value
        if first == "double" and self.peek().matches(TokenType.IDENT, "precision"):
            self.advance()
            first = "double precision"
        return type_from_name(first)

    def _parse_drop_table(self) -> DropTableStatement:
        self.expect_keyword("drop")
        self.expect_keyword("table")
        if_exists = self.accept_keyword("if", "exists")
        table = self._parse_identifier("table name")
        return DropTableStatement(table, if_exists)

    def _parse_alter_table(self) -> AlterTableStatement:
        self.expect_keyword("alter")
        self.expect_keyword("table")
        table = self._parse_identifier("table name")
        if self.accept_keyword("add"):
            self.accept_keyword("column")
            name = self._parse_identifier("column name")
            sql_type = self._parse_type_name()
            return AlterTableStatement(table, "add", name, sql_type)
        if self.accept_keyword("drop"):
            self.accept_keyword("column")
            name = self._parse_identifier("column name")
            return AlterTableStatement(table, "drop", name)
        token = self.peek()
        raise SqlSyntaxError(
            f"expected ADD or DROP, found {token.value!r}", position=token.position
        )

    def _parse_analyze(self) -> AnalyzeStatement:
        self.expect_keyword("analyze")
        table: str | None = None
        if self.peek().type in (TokenType.IDENT, TokenType.QIDENT):
            table = self.advance().value
        return AnalyzeStatement(table)

    def _parse_explain(self) -> ExplainStatement:
        self.expect_keyword("explain")
        return ExplainStatement(self._parse_select())

    def _parse_begin(self) -> BeginStatement:
        self.expect_keyword("begin")
        return BeginStatement()

    def _parse_commit(self) -> CommitStatement:
        self.expect_keyword("commit")
        return CommitStatement()

    def _parse_rollback(self) -> RollbackStatement:
        self.expect_keyword("rollback")
        return RollbackStatement()

    def _parse_identifier(self, what: str) -> str:
        token = self.peek()
        if token.type in (TokenType.IDENT, TokenType.QIDENT):
            return self.advance().value
        raise SqlSyntaxError(
            f"expected {what}, found {token.value!r}", position=token.position
        )

    # -- expressions ------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self.accept_keyword("or"):
            right = self._parse_and()
            left = BinaryOp("OR", left, right, span=_merge_spans(left.span, right.span))
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self.accept_keyword("and"):
            right = self._parse_not()
            left = BinaryOp("AND", left, right, span=_merge_spans(left.span, right.span))
        return left

    def _parse_not(self) -> Expr:
        if self.peek().matches(TokenType.KEYWORD, "not"):
            start = self.advance().position
            operand = self._parse_not()
            return UnaryOp("NOT", operand, span=self._span_from(start))
        return self._parse_predicate()

    def _parse_predicate(self) -> Expr:
        left = self._parse_additive()
        while True:
            token = self.peek()
            if token.type is TokenType.OPERATOR and token.value in _COMPARISON_OPS:
                op = self.advance().value
                if op == "=" and self.accept_keyword("any"):
                    self.expect(TokenType.PUNCT, "(")
                    haystack = self.parse_expr()
                    self.expect(TokenType.PUNCT, ")")
                    span = (
                        self._span_from(left.span[0]) if left.span else None
                    )
                    left = AnyPredicate(left, haystack, span=span)
                else:
                    right = self._parse_additive()
                    left = BinaryOp(
                        op, left, right, span=_merge_spans(left.span, right.span)
                    )
                continue
            if token.matches(TokenType.KEYWORD, "is"):
                self.advance()
                negated = bool(self.accept_keyword("not"))
                self.expect_keyword("null")
                span = self._span_from(left.span[0]) if left.span else None
                left = IsNull(left, negated, span=span)
                continue
            negated = False
            if token.matches(TokenType.KEYWORD, "not"):
                follower = self.peek(1)
                if follower.type is TokenType.KEYWORD and follower.value in (
                    "between",
                    "in",
                    "like",
                ):
                    self.advance()
                    negated = True
                    token = self.peek()
                else:
                    break
            if token.matches(TokenType.KEYWORD, "between"):
                self.advance()
                low = self._parse_additive()
                self.expect_keyword("and")
                high = self._parse_additive()
                span = self._span_from(left.span[0]) if left.span else None
                left = Between(left, low, high, negated, span=span)
                continue
            if token.matches(TokenType.KEYWORD, "in"):
                self.advance()
                self.expect(TokenType.PUNCT, "(")
                items = [self.parse_expr()]
                while self.accept(TokenType.PUNCT, ","):
                    items.append(self.parse_expr())
                self.expect(TokenType.PUNCT, ")")
                span = self._span_from(left.span[0]) if left.span else None
                left = InList(left, tuple(items), negated, span=span)
                continue
            if token.matches(TokenType.KEYWORD, "like"):
                self.advance()
                pattern = self._parse_additive()
                span = self._span_from(left.span[0]) if left.span else None
                left = Like(left, pattern, negated, span=span)
                continue
            break
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while True:
            token = self.peek()
            if token.type is TokenType.OPERATOR and token.value in ("+", "-", "||"):
                op = self.advance().value
                right = self._parse_multiplicative()
                left = BinaryOp(
                    op, left, right, span=_merge_spans(left.span, right.span)
                )
            else:
                return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while True:
            token = self.peek()
            if token.type is TokenType.OPERATOR and token.value in ("*", "/", "%"):
                op = self.advance().value
                right = self._parse_unary()
                left = BinaryOp(
                    op, left, right, span=_merge_spans(left.span, right.span)
                )
            else:
                return left

    def _parse_unary(self) -> Expr:
        token = self.peek()
        if token.matches(TokenType.OPERATOR, "-"):
            start = self.advance().position
            operand = self._parse_unary()
            return UnaryOp("-", operand, span=self._span_from(start))
        if token.matches(TokenType.OPERATOR, "+"):
            self.advance()
            return self._parse_unary()
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while self.accept(TokenType.OPERATOR, "::"):
            from ..expressions import Cast

            target = self._parse_type_name()
            span = self._span_from(expr.span[0]) if expr.span else None
            expr = Cast(expr, target, span=span)
        return expr

    def _parse_primary(self) -> Expr:
        token = self.peek()

        if token.type is TokenType.NUMBER:
            self.advance()
            text = token.value
            if "." in text or "e" in text or "E" in text:
                return Literal(float(text), span=token.span)
            return Literal(int(text), span=token.span)

        if token.type is TokenType.STRING:
            self.advance()
            return Literal(token.value, span=token.span)

        if token.type is TokenType.KEYWORD:
            if token.value == "null":
                self.advance()
                return Literal(None, span=token.span)
            if token.value == "true":
                self.advance()
                return Literal(True, span=token.span)
            if token.value == "false":
                self.advance()
                return Literal(False, span=token.span)
            if token.value == "cast":
                self.advance()
                self.expect(TokenType.PUNCT, "(")
                inner = self.parse_expr()
                self.expect_keyword("as")
                target = self._parse_type_name()
                self.expect(TokenType.PUNCT, ")")
                from ..expressions import Cast

                return Cast(inner, target, span=self._span_from(token.position))
            if token.value == "coalesce":
                self.advance()
                self.expect(TokenType.PUNCT, "(")
                args = [self.parse_expr()]
                while self.accept(TokenType.PUNCT, ","):
                    args.append(self.parse_expr())
                self.expect(TokenType.PUNCT, ")")
                return Coalesce(tuple(args), span=self._span_from(token.position))
            raise SqlSyntaxError(
                f"unexpected keyword {token.value!r} in expression",
                position=token.position,
            )

        if token.type in (TokenType.IDENT, TokenType.QIDENT):
            name = self.advance().value
            # function call?
            if token.type is TokenType.IDENT and self.peek().matches(
                TokenType.PUNCT, "("
            ):
                self.advance()
                distinct = self.accept_keyword("distinct")
                args: list[Expr] = []
                if self.peek().matches(TokenType.OPERATOR, "*"):
                    star_token = self.advance()
                    args.append(Star(span=star_token.span))
                elif not self.peek().matches(TokenType.PUNCT, ")"):
                    args.append(self.parse_expr())
                    while self.accept(TokenType.PUNCT, ","):
                        args.append(self.parse_expr())
                self.expect(TokenType.PUNCT, ")")
                return FunctionCall(
                    name,
                    tuple(args),
                    distinct=distinct,
                    span=self._span_from(token.position),
                )
            # qualified column reference?
            if self.peek().matches(TokenType.PUNCT, "."):
                follower = self.peek(1)
                if follower.type in (TokenType.IDENT, TokenType.QIDENT):
                    self.advance()
                    column = self.advance().value
                    return ColumnRef(
                        name, column, span=self._span_from(token.position)
                    )
            return ColumnRef(None, name, span=token.span)

        if token.matches(TokenType.PUNCT, "("):
            self.advance()
            inner = self.parse_expr()
            self.expect(TokenType.PUNCT, ")")
            return inner

        raise SqlSyntaxError(
            f"unexpected token {token.value!r} in expression", position=token.position
        )
