"""Statement-level AST produced by the SQL parser.

Expression nodes live in :mod:`repro.rdbms.expressions`; this module holds
the statement shells around them.  Join syntax is normalised at parse time:
both ``FROM a, b WHERE a.x = b.y`` and ``FROM a JOIN b ON a.x = b.y``
produce a flat table list plus a conjunctive WHERE, which is the form the
join-order enumerator consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..expressions import Expr
from ..types import SqlType


@dataclass(frozen=True)
class TableRef:
    """A table in a FROM clause, with its effective alias."""

    name: str
    alias: str | None = None
    span: tuple[int, int] | None = field(default=None, compare=False, repr=False)

    @property
    def binding(self) -> str:
        """The name other clauses use to refer to this table instance."""
        return self.alias or self.name


@dataclass(frozen=True)
class SelectItem:
    """One SELECT-list entry: an expression plus optional output alias."""

    expr: Expr
    alias: str | None = None


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    expr: Expr
    ascending: bool = True


class Statement:
    """Marker base class for all statements."""


@dataclass(frozen=True)
class SelectStatement(Statement):
    items: tuple[SelectItem, ...]
    from_tables: tuple[TableRef, ...]
    where: Expr | None = None
    group_by: tuple[Expr, ...] = ()
    having: Expr | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    distinct: bool = False


@dataclass(frozen=True)
class InsertStatement(Statement):
    table: str
    columns: tuple[str, ...] | None
    rows: tuple[tuple[Expr, ...], ...]


@dataclass(frozen=True)
class UpdateStatement(Statement):
    table: str
    assignments: tuple[tuple[str, Expr], ...]
    where: Expr | None = None


@dataclass(frozen=True)
class DeleteStatement(Statement):
    table: str
    where: Expr | None = None


@dataclass(frozen=True)
class ColumnDef:
    name: str
    sql_type: SqlType


@dataclass(frozen=True)
class CreateTableStatement(Statement):
    table: str
    columns: tuple[ColumnDef, ...]
    if_not_exists: bool = False


@dataclass(frozen=True)
class DropTableStatement(Statement):
    table: str
    if_exists: bool = False


@dataclass(frozen=True)
class AlterTableStatement(Statement):
    """``ALTER TABLE t ADD COLUMN c type`` or ``... DROP COLUMN c``."""

    table: str
    action: str  # "add" | "drop"
    column_name: str
    sql_type: SqlType | None = None


@dataclass(frozen=True)
class AnalyzeStatement(Statement):
    """``ANALYZE [table]`` -- refresh optimizer statistics."""

    table: str | None = None


@dataclass(frozen=True)
class ExplainStatement(Statement):
    """``EXPLAIN select`` -- plan without executing."""

    inner: SelectStatement


@dataclass(frozen=True)
class BeginStatement(Statement):
    pass


@dataclass(frozen=True)
class CommitStatement(Statement):
    pass


@dataclass(frozen=True)
class RollbackStatement(Statement):
    pass
