"""SQL tokenizer.

Produces a flat token stream with source positions for error reporting.
Two details matter for Sinew:

* **Quoted identifiers keep their exact spelling**, including dots --
  ``"user.id"`` is a single logical column of the universal relation
  (a flattened nested key), not a table-qualified reference.
* Unquoted identifiers are case-folded to lower case (PostgreSQL rule).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import SqlSyntaxError


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"  # unquoted, lower-cased
    QIDENT = "qident"  # "quoted", spelling preserved
    STRING = "string"
    NUMBER = "number"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset(
    """
    select from where group by having order asc desc limit distinct as and or
    not in like between is null true false insert into values update set
    delete create table drop alter add column if exists analyze explain
    join inner left on cast any coalesce begin commit rollback
    """.split()
)

_OPERATORS = (
    "<>",
    "!=",
    "<=",
    ">=",
    "::",
    "||",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
)

_PUNCT = "(),.;"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int  # offset of the token's first character in the SQL text
    end: int = -1  # offset one past the token's last character

    def matches(self, token_type: TokenType, value: str | None = None) -> bool:
        if self.type is not token_type:
            return False
        return value is None or self.value == value

    @property
    def span(self) -> tuple[int, int]:
        """``(start, end)`` character span of this token in the source."""
        end = self.end if self.end >= 0 else self.position + len(self.value)
        return (self.position, end)


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql``, raising :class:`SqlSyntaxError` on bad input."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            newline = sql.find("\n", i)
            i = n if newline == -1 else newline + 1
            continue
        if ch == "'":
            start = i
            value, i = _read_string(sql, i)
            tokens.append(Token(TokenType.STRING, value, start, i))
            continue
        if ch == '"':
            start = i
            value, i = _read_quoted_identifier(sql, i)
            tokens.append(Token(TokenType.QIDENT, value, start, i))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            start = i
            value, i = _read_number(sql, i)
            tokens.append(Token(TokenType.NUMBER, value, start, i))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (sql[i].isalnum() or sql[i] == "_" or sql[i] == "$"):
                i += 1
            word = sql[start:i].lower()
            token_type = TokenType.KEYWORD if word in KEYWORDS else TokenType.IDENT
            tokens.append(Token(token_type, word, start, i))
            continue
        matched_operator = None
        for operator in _OPERATORS:
            if sql.startswith(operator, i):
                matched_operator = operator
                break
        if matched_operator is not None:
            end = i + len(matched_operator)
            tokens.append(Token(TokenType.OPERATOR, matched_operator, i, end))
            i = end
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, i, i + 1))
            i += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r}", position=i)
    tokens.append(Token(TokenType.EOF, "", n, n))
    return tokens


def _read_string(sql: str, start: int) -> tuple[str, int]:
    """Read a single-quoted string; '' is an escaped quote."""
    i = start + 1
    n = len(sql)
    parts: list[str] = []
    while i < n:
        ch = sql[i]
        if ch == "'":
            if i + 1 < n and sql[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise SqlSyntaxError("unterminated string literal", position=start)


def _read_quoted_identifier(sql: str, start: int) -> tuple[str, int]:
    """Read a double-quoted identifier; "" is an escaped quote."""
    i = start + 1
    n = len(sql)
    parts: list[str] = []
    while i < n:
        ch = sql[i]
        if ch == '"':
            if i + 1 < n and sql[i + 1] == '"':
                parts.append('"')
                i += 2
                continue
            if not parts:
                raise SqlSyntaxError("empty quoted identifier", position=start)
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise SqlSyntaxError("unterminated quoted identifier", position=start)


def _read_number(sql: str, start: int) -> tuple[str, int]:
    i = start
    n = len(sql)
    seen_dot = False
    seen_exp = False
    while i < n:
        ch = sql[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            i += 1
        elif ch in "eE" and not seen_exp and i > start:
            seen_exp = True
            i += 1
            if i < n and sql[i] in "+-":
                i += 1
        else:
            break
    return sql[start:i], i
