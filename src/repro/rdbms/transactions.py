"""Write-ahead logging and transactions.

The update experiment (paper Figure 8) depends on the RDBMS-based systems
paying a transactional cost that MongoDB does not: every row mutation is
WAL-logged and committed, while the MongoDB baseline mutates documents with
no durability bookkeeping.  The paper found that Sinew's cheaper predicate
evaluation outweighed this overhead; reproducing that requires the overhead
to actually exist, which this module provides.

The WAL here is an in-memory record stream with byte accounting (record
counts and bytes flow into the shared :class:`~repro.rdbms.cost.CostCounters`
so the harness can model fsync latency).  Rollback is implemented with
per-transaction undo entries applied in reverse order.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from .cost import CostCounters
from .errors import TransactionError


class WalRecordType(enum.Enum):
    BEGIN = "begin"
    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"
    COMMIT = "commit"
    ABORT = "abort"


@dataclass(frozen=True)
class WalRecord:
    """One record in the write-ahead log."""

    lsn: int
    txn_id: int
    record_type: WalRecordType
    table: str | None = None
    rid: int | None = None
    payload_bytes: int = 0


class WriteAheadLog:
    """Append-only log with monotonically increasing LSNs."""

    #: Fixed overhead per WAL record (header, CRC, alignment).
    RECORD_HEADER_BYTES = 26

    def __init__(self, counters: CostCounters):
        self.counters = counters
        self.records: list[WalRecord] = []
        self._lsn = itertools.count(1)

    def append(
        self,
        txn_id: int,
        record_type: WalRecordType,
        table: str | None = None,
        rid: int | None = None,
        payload_bytes: int = 0,
    ) -> WalRecord:
        record = WalRecord(
            lsn=next(self._lsn),
            txn_id=txn_id,
            record_type=record_type,
            table=table,
            rid=rid,
            payload_bytes=payload_bytes,
        )
        self.records.append(record)
        self.counters.wal_records += 1
        self.counters.wal_bytes += self.RECORD_HEADER_BYTES + payload_bytes
        return record

    def __len__(self) -> int:
        return len(self.records)

    def records_for(self, txn_id: int) -> list[WalRecord]:
        return [r for r in self.records if r.txn_id == txn_id]


class TxnState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class Transaction:
    """A unit of atomic work.  Undo actions run in reverse on abort."""

    txn_id: int
    wal: WriteAheadLog
    state: TxnState = TxnState.ACTIVE
    _undo: list[Callable[[], None]] = field(default_factory=list)

    def log_insert(self, table: str, rid: int, payload_bytes: int, undo: Callable[[], None]) -> None:
        self._require_active()
        self.wal.append(self.txn_id, WalRecordType.INSERT, table, rid, payload_bytes)
        self._undo.append(undo)

    def log_update(self, table: str, rid: int, payload_bytes: int, undo: Callable[[], None]) -> None:
        self._require_active()
        self.wal.append(self.txn_id, WalRecordType.UPDATE, table, rid, payload_bytes)
        self._undo.append(undo)

    def log_delete(self, table: str, rid: int, payload_bytes: int, undo: Callable[[], None]) -> None:
        self._require_active()
        self.wal.append(self.txn_id, WalRecordType.DELETE, table, rid, payload_bytes)
        self._undo.append(undo)

    def commit(self) -> None:
        self._require_active()
        self.wal.append(self.txn_id, WalRecordType.COMMIT)
        self.state = TxnState.COMMITTED
        self._undo.clear()

    def abort(self) -> None:
        self._require_active()
        for undo in reversed(self._undo):
            undo()
        self._undo.clear()
        self.wal.append(self.txn_id, WalRecordType.ABORT)
        self.state = TxnState.ABORTED

    def _require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionError(
                f"transaction {self.txn_id} is {self.state.value}, not active"
            )


class TransactionManager:
    """Hands out transactions and owns the WAL.

    ``autocommit()`` is a context manager wrapping a single statement, which
    is how the executor runs DML issued outside an explicit transaction.
    """

    def __init__(self, counters: CostCounters):
        self.wal = WriteAheadLog(counters)
        self._next_txn_id = itertools.count(1)
        self.active: dict[int, Transaction] = {}

    def begin(self) -> Transaction:
        txn = Transaction(next(self._next_txn_id), self.wal)
        self.wal.append(txn.txn_id, WalRecordType.BEGIN)
        self.active[txn.txn_id] = txn
        return txn

    def finish(self, txn: Transaction, commit: bool = True) -> None:
        if commit:
            txn.commit()
        else:
            txn.abort()
        self.active.pop(txn.txn_id, None)

    def autocommit(self) -> "_Autocommit":
        return _Autocommit(self)


class _Autocommit:
    """Context manager: commit on clean exit, roll back on exception."""

    def __init__(self, manager: TransactionManager):
        self.manager = manager
        self.txn: Transaction | None = None

    def __enter__(self) -> Transaction:
        self.txn = self.manager.begin()
        return self.txn

    def __exit__(self, exc_type: type | None, exc: Any, tb: Any) -> bool:
        assert self.txn is not None
        if self.txn.state is TxnState.ACTIVE:
            self.manager.finish(self.txn, commit=exc_type is None)
        return False
