"""Write-ahead logging, transactions, and on-disk durability.

The update experiment (paper Figure 8) depends on the RDBMS-based systems
paying a transactional cost that MongoDB does not: every row mutation is
WAL-logged and committed, while the MongoDB baseline mutates documents with
no durability bookkeeping.  The paper found that Sinew's cheaper predicate
evaluation outweighed this overhead; reproducing that requires the overhead
to actually exist, which this module provides.

Two modes
---------
* **In-memory** (the default, ``directory=None``): the WAL is a record
  stream with byte accounting (record counts and bytes flow into the shared
  :class:`~repro.rdbms.cost.CostCounters` so the harness can model fsync
  latency).  Rollback is implemented with per-transaction undo entries
  applied in reverse order.  A process exit loses everything.
* **Durable** (``directory=<path>``): every record is additionally written
  to an on-disk *segment file* as a CRC32-framed, length-prefixed frame.
  Commits are fsync barriers (grouped: one fsync per
  ``group_commit_every`` commits); segments rotate at ``segment_bytes``
  and are deleted once a checkpoint makes them dead.  On reopen,
  :meth:`~repro.rdbms.database.Database.recover` replays the log from the
  last checkpoint -- ARIES-style redo of committed transactions, with
  uncommitted tails discarded and a torn final frame (partial write)
  detected via the length/CRC envelope and truncated.

Frame format (one WAL record)::

    +----------------+----------------+------------------------+
    | body length u32| CRC32(body) u32| body (pickled tuple)   |
    +----------------+----------------+------------------------+

The body is ``(lsn, txn_id, record_type, table, rid, payload_bytes,
payload)``; ``payload`` carries the physical redo image (the full row for
INSERT/UPDATE, the schema for DDL, a catalog delta for CATALOG records).
"""

from __future__ import annotations

import enum
import itertools
import os
import pickle
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from .cost import CostCounters
from .errors import DegradedError, TransactionError

#: Default size at which a durable WAL rotates to a fresh segment file.
DEFAULT_SEGMENT_BYTES = 512 * 1024

#: Durable segment files are named ``<seq:016d>.wal`` inside the WAL dir.
WAL_SUFFIX = ".wal"

_FRAME_HEADER = struct.Struct("<II")


class WalRecordType(enum.Enum):
    BEGIN = "begin"
    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"
    COMMIT = "commit"
    ABORT = "abort"
    # DDL redo records (durable mode): the physical schema must replay in
    # log order so later row images land in tables that exist again.
    CREATE_TABLE = "create_table"
    DROP_TABLE = "drop_table"
    ADD_COLUMN = "add_column"
    DROP_COLUMN = "drop_column"
    TRUNCATE = "truncate"
    #: An opaque upper-layer (Sinew catalog) delta, replayed via a callback.
    CATALOG = "catalog"


@dataclass(frozen=True)
class WalRecord:
    """One record in the write-ahead log."""

    lsn: int
    txn_id: int
    record_type: WalRecordType
    table: str | None = None
    rid: int | None = None
    payload_bytes: int = 0
    #: physical redo image (row tuple, DDL description, or catalog delta);
    #: only serialized to disk in durable mode
    payload: Any = None


def encode_frame(record: WalRecord) -> bytes:
    """Serialize one record into its length-prefixed, CRC-framed form."""
    body = pickle.dumps(
        (
            record.lsn,
            record.txn_id,
            record.record_type.value,
            record.table,
            record.rid,
            record.payload_bytes,
            record.payload,
        ),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    return _FRAME_HEADER.pack(len(body), zlib.crc32(body)) + body


def decode_frames(data: bytes) -> tuple[list[WalRecord], int | None]:
    """Decode consecutive frames from one segment's bytes.

    Returns ``(records, torn_offset)``: ``torn_offset`` is the byte
    position of the first incomplete or corrupt frame (a torn write --
    short header, short body, or CRC mismatch), or ``None`` when the
    segment decodes cleanly to its end.  Decoding stops at the first bad
    frame; anything after it is unreachable by construction (frames are
    appended strictly in order) and treated as garbage.
    """
    records: list[WalRecord] = []
    offset = 0
    total = len(data)
    while offset < total:
        if offset + _FRAME_HEADER.size > total:
            return records, offset
        length, crc = _FRAME_HEADER.unpack_from(data, offset)
        body_start = offset + _FRAME_HEADER.size
        body = data[body_start : body_start + length]
        if len(body) < length or zlib.crc32(body) != crc:
            return records, offset
        lsn, txn_id, type_value, table, rid, payload_bytes, payload = pickle.loads(body)
        records.append(
            WalRecord(
                lsn=lsn,
                txn_id=txn_id,
                record_type=WalRecordType(type_value),
                table=table,
                rid=rid,
                payload_bytes=payload_bytes,
                payload=payload,
            )
        )
        offset = body_start + length
    return records, None


@dataclass
class WalScanResult:
    """What :func:`scan_wal` found on disk (recovery-report surface)."""

    records: list[WalRecord] = field(default_factory=list)
    segments_scanned: int = 0
    frames_decoded: int = 0
    #: segment file name + byte offset of a torn final frame (if any)
    torn_segment: str | None = None
    torn_offset: int | None = None
    #: segments after a torn/corrupt frame, deleted as unreachable garbage
    segments_dropped: int = 0


def _segment_files(directory: Path) -> list[Path]:
    return sorted(p for p in directory.iterdir() if p.suffix == WAL_SUFFIX)


def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry (segment creation/rename durability)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fsync
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def scan_wal(directory: Path, truncate_torn: bool = True) -> WalScanResult:
    """Read every WAL segment in order, handling a torn final record.

    A torn frame ends the log: the file is truncated at the tear (when
    ``truncate_torn``) and any later segment files -- which cannot contain
    reachable records -- are deleted.
    """
    result = WalScanResult()
    segments = _segment_files(directory)
    torn_found = False
    for segment in segments:
        if torn_found:
            if truncate_torn:
                segment.unlink()
            result.segments_dropped += 1
            continue
        data = segment.read_bytes()
        records, torn_offset = decode_frames(data)
        result.segments_scanned += 1
        result.frames_decoded += len(records)
        result.records.extend(records)
        if torn_offset is not None:
            torn_found = True
            result.torn_segment = segment.name
            result.torn_offset = torn_offset
            if truncate_torn:
                with open(segment, "r+b") as handle:
                    handle.truncate(torn_offset)
                    os.fsync(handle.fileno())
    return result


class WriteAheadLog:
    """Append-only log with monotonically increasing LSNs.

    In durable mode every record is framed and written to the current
    segment file (flushed to the OS immediately, so an abrupt process death
    loses at most the final partially-written frame); COMMIT records are
    fsync barriers subject to group commit.  A durable WAL must be
    :meth:`activate`-d (normally by ``Database.recover``) before appending,
    so recovery always reads the log before new records interleave.
    """

    #: Fixed modelled overhead per WAL record (header, CRC, alignment);
    #: the cost counters use this regardless of the physical frame size so
    #: in-memory and durable runs report comparable ``wal_bytes``.
    RECORD_HEADER_BYTES = 26

    def __init__(
        self,
        counters: CostCounters,
        directory: str | Path | None = None,
        *,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        group_commit_every: int = 1,
    ):
        self.counters = counters
        self.directory = Path(directory) if directory is not None else None
        self.segment_bytes = max(1024, segment_bytes)
        self.group_commit_every = max(1, group_commit_every)
        #: full record history (in-memory mode only; durable logs live on
        #: disk and keep only the per-active-transaction index in memory)
        self.records: list[WalRecord] = []
        self._by_txn: dict[int, list[WalRecord]] = {}
        self._lsn = itertools.count(1)
        self._lock = threading.RLock()
        #: optional FaultInjector; fires ``wal.append`` / ``wal.fsync`` /
        #: ``wal.torn_write`` on the durable path
        self.faults = None
        # -- durable-mode state --------------------------------------------
        self._fh = None
        self._fh_bytes = 0
        self._segment_seq = 0
        self._commits_since_sync = 0
        self.last_lsn = 0
        self.total_records = 0
        self.commits = 0
        self.fsyncs = 0
        self.segments_created = 0
        self.bytes_written = 0
        # -- degraded (read-only) mode -------------------------------------
        # An OSError from a WAL write or fsync flips ``degraded``: the log
        # stops accepting records (ABORTs are bookkeeping-only), reads keep
        # working, and :meth:`try_recover` is the only way back.
        self.degraded = False
        self.degraded_reason: str | None = None
        self.degraded_since: float | None = None
        self.io_errors = 0
        self.last_io_error: str | None = None
        self.suppressed_aborts = 0
        self.degraded_recoveries = 0
        #: bytes of the live segment covered by the last successful fsync;
        #: anything beyond it is untrusted once an I/O error hits
        self._fh_synced = 0
        self._degraded_trim: tuple[Path, int] | None = None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # lifecycle (durable mode)
    # ------------------------------------------------------------------

    @property
    def durable(self) -> bool:
        return self.directory is not None

    @property
    def active(self) -> bool:
        """Whether the log accepts appends (always true in-memory)."""
        return self.directory is None or self._fh is not None

    def activate(self, next_lsn: int = 1) -> None:
        """Open the durable log for appending, continuing at ``next_lsn``.

        Called by recovery *after* the existing segments were scanned and
        any torn tail truncated; appending before activation raises, which
        is what makes "recover before write" an enforced invariant.
        """
        if self.directory is None:
            raise TransactionError("cannot activate an in-memory WAL")
        with self._lock:
            self._lsn = itertools.count(next_lsn)
            self.last_lsn = next_lsn - 1
            segments = _segment_files(self.directory)
            if segments:
                last = segments[-1]
                self._segment_seq = int(last.stem)
                size = last.stat().st_size
                if size < self.segment_bytes:
                    self._fh = open(last, "ab")
                    self._fh_bytes = size
                    self._fh_synced = size
                else:
                    self._open_segment(self._segment_seq + 1)
            else:
                self._open_segment(1)

    def _open_segment(self, seq: int) -> None:
        self._segment_seq = seq
        path = self.directory / f"{seq:016d}{WAL_SUFFIX}"
        self._fh = open(path, "ab")
        self._fh_bytes = self._fh.tell()
        self._fh_synced = self._fh_bytes
        self.segments_created += 1
        _fsync_dir(self.directory)

    def rotate(self) -> None:
        """Close the current segment and start a fresh one (checkpointing
        rotates first so every older segment becomes dead afterwards)."""
        with self._lock:
            if self._fh is None:
                return
            if self.degraded:
                raise DegradedError(
                    "WAL is in read-only degraded mode; cannot rotate",
                    reason=self.degraded_reason,
                )
            self._sync_locked()
            self._fh.close()
            self._open_segment(self._segment_seq + 1)

    def truncate_segments_before(self, seq: int) -> int:
        """Delete every segment numbered below ``seq``; returns the count."""
        if self.directory is None:
            return 0
        removed = 0
        with self._lock:
            for segment in _segment_files(self.directory):
                if int(segment.stem) < seq:
                    segment.unlink()
                    removed += 1
            if removed:
                _fsync_dir(self.directory)
        return removed

    @property
    def current_segment_seq(self) -> int:
        return self._segment_seq

    def sync(self) -> None:
        """Force an fsync barrier now (close/checkpoint path)."""
        with self._lock:
            if self._fh is not None and not self.degraded:
                self._sync_locked()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                if not self.degraded:
                    try:
                        self._sync_locked()
                    except DegradedError:
                        pass  # untrusted tail; recovery truncates via CRC
                try:
                    self._fh.close()
                except OSError:
                    pass
                self._fh = None

    def _sync_locked(self) -> None:
        if self.degraded:
            return
        try:
            if self.faults is not None:
                self.faults.fire("wal.fsync", lsn=self.last_lsn)
                self.faults.fire("wal.io_error", op="fsync", lsn=self.last_lsn)
            if self._fh is not None:
                self._fh.flush()
                os.fsync(self._fh.fileno())
        except OSError as error:
            raise self._enter_degraded_locked("fsync", error) from error
        self.fsyncs += 1
        self.counters.wal_fsyncs += 1
        self._commits_since_sync = 0
        self._fh_synced = self._fh_bytes

    def _enter_degraded_locked(self, op: str, error: OSError) -> DegradedError:
        """Record an I/O failure, flip into degraded mode, build the error.

        Returns (rather than raises) so call sites can ``raise ... from``
        the original ``OSError``.  Remembers the fsync-acknowledged prefix
        of the live segment: bytes past it may or may not have reached the
        disk, so :meth:`try_recover` truncates them before trusting the
        log again (otherwise a later crash-recovery could resurrect a
        commit whose fsync failed and whose effects were undone in memory).
        """
        self.io_errors += 1
        self.last_io_error = f"{op}: {error}"
        if not self.degraded:
            self.degraded = True
            self.degraded_reason = self.last_io_error
            self.degraded_since = time.time()
            if self._fh is not None:
                path = self.directory / f"{self._segment_seq:016d}{WAL_SUFFIX}"
                self._degraded_trim = (path, self._fh_synced)
        return DegradedError(
            f"WAL {op} failed ({error}); engine is read-only until recovery",
            reason=str(error),
        )

    def try_recover(self) -> bool:
        """Attempt to leave degraded mode; True when the log is read-write.

        Recovery must prove the disk is healthy again before any write is
        accepted: the untrusted tail of the failed segment (bytes past the
        last acknowledged fsync) is truncated away, then a fresh segment is
        opened and fsynced as a write probe.  Any of those steps failing
        leaves the log degraded and returns False, so operators can retry
        (``\\service recover``) until the underlying problem is fixed.
        """
        with self._lock:
            if not self.degraded:
                return True
            try:
                if self.faults is not None:
                    self.faults.fire("wal.io_error", op="recover")
                if self._fh is not None:
                    try:
                        self._fh.close()
                    except OSError:
                        pass
                    self._fh = None
                if self._degraded_trim is not None:
                    path, synced = self._degraded_trim
                    if path.exists():
                        with open(path, "r+b") as handle:
                            handle.truncate(synced)
                            handle.flush()
                            os.fsync(handle.fileno())
                self._open_segment(self._segment_seq + 1)
                self._fh.flush()
                os.fsync(self._fh.fileno())
            except OSError as error:
                self.io_errors += 1
                self.last_io_error = f"recover: {error}"
                return False
            self._degraded_trim = None
            self.degraded = False
            self.degraded_reason = None
            self.degraded_since = None
            self.degraded_recoveries += 1
            self._commits_since_sync = 0
            return True

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------

    def append(
        self,
        txn_id: int,
        record_type: WalRecordType,
        table: str | None = None,
        rid: int | None = None,
        payload_bytes: int = 0,
        payload: Any = None,
    ) -> WalRecord:
        with self._lock:
            if (
                self.durable
                and self.degraded
                and record_type is not WalRecordType.ABORT
            ):
                # Read-only degraded mode: no new work may enter the log.
                # ABORT falls through (bookkeeping-only, suppressed below)
                # so in-flight transactions can still undo cleanly.
                raise DegradedError(
                    "WAL is in read-only degraded mode; writes are rejected "
                    "until recovery",
                    reason=self.degraded_reason,
                )
            if self.durable and self.faults is not None:
                try:
                    self.faults.fire(
                        "wal.append",
                        record_type=record_type.value,
                        table=table,
                        txn_id=txn_id,
                    )
                except OSError as error:
                    raise self._enter_degraded_locked("append", error) from error
            record = WalRecord(
                lsn=next(self._lsn),
                txn_id=txn_id,
                record_type=record_type,
                table=table,
                rid=rid,
                payload_bytes=payload_bytes,
                payload=payload,
            )
            self.last_lsn = record.lsn
            self.total_records += 1
            self.counters.wal_records += 1
            self.counters.wal_bytes += self.RECORD_HEADER_BYTES + payload_bytes
            if not self.durable:
                self.records.append(record)
                self._by_txn.setdefault(txn_id, []).append(record)
                return record
            # Durable path: keep only *active* transactions indexed (the
            # log itself lives on disk and segments rotate out of memory).
            if record_type in (WalRecordType.COMMIT, WalRecordType.ABORT):
                self._by_txn.pop(txn_id, None)
            else:
                self._by_txn.setdefault(txn_id, []).append(record)
            if self.degraded:
                # Only ABORT reaches here while degraded (guard above); its
                # undo already ran in memory and recovery discards the
                # uncommitted transaction anyway, so skip the physical write.
                self.suppressed_aborts += 1
                return record
            self._write_frame(record)
            if record_type is WalRecordType.COMMIT:
                self.commits += 1
                self._commits_since_sync += 1
                if self._commits_since_sync >= self.group_commit_every:
                    self._sync_locked()
            return record

    def _write_frame(self, record: WalRecord) -> None:
        if self._fh is None:
            raise TransactionError(
                "durable WAL was not activated; run Database.recover() "
                "before writing"
            )
        frame = encode_frame(record)
        if self._fh_bytes and self._fh_bytes + len(frame) > self.segment_bytes:
            self.rotate()
        if record.record_type is WalRecordType.COMMIT and self.faults is not None:
            try:
                self.faults.fire("wal.torn_write", txn_id=record.txn_id)
            except BaseException:
                # Simulate the torn write this point exists to test: a
                # prefix of the commit frame reaches the OS, then we die.
                half = frame[: max(1, len(frame) // 2)]
                self._fh.write(half)
                self._fh.flush()
                self._fh_bytes += len(half)
                raise
        try:
            if self.faults is not None:
                self.faults.fire(
                    "wal.io_error", op="append", record_type=record.record_type.value
                )
            self._fh.write(frame)
            self._fh.flush()  # to the OS: an abrupt exit keeps whole frames
        except OSError as error:
            raise self._enter_degraded_locked("append", error) from error
        self._fh_bytes += len(frame)
        self.bytes_written += len(frame)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self.total_records

    def records_for(self, txn_id: int) -> list[WalRecord]:
        """Records of one transaction, via the per-transaction index.

        O(records of that transaction), not O(log length): abort/undo
        paths stay flat as the log grows.  In durable mode only *active*
        transactions are indexed (finished ones live in the segments, which
        rotate out of memory); the in-memory log keeps full history, which
        preserves the original post-commit introspection behaviour.
        """
        with self._lock:
            return list(self._by_txn.get(txn_id, ()))

    def segment_count(self) -> int:
        if self.directory is None:
            return 0
        return len(_segment_files(self.directory))

    def bytes_on_disk(self) -> int:
        if self.directory is None:
            return 0
        return sum(p.stat().st_size for p in _segment_files(self.directory))

    def status(self) -> dict[str, Any]:
        """Counters for ``SinewDB.status()`` / the shell's ``\\wal``."""
        return {
            "durable": self.durable,
            "records": self.total_records,
            "last_lsn": self.last_lsn,
            "commits": self.commits,
            "fsyncs": self.fsyncs,
            "group_commit_every": self.group_commit_every,
            "segments": self.segment_count(),
            "segment_bytes_cap": self.segment_bytes,
            "bytes_on_disk": self.bytes_on_disk(),
            "segments_created": self.segments_created,
            "degraded": self.degraded,
            "degraded_reason": self.degraded_reason,
            "io_errors": self.io_errors,
            "last_io_error": self.last_io_error,
            "suppressed_aborts": self.suppressed_aborts,
            "degraded_recoveries": self.degraded_recoveries,
        }


class TxnState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class Transaction:
    """A unit of atomic work.  Undo actions run in reverse on abort."""

    txn_id: int
    wal: WriteAheadLog
    state: TxnState = TxnState.ACTIVE
    _undo: list[Callable[[], None]] = field(default_factory=list)

    def log_insert(
        self,
        table: str,
        rid: int,
        payload_bytes: int,
        undo: Callable[[], None],
        payload: Any = None,
    ) -> None:
        self._require_active()
        self.wal.append(
            self.txn_id, WalRecordType.INSERT, table, rid, payload_bytes, payload
        )
        self._undo.append(undo)

    def log_update(
        self,
        table: str,
        rid: int,
        payload_bytes: int,
        undo: Callable[[], None],
        payload: Any = None,
    ) -> None:
        self._require_active()
        self.wal.append(
            self.txn_id, WalRecordType.UPDATE, table, rid, payload_bytes, payload
        )
        self._undo.append(undo)

    def log_delete(
        self,
        table: str,
        rid: int,
        payload_bytes: int,
        undo: Callable[[], None],
        payload: Any = None,
    ) -> None:
        self._require_active()
        self.wal.append(
            self.txn_id, WalRecordType.DELETE, table, rid, payload_bytes, payload
        )
        self._undo.append(undo)

    def log_catalog(self, payload: Any, payload_bytes: int = 0) -> None:
        """Log an upper-layer catalog delta (no undo: catalog publication
        is deliberately redo-only, see the loader's crash-ordering notes)."""
        self._require_active()
        self.wal.append(
            self.txn_id,
            WalRecordType.CATALOG,
            payload_bytes=payload_bytes,
            payload=payload,
        )

    def commit(self) -> None:
        self._require_active()
        self.wal.append(self.txn_id, WalRecordType.COMMIT)
        self.state = TxnState.COMMITTED
        self._undo.clear()

    def abort(self) -> None:
        self._require_active()
        for undo in reversed(self._undo):
            undo()
        self._undo.clear()
        self.wal.append(self.txn_id, WalRecordType.ABORT)
        self.state = TxnState.ABORTED

    def _require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionError(
                f"transaction {self.txn_id} is {self.state.value}, not active"
            )


class TransactionManager:
    """Hands out transactions and owns the WAL.

    ``autocommit()`` is a context manager wrapping a single statement, which
    is how the executor runs DML issued outside an explicit transaction.
    """

    def __init__(self, counters: CostCounters, wal: WriteAheadLog | None = None):
        self.wal = wal if wal is not None else WriteAheadLog(counters)
        #: guards txn-id allocation and the ``active`` dict: ``begin()``
        #: runs concurrently from service worker threads (explicit BEGIN,
        #: autocommit DML) and the materializer daemon's autocommit, and
        #: a duplicated txn_id would corrupt the WAL's per-txn index and
        #: recovery replay
        self._lock = threading.Lock()
        self.next_txn_id = 1
        self.active: dict[int, Transaction] = {}

    def reset_next_txn_id(self, next_id: int) -> None:
        """Continue transaction numbering after recovery."""
        with self._lock:
            self.next_txn_id = next_id

    def begin(self) -> Transaction:
        # the BEGIN frame is appended inside the allocation lock so WAL
        # order matches id order; the lock order manager -> WAL-RLock is
        # one-way (the WAL never calls back into the manager)
        with self._lock:
            txn_id = self.next_txn_id
            self.next_txn_id += 1
            txn = Transaction(txn_id, self.wal)
            self.wal.append(txn.txn_id, WalRecordType.BEGIN)
            self.active[txn.txn_id] = txn
        return txn

    def finish(self, txn: Transaction, commit: bool = True) -> None:
        # commit/abort run outside the lock (a commit may fsync); a txn
        # whose commit raises intentionally stays in ``active`` so the
        # checkpointer keeps skipping and recovery discards it.  The one
        # exception is a WAL I/O failure (degraded mode): the process
        # keeps serving reads, so leaving the txn active forever would
        # leak it -- instead its effects are undone in memory here and the
        # caller sees the DegradedError (the write is *not* durable).
        if commit:
            try:
                txn.commit()
            except DegradedError:
                if txn.state is TxnState.ACTIVE:
                    try:
                        txn.abort()  # ABORT record is suppressed while degraded
                    except DegradedError:
                        pass  # undo already ran; the record is advisory
                with self._lock:
                    self.active.pop(txn.txn_id, None)
                raise
        else:
            txn.abort()
        with self._lock:
            self.active.pop(txn.txn_id, None)

    def autocommit(self) -> "_Autocommit":
        return _Autocommit(self)


class _Autocommit:
    """Context manager: commit on clean exit, roll back on exception."""

    def __init__(self, manager: TransactionManager):
        self.manager = manager
        self.txn: Transaction | None = None

    def __enter__(self) -> Transaction:
        self.txn = self.manager.begin()
        return self.txn

    def __exit__(self, exc_type: type | None, exc: Any, tb: Any) -> bool:
        assert self.txn is not None
        if self.txn.state is TxnState.ACTIVE:
            self.manager.finish(self.txn, commit=exc_type is None)
        return False


# ----------------------------------------------------------------------
# checkpointing
# ----------------------------------------------------------------------

#: The checkpoint lives next to the ``wal/`` directory, written atomically
#: (tmp + fsync + rename) so a crash mid-checkpoint preserves the old one.
CHECKPOINT_FILE = "checkpoint.bin"
_CHECKPOINT_TMP = "checkpoint.tmp"
_CHECKPOINT_MAGIC = b"SNWCKPT1"


@dataclass
class CheckpointInfo:
    """Result of one :meth:`Checkpointer.write`."""

    lsn: int = 0
    bytes_written: int = 0
    segments_truncated: int = 0


class Checkpointer:
    """Atomic snapshot writer + dead-segment truncation.

    The *content* of a checkpoint is assembled by the owning database
    (heap pages from :mod:`~repro.rdbms.storage`, the Sinew catalog from
    :mod:`~repro.core.catalog` via the ``extra`` blob); this class owns the
    envelope: CRC-protected serialization, write-to-temp + fsync + atomic
    rename, and deleting WAL segments the new checkpoint made dead.
    Crash-ordering guarantees:

    * a crash before the rename leaves the previous checkpoint intact
      (recovery replays a longer WAL suffix);
    * a crash after the rename but before truncation leaves stale
      segments whose records recovery skips by LSN (the next checkpoint
      deletes them).
    """

    def __init__(self, directory: str | Path, counters: CostCounters | None = None):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.counters = counters
        self.faults = None
        self.checkpoints = 0
        self.last_checkpoint_lsn = 0
        self.segments_truncated = 0

    @property
    def path(self) -> Path:
        return self.directory / CHECKPOINT_FILE

    def write(self, state: dict, wal: WriteAheadLog) -> CheckpointInfo:
        """Persist ``state`` atomically, then truncate dead WAL segments.

        ``state`` must contain ``"lsn"``; every WAL record with an LSN at
        or below it is dead once the rename lands.  The WAL must have been
        rotated *before* the snapshot was taken (``Database.checkpoint``
        does this) so dead records and live records never share a segment.
        """
        info = CheckpointInfo(lsn=state["lsn"])
        body = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        blob = _CHECKPOINT_MAGIC + struct.pack("<I", zlib.crc32(body)) + body
        tmp = self.directory / _CHECKPOINT_TMP
        with open(tmp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        _fsync_dir(self.directory)
        info.bytes_written = len(blob)
        self.checkpoints += 1
        self.last_checkpoint_lsn = state["lsn"]
        if self.counters is not None:
            self.counters.checkpoints += 1
        if self.faults is not None:
            self.faults.fire("checkpoint.truncate", lsn=state["lsn"])
        info.segments_truncated = wal.truncate_segments_before(
            wal.current_segment_seq
        )
        self.segments_truncated += info.segments_truncated
        return info

    def load(self) -> dict | None:
        """Read the checkpoint back, or ``None`` when absent/corrupt.

        A corrupt checkpoint (bad magic or CRC) is treated as absent: the
        only way one arises is a crash racing the atomic rename at the
        filesystem level, and recovery then replays the whole WAL.
        """
        try:
            blob = self.path.read_bytes()
        except FileNotFoundError:
            return None
        if len(blob) < len(_CHECKPOINT_MAGIC) + 4:
            return None
        if blob[: len(_CHECKPOINT_MAGIC)] != _CHECKPOINT_MAGIC:
            return None
        (crc,) = struct.unpack_from("<I", blob, len(_CHECKPOINT_MAGIC))
        body = blob[len(_CHECKPOINT_MAGIC) + 4 :]
        if zlib.crc32(body) != crc:
            return None
        return pickle.loads(body)

    def status(self) -> dict[str, Any]:
        return {
            "checkpoints": self.checkpoints,
            "last_checkpoint_lsn": self.last_checkpoint_lsn,
            "segments_truncated": self.segments_truncated,
        }
