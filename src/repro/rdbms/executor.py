"""Morsel-driven parallel execution (shared worker pool + morsel math).

The scan-side operators split a table's row-id space into fixed-size
**morsels** (Leis et al., "Morsel-Driven Parallelism", SIGMOD 2014) and fan
the per-morsel work -- predicate evaluation, reservoir extraction, partial
sort runs, partial aggregation -- across a shared :class:`ExecutorPool` of
threads.  Results are gathered *in morsel order*, which makes the parallel
output row order identical to the serial scan order (morsels are contiguous
rid ranges, rids are allocated in append order).

Morsel size rationale: ~4k rows is large enough that per-morsel fixed costs
(installing a per-worker extraction context, compiling the pushed
expressions) are amortised to well under a percent of the morsel's row
work, and small enough that a benchmark-scale table still splits into more
morsels than workers, so the pool load-balances skewed predicates.

The pool is deliberately dumb: it owns threads and a stable-order map
primitive, nothing else.  Everything semantic (per-worker extraction
contexts, counter merging, SQL ordering guarantees) lives with the plan
operators in :mod:`repro.rdbms.plan_nodes`.

The **process lane** extends the same shape across the GIL: pickle-safe
task objects (rid ranges + serialized expression programs + a spill-file
reference for the heap pages) are shipped to a lazily-created
``ProcessPoolExecutor`` and gathered in task order.  The pool again stays
dumb -- what a task *means* is defined entirely by the submitted callable
(:func:`repro.rdbms.process_worker.run_process_task`).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import shutil
import sys
import tempfile
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Any, Callable, Sequence

from ..latching import TrackedLock
from .errors import ExecutionError

#: Rows per morsel.  See module docstring for the sizing argument.
MORSEL_ROWS = 4096

#: Floor for adaptive morsel sizing: below this, per-morsel fixed costs
#: (context install, expression compile, task pickling) stop amortising.
MIN_MORSEL_ROWS = 256


def effective_cpu_count() -> int:
    """The CPU budget actually available to *this process*.

    CI runners and containers routinely advertise more ``os.cpu_count()``
    cores than the process may use (cgroup quotas, affinity masks), so a
    blind ``min(cpu_count, 8)`` worker default oversubscribes them.
    Probe, in order: ``os.process_cpu_count`` (3.13+), the scheduler
    affinity mask, then plain ``os.cpu_count``.
    """
    probe = getattr(os, "process_cpu_count", None)
    if probe is not None:
        counted = probe()
        if counted:
            return int(counted)
    if hasattr(os, "sched_getaffinity"):
        try:
            mask = os.sched_getaffinity(0)
        except OSError:  # pragma: no cover - exotic platform
            mask = set()
        if mask:
            return len(mask)
    return os.cpu_count() or 1


def morsel_rows_for(n_rids: int, workers: int) -> int:
    """Adaptive morsel size: split benchmark-scale tables across workers.

    The fixed :data:`MORSEL_ROWS` is tuned for large tables; at bench
    scale (a few thousand rows) it yields a *single* morsel and therefore
    zero parallelism.  Target ~4 morsels per worker so the pool can
    load-balance skewed predicates, clamped to
    [:data:`MIN_MORSEL_ROWS`, :data:`MORSEL_ROWS`].
    """
    if n_rids <= 0 or workers <= 1:
        return MORSEL_ROWS
    target = -(-n_rids // (workers * 4))  # ceil division
    return max(MIN_MORSEL_ROWS, min(MORSEL_ROWS, target))


@dataclass(frozen=True)
class Morsel:
    """One contiguous rid range ``[start_rid, end_rid)`` of a heap table.

    The range is over *allocated* rids, so it may cover dead slots
    (deleted rows, recovery filler); the scan skips those.
    """

    index: int
    start_rid: int
    end_rid: int

    def __len__(self) -> int:
        return self.end_rid - self.start_rid


def partition_morsels(n_rids: int, morsel_rows: int = MORSEL_ROWS) -> list[Morsel]:
    """Split ``n_rids`` allocated row ids into contiguous morsels.

    An empty table yields no morsels; a table smaller than one morsel
    yields exactly one (covering the whole rid space).
    """
    if n_rids <= 0:
        return []
    if morsel_rows <= 0:
        raise ValueError(f"morsel_rows must be positive, got {morsel_rows}")
    return [
        Morsel(index, start, min(start + morsel_rows, n_rids))
        for index, start in enumerate(range(0, n_rids, morsel_rows))
    ]


class SpillStore:
    """Write-once pickle spill area shared with worker processes.

    The process lane cannot hand workers live ``HeapTable`` objects (they
    hold buffer-pool locks and counter references), so scan input is
    spilled once per ``(kind, token)`` to a pickle file that every worker
    process reads and caches by path.  Tokens embed a version/epoch, so a
    mutated table spills to a *new* path and workers never see stale rows;
    stale files are cleaned up with the pool at :meth:`ExecutorPool.shutdown`.
    """

    def __init__(self) -> None:
        self._dir: str | None = None
        self._written: set[str] = set()
        # Leaf mutex: guards directory creation + the written-set; never
        # held together with executor.pool.
        self._lock = TrackedLock("executor.spill")

    def path_for(self, kind: str, token: Any, builder: Callable[[], Any]) -> str:
        """Path of the spill file for ``(kind, token)``, writing it once.

        ``builder`` produces the picklable payload; it runs outside the
        lock (spilling a bench-scale table takes milliseconds, but there
        is no reason to serialize unrelated spills behind it).  Concurrent
        builders of the same token write identical bytes and race only on
        an atomic ``os.replace``.
        """
        digest = hashlib.sha1(repr((kind, token)).encode()).hexdigest()[:16]
        with self._lock:
            if self._dir is None:
                self._dir = tempfile.mkdtemp(prefix="repro-spill-")
            path = os.path.join(self._dir, f"{kind}-{digest}.pkl")
            if path in self._written:
                return path
        payload = pickle.dumps(builder(), protocol=pickle.HIGHEST_PROTOCOL)
        fd, tmp_path = tempfile.mkstemp(dir=self._dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp_path, path)
        except BaseException:
            if os.path.exists(tmp_path):  # pragma: no cover - cleanup path
                os.unlink(tmp_path)
            raise
        with self._lock:
            self._written.add(path)
        return path

    def cleanup(self) -> None:
        """Delete the spill directory (idempotent)."""
        with self._lock:
            directory, self._dir = self._dir, None
            self._written.clear()
        if directory is not None:
            shutil.rmtree(directory, ignore_errors=True)


def _package_root() -> str:
    """Directory that must be on ``sys.path`` for ``import repro``."""
    package_dir = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return os.path.dirname(package_dir)


class ExecutorPool:
    """A shared pool of worker threads for morsel-driven operators.

    ``workers == 1`` is the serial path: :meth:`map_morsels` runs inline on
    the calling thread and no threads are ever created.  Threads are
    created lazily on the first parallel query, so a database configured
    with workers > 1 that only ever runs serial-eligible queries pays
    nothing.

    The same object also owns the **process lane**: a lazily-spawned
    ``ProcessPoolExecutor`` (:meth:`map_tasks`) plus the :class:`SpillStore`
    its tasks read scan input from.  ``spawn`` is mandatory -- the engine
    runs a materializer daemon thread, and forking a multi-threaded
    process leaves cloned locks in undefined states.
    """

    def __init__(self, workers: int):
        self.workers = max(1, int(workers))
        self._executor: ThreadPoolExecutor | None = None
        self._process_executor: ProcessPoolExecutor | None = None
        # Leaf mutex guarding pool lifecycle + stats; named so the runtime
        # latch-order tracker can place it in the global order graph.
        self._lock = TrackedLock("executor.pool")
        self.spill = SpillStore()
        #: lifetime accounting (surfaced through ``SinewDB.status()``)
        self.parallel_queries = 0
        self.morsels_executed = 0
        self.process_queries = 0
        self.process_tasks = 0

    @property
    def parallel(self) -> bool:
        return self.workers > 1

    def map_morsels(
        self, fn: Callable[[Morsel], Any], morsels: Sequence[Morsel]
    ) -> list[Any]:
        """Apply ``fn`` to every morsel, returning results in morsel order.

        The stable gather is the ordering backbone of the parallel
        operators: whatever interleaving the workers ran in, the caller
        sees morsel 0's result first.  A worker exception is re-raised
        here after the remaining futures are drained.
        """
        if self.workers == 1 or len(morsels) <= 1:
            return [fn(morsel) for morsel in morsels]
        executor = self._ensure_executor()
        futures = [executor.submit(fn, morsel) for morsel in morsels]
        results: list[Any] = []
        error: BaseException | None = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if error is None:
                    error = exc
        if error is not None:
            raise error
        with self._lock:
            self.parallel_queries += 1
            self.morsels_executed += len(morsels)
        return results

    def map_tasks(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> list[Any]:
        """Ship picklable tasks to the process pool, results in task order.

        Unlike :meth:`map_morsels` there is no inline shortcut: even a
        single task crosses the process boundary, so the pickle round-trip
        and worker-side rebuild are exercised on every process-lane query
        (small tables in tests take the same code path as the benchmark).

        A worker process dying (OOM-killed, ``os._exit`` under fault
        injection) breaks the whole pool; that surfaces here as a clean
        :class:`ExecutionError` and the broken pool is discarded so the
        *next* query spawns a fresh one instead of failing forever.
        """
        if not tasks:
            return []
        executor = self._ensure_process_executor()
        futures = [executor.submit(fn, task) for task in tasks]
        results: list[Any] = []
        error: BaseException | None = None
        broken = False
        for future in futures:
            try:
                results.append(future.result())
            except BrokenProcessPool as exc:
                broken = True
                if error is None:
                    error = exc
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if error is None:
                    error = exc
        if broken:
            with self._lock:
                dead, self._process_executor = self._process_executor, None
            if dead is not None:
                dead.shutdown(wait=False)
            raise ExecutionError(
                "a parallel worker process died mid-query; the process pool "
                "was reset and the next query will spawn a fresh one",
                context="process-lane gather",
            ) from error
        if error is not None:
            raise error
        with self._lock:
            self.process_queries += 1
            self.process_tasks += len(tasks)
        return results

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="morsel-worker"
                )
            return self._executor

    def _ensure_process_executor(self) -> ProcessPoolExecutor:
        # Spawned children re-import the task module from scratch; make
        # sure they can resolve ``repro`` even when the parent got it from
        # a runtime sys.path entry rather than an installed package.
        root = _package_root()
        python_path = os.environ.get("PYTHONPATH", "")
        if root not in python_path.split(os.pathsep):
            os.environ["PYTHONPATH"] = (
                f"{root}{os.pathsep}{python_path}" if python_path else root
            )
        if root not in sys.path:  # pragma: no cover - defensive
            sys.path.insert(0, root)
        with self._lock:
            if self._process_executor is None:
                self._process_executor = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=get_context("spawn")
                )
            return self._process_executor

    def shutdown(self) -> None:
        """Join and release worker threads and processes (idempotent)."""
        with self._lock:
            executor, self._executor = self._executor, None
            process_executor, self._process_executor = self._process_executor, None
        if executor is not None:
            executor.shutdown(wait=True)
        if process_executor is not None:
            process_executor.shutdown(wait=True)
        self.spill.cleanup()

    def status(self) -> dict[str, int | bool]:
        return {
            "workers": self.workers,
            "started": self._executor is not None,
            "process_started": self._process_executor is not None,
            "parallel_queries": self.parallel_queries,
            "morsels_executed": self.morsels_executed,
            "process_queries": self.process_queries,
            "process_tasks": self.process_tasks,
        }
