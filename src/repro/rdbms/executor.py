"""Morsel-driven parallel execution (shared worker pool + morsel math).

The scan-side operators split a table's row-id space into fixed-size
**morsels** (Leis et al., "Morsel-Driven Parallelism", SIGMOD 2014) and fan
the per-morsel work -- predicate evaluation, reservoir extraction, partial
sort runs, partial aggregation -- across a shared :class:`ExecutorPool` of
threads.  Results are gathered *in morsel order*, which makes the parallel
output row order identical to the serial scan order (morsels are contiguous
rid ranges, rids are allocated in append order).

Morsel size rationale: ~4k rows is large enough that per-morsel fixed costs
(installing a per-worker extraction context, compiling the pushed
expressions) are amortised to well under a percent of the morsel's row
work, and small enough that a benchmark-scale table still splits into more
morsels than workers, so the pool load-balances skewed predicates.

The pool is deliberately dumb: it owns threads and a stable-order map
primitive, nothing else.  Everything semantic (per-worker extraction
contexts, counter merging, SQL ordering guarantees) lives with the plan
operators in :mod:`repro.rdbms.plan_nodes`.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..latching import TrackedLock

#: Rows per morsel.  See module docstring for the sizing argument.
MORSEL_ROWS = 4096


@dataclass(frozen=True)
class Morsel:
    """One contiguous rid range ``[start_rid, end_rid)`` of a heap table.

    The range is over *allocated* rids, so it may cover dead slots
    (deleted rows, recovery filler); the scan skips those.
    """

    index: int
    start_rid: int
    end_rid: int

    def __len__(self) -> int:
        return self.end_rid - self.start_rid


def partition_morsels(n_rids: int, morsel_rows: int = MORSEL_ROWS) -> list[Morsel]:
    """Split ``n_rids`` allocated row ids into contiguous morsels.

    An empty table yields no morsels; a table smaller than one morsel
    yields exactly one (covering the whole rid space).
    """
    if n_rids <= 0:
        return []
    if morsel_rows <= 0:
        raise ValueError(f"morsel_rows must be positive, got {morsel_rows}")
    return [
        Morsel(index, start, min(start + morsel_rows, n_rids))
        for index, start in enumerate(range(0, n_rids, morsel_rows))
    ]


class ExecutorPool:
    """A shared pool of worker threads for morsel-driven operators.

    ``workers == 1`` is the serial path: :meth:`map_morsels` runs inline on
    the calling thread and no threads are ever created.  Threads are
    created lazily on the first parallel query, so a database configured
    with workers > 1 that only ever runs serial-eligible queries pays
    nothing.
    """

    def __init__(self, workers: int):
        self.workers = max(1, int(workers))
        self._executor: ThreadPoolExecutor | None = None
        # Leaf mutex guarding pool lifecycle + stats; named so the runtime
        # latch-order tracker can place it in the global order graph.
        self._lock = TrackedLock("executor.pool")
        #: lifetime accounting (surfaced through ``SinewDB.status()``)
        self.parallel_queries = 0
        self.morsels_executed = 0

    @property
    def parallel(self) -> bool:
        return self.workers > 1

    def map_morsels(
        self, fn: Callable[[Morsel], Any], morsels: Sequence[Morsel]
    ) -> list[Any]:
        """Apply ``fn`` to every morsel, returning results in morsel order.

        The stable gather is the ordering backbone of the parallel
        operators: whatever interleaving the workers ran in, the caller
        sees morsel 0's result first.  A worker exception is re-raised
        here after the remaining futures are drained.
        """
        if self.workers == 1 or len(morsels) <= 1:
            return [fn(morsel) for morsel in morsels]
        executor = self._ensure_executor()
        futures = [executor.submit(fn, morsel) for morsel in morsels]
        results: list[Any] = []
        error: BaseException | None = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if error is None:
                    error = exc
        if error is not None:
            raise error
        with self._lock:
            self.parallel_queries += 1
            self.morsels_executed += len(morsels)
        return results

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="morsel-worker"
                )
            return self._executor

    def shutdown(self) -> None:
        """Join and release the worker threads (idempotent)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def status(self) -> dict[str, int | bool]:
        return {
            "workers": self.workers,
            "started": self._executor is not None,
            "parallel_queries": self.parallel_queries,
            "morsels_executed": self.morsels_executed,
        }
