"""Optimizer statistics: collection (ANALYZE) and selectivity estimation.

This module is the load-bearing wall for the paper's Table 2 experiment.
Sinew's whole argument for materializing hot attributes into physical
columns is that the RDBMS optimizer *can only see physical columns*:

* a predicate over a **physical column** is estimated from per-column
  statistics (null fraction, distinct count, most-common values, an
  equi-depth histogram), like PostgreSQL's ``pg_statistic``;
* a predicate over a **virtual column** reaches the engine as a call to an
  ``extract_key_*`` UDF, which the estimator cannot see through -- those
  predicates get a *fixed default row estimate*
  (:data:`DEFAULT_UDF_PREDICATE_ROWS`, the paper's "200 rows out of 10
  million"), regardless of the true selectivity.

The difference between these two paths is what flips aggregate strategies
and join orders in Table 2.
"""

from __future__ import annotations

import bisect
from collections import Counter
from dataclasses import dataclass, field
from typing import Any

from .expressions import (
    AnyPredicate,
    Between,
    BinaryOp,
    Coalesce,
    ColumnRef,
    Expr,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryOp,
    contains_function_call,
)
from .storage import HeapTable

#: Fixed output-row estimate for predicates the optimizer cannot analyse
#: (anything routed through a UDF).  The paper reports Postgres assuming
#: 200 rows out of 10 million for virtual-column predicates.
DEFAULT_UDF_PREDICATE_ROWS = 200

#: Default selectivities for analysable predicates on columns without
#: statistics (PostgreSQL's eqsel/ineqsel defaults).
DEFAULT_EQ_SELECTIVITY = 0.005
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_LIKE_SELECTIVITY = 0.05

#: Number of most-common values and histogram buckets kept per column.
N_MCVS = 20
N_HISTOGRAM_BUCKETS = 50


@dataclass
class ColumnStats:
    """Statistics for one physical column."""

    null_frac: float = 1.0
    n_distinct: int = 0
    mcv: dict[Any, float] = field(default_factory=dict)  # value -> frequency
    histogram: list[Any] = field(default_factory=list)  # equi-depth bounds
    min_value: Any = None
    max_value: Any = None

    @property
    def has_histogram(self) -> bool:
        return len(self.histogram) >= 2


@dataclass
class TableStats:
    """Statistics for one table: row count plus per-column details."""

    row_count: int = 0
    columns: dict[str, ColumnStats] = field(default_factory=dict)


def analyze_table(table: HeapTable) -> TableStats:
    """Compute full statistics for ``table`` (no sampling; tables here are
    benchmark-scale)."""
    stats = TableStats(row_count=len(table))
    if stats.row_count == 0:
        for column in table.schema:
            stats.columns[column.name] = ColumnStats()
        return stats

    per_column_values: list[list[Any]] = [[] for _ in table.schema]
    for _rid, row in table.scan():
        for index, value in enumerate(row):
            if value is not None and not isinstance(
                value, (list, dict, bytes, bytearray)
            ):
                per_column_values[index].append(value)

    for index, column in enumerate(table.schema):
        values = per_column_values[index]
        column_stats = ColumnStats()
        column_stats.null_frac = 1.0 - len(values) / stats.row_count
        if values:
            counts = Counter(values)
            column_stats.n_distinct = len(counts)
            most_common = counts.most_common(N_MCVS)
            column_stats.mcv = {
                value: count / stats.row_count for value, count in most_common
            }
            try:
                ordered = sorted(values)
            except TypeError:
                ordered = []
            if ordered:
                column_stats.min_value = ordered[0]
                column_stats.max_value = ordered[-1]
                column_stats.histogram = _equi_depth_bounds(
                    ordered, N_HISTOGRAM_BUCKETS
                )
        stats.columns[column.name] = column_stats
    return stats


def _equi_depth_bounds(ordered: list[Any], n_buckets: int) -> list[Any]:
    """Equi-depth histogram bounds over pre-sorted values."""
    if len(ordered) < 2:
        return []
    n_buckets = min(n_buckets, len(ordered) - 1)
    bounds = []
    for bucket in range(n_buckets + 1):
        position = round(bucket * (len(ordered) - 1) / n_buckets)
        bounds.append(ordered[position])
    return bounds


# ---------------------------------------------------------------------------
# Selectivity estimation
# ---------------------------------------------------------------------------


class SelectivityEstimator:
    """Estimates predicate selectivity against a set of table statistics.

    ``column_stats_for`` is a callable mapping a :class:`ColumnRef` to
    :class:`ColumnStats` or None (None = column unknown to the optimizer,
    e.g. a reference the binder could not map to a physical column).
    """

    def __init__(self, column_stats_for, total_rows: int):
        self.column_stats_for = column_stats_for
        self.total_rows = max(1, total_rows)

    def estimate(self, predicate: Expr | None) -> float:
        """Selectivity in [0, 1] of ``predicate``."""
        if predicate is None:
            return 1.0
        if contains_function_call(predicate):
            # The optimizer cannot see through UDFs: fixed row estimate.
            return min(1.0, DEFAULT_UDF_PREDICATE_ROWS / self.total_rows)
        return self._estimate(predicate)

    def _estimate(self, predicate: Expr) -> float:
        if isinstance(predicate, BinaryOp):
            if predicate.op == "AND":
                return self._estimate(predicate.left) * self._estimate(predicate.right)
            if predicate.op == "OR":
                left = self._estimate(predicate.left)
                right = self._estimate(predicate.right)
                return min(1.0, left + right - left * right)
            return self._estimate_comparison(predicate)
        if isinstance(predicate, UnaryOp) and predicate.op == "NOT":
            return max(0.0, 1.0 - self._estimate(predicate.operand))
        if isinstance(predicate, IsNull):
            return self._estimate_is_null(predicate)
        if isinstance(predicate, Between):
            selectivity = self._estimate_range(
                predicate.operand, predicate.low, predicate.high
            )
            return max(0.0, 1.0 - selectivity) if predicate.negated else selectivity
        if isinstance(predicate, InList):
            base = self._column_and_literal(predicate.operand, None)
            per_item = (
                self._equality_selectivity(base[0], None)
                if base
                else DEFAULT_EQ_SELECTIVITY
            )
            selectivity = min(1.0, per_item * len(predicate.items))
            return max(0.0, 1.0 - selectivity) if predicate.negated else selectivity
        if isinstance(predicate, Like):
            return (
                max(0.0, 1.0 - DEFAULT_LIKE_SELECTIVITY)
                if predicate.negated
                else DEFAULT_LIKE_SELECTIVITY
            )
        if isinstance(predicate, AnyPredicate):
            return DEFAULT_EQ_SELECTIVITY
        if isinstance(predicate, Literal):
            if predicate.value is True:
                return 1.0
            return 0.0
        if isinstance(predicate, Coalesce):
            return 0.5
        return 0.5

    def _estimate_comparison(self, comparison: BinaryOp) -> float:
        pair = self._column_and_literal(comparison.left, comparison.right)
        if pair is None:
            # column-to-column comparison (join predicates handled by the
            # planner separately) or literal-only: generic default.
            if comparison.op == "=":
                return DEFAULT_EQ_SELECTIVITY
            return DEFAULT_RANGE_SELECTIVITY
        stats, literal, flipped = pair
        op = comparison.op
        if flipped:
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
        if op == "=":
            return self._equality_selectivity(stats, literal)
        if op in ("<>", "!="):
            return max(0.0, 1.0 - self._equality_selectivity(stats, literal))
        return self._inequality_selectivity(stats, literal, op)

    def _column_and_literal(self, left: Expr, right: Expr | None):
        """Normalise ``col OP literal`` / ``literal OP col``.

        Returns ``(stats, literal_value, flipped)`` or None.  When called
        with ``right=None`` only the left side is checked for a column.
        """
        if isinstance(left, ColumnRef):
            stats = self.column_stats_for(left)
            if right is None:
                return (stats, None, False) if stats is not None else None
            if isinstance(right, Literal):
                return (stats, right.value, False) if stats is not None else None
        if right is not None and isinstance(right, ColumnRef) and isinstance(left, Literal):
            stats = self.column_stats_for(right)
            if stats is not None:
                return (stats, left.value, True)
        return None

    def _equality_selectivity(self, stats: ColumnStats | None, literal: Any) -> float:
        if stats is None or stats.n_distinct == 0:
            return DEFAULT_EQ_SELECTIVITY
        if literal is not None and literal in stats.mcv:
            return stats.mcv[literal]
        non_null = max(0.0, 1.0 - stats.null_frac)
        return min(1.0, non_null / stats.n_distinct)

    def _inequality_selectivity(
        self, stats: ColumnStats | None, literal: Any, op: str
    ) -> float:
        if stats is None or not stats.has_histogram or literal is None:
            return DEFAULT_RANGE_SELECTIVITY
        fraction_below = self._histogram_fraction_below(stats, literal)
        if op in ("<", "<="):
            selectivity = fraction_below
        else:
            selectivity = 1.0 - fraction_below
        non_null = max(0.0, 1.0 - stats.null_frac)
        return max(0.0, min(1.0, selectivity)) * non_null

    def _estimate_range(self, operand: Expr, low: Expr, high: Expr) -> float:
        if contains_function_call(operand):
            return min(1.0, DEFAULT_UDF_PREDICATE_ROWS / self.total_rows)
        if not isinstance(operand, ColumnRef):
            return DEFAULT_RANGE_SELECTIVITY
        stats = self.column_stats_for(operand)
        if (
            stats is None
            or not stats.has_histogram
            or not isinstance(low, Literal)
            or not isinstance(high, Literal)
        ):
            return DEFAULT_RANGE_SELECTIVITY
        below_low = self._histogram_fraction_below(stats, low.value)
        below_high = self._histogram_fraction_below(stats, high.value)
        non_null = max(0.0, 1.0 - stats.null_frac)
        return max(0.0, below_high - below_low) * non_null

    def _estimate_is_null(self, predicate: IsNull) -> float:
        if isinstance(predicate.operand, ColumnRef):
            stats = self.column_stats_for(predicate.operand)
            if stats is not None:
                if predicate.negated:
                    return max(0.0, 1.0 - stats.null_frac)
                return stats.null_frac
        return 0.5 if not predicate.negated else 0.5

    def _histogram_fraction_below(self, stats: ColumnStats, literal: Any) -> float:
        bounds = stats.histogram
        try:
            if literal <= bounds[0]:
                return 0.0
            if literal >= bounds[-1]:
                return 1.0
            position = bisect.bisect_left(bounds, literal)
        except TypeError:
            return DEFAULT_RANGE_SELECTIVITY
        n_buckets = len(bounds) - 1
        # linear interpolation within the bucket
        low_bound = bounds[position - 1]
        high_bound = bounds[position]
        if isinstance(literal, (int, float)) and high_bound != low_bound:
            within = (literal - low_bound) / (high_bound - low_bound)
        else:
            within = 0.5
        return (position - 1 + within) / n_buckets
