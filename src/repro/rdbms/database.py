"""The engine facade: an embedded relational database.

``Database`` ties the storage, transaction, planning and execution layers
together behind a DB-API-flavoured interface::

    db = Database("bench")
    db.execute("CREATE TABLE webrequests (url text, hits integer)")
    db.execute("INSERT INTO webrequests VALUES ('www.sample-site.com', 22)")
    result = db.execute("SELECT url FROM webrequests WHERE hits > 20")
    rows = result.rows

Sinew treats this object exactly the way the paper treats PostgreSQL: it
never modifies engine code, only creates tables, registers UDFs
(``create_function``), issues rewritten SQL, and reads EXPLAIN output.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Sequence

from .cost import CostCounters, DiskBudget, IoCostModel
from .executor import ExecutorPool, effective_cpu_count
from .errors import (
    CatalogError,
    DegradedError,
    ExecutionError,
    PlanningError,
    RecoveryError,
    TransactionError,
)
from .expressions import SchemaResolver, compile_expr
from .functions import FunctionRegistry
from .plan_nodes import ExecutionContext, PlanNode
from .planner import Planner
from .sql.ast import (
    AlterTableStatement,
    AnalyzeStatement,
    BeginStatement,
    ColumnDef,
    CommitStatement,
    CreateTableStatement,
    DeleteStatement,
    DropTableStatement,
    ExplainStatement,
    InsertStatement,
    RollbackStatement,
    SelectStatement,
    Statement,
    UpdateStatement,
)
from .sql.parser import parse
from .statistics import TableStats, analyze_table
from .storage import BufferPool, Column, HeapTable, Schema
from .transactions import (
    DEFAULT_SEGMENT_BYTES,
    Checkpointer,
    CheckpointInfo,
    Transaction,
    TransactionManager,
    WalRecord,
    WalRecordType,
    WriteAheadLog,
    scan_wal,
)
from .types import NullStorageModel, SqlType

#: Transaction id used for WAL records outside any user transaction (DDL
#: and standalone catalog deltas).  The engine has no DDL rollback -- an
#: ALTER inside an aborted session transaction stays applied -- so replay
#: treats this id as always committed, which reproduces that semantics.
DDL_TXN_ID = 0

#: Default work_mem, deliberately small so hash/sort strategy crossovers
#: happen at benchmark scale (PostgreSQL's default is 4 MB at paper scale).
DEFAULT_WORK_MEM_BYTES = 256 * 1024

#: Default buffer pool: 4096 pages (32 MiB) -- "everything in memory" for
#: small-scale runs; benches shrink it to create the I/O-bound regime.
DEFAULT_BUFFER_POOL_PAGES = 4096


def default_parallel_workers() -> int:
    """Default executor width: REPRO_PARALLEL_WORKERS, else the *effective*
    CPU count (<=8) -- affinity masks and cgroup quotas often grant fewer
    cores than ``os.cpu_count()`` advertises."""
    env = os.environ.get("REPRO_PARALLEL_WORKERS")
    if env:
        return max(1, int(env))
    return min(effective_cpu_count(), 8)


#: The executor lanes a database can be configured with.
EXECUTOR_LANES = ("serial", "thread", "process")


def default_executor_lane() -> str:
    """Default lane: REPRO_EXECUTOR_LANE, else the shared-memory threads."""
    env = os.environ.get("REPRO_EXECUTOR_LANE", "").strip().lower()
    if env:
        if env not in EXECUTOR_LANES:
            raise ValueError(
                f"REPRO_EXECUTOR_LANE must be one of {EXECUTOR_LANES}, got {env!r}"
            )
        return env
    return "thread"


@dataclass
class DatabaseConfig:
    """Tunables for one database instance."""

    work_mem_bytes: int = DEFAULT_WORK_MEM_BYTES
    buffer_pool_pages: int = DEFAULT_BUFFER_POOL_PAGES
    null_model: NullStorageModel = NullStorageModel.BITMAP
    disk_budget_bytes: int | None = None
    io_model: IoCostModel = field(default_factory=IoCostModel)
    #: durable-WAL tunables (only used when the database has a ``path``)
    wal_segment_bytes: int = DEFAULT_SEGMENT_BYTES
    #: fsync once per this many commits (group commit); 1 = every commit
    wal_group_commit: int = 1
    #: morsel-executor width; 1 = fully serial (no threads are created)
    parallel_workers: int = field(default_factory=default_parallel_workers)
    #: which executor lane parallel fragments run on: "serial" disables
    #: the morsel rewrite, "thread" shares memory under the GIL, and
    #: "process" ships pickled batch programs to a spawn pool (falling
    #: back to threads per fragment when expressions cannot pickle)
    executor_lane: str = field(default_factory=default_executor_lane)


class DbSession:
    """Per-connection transaction scope.

    Everything that can open or join a transaction is keyed on one of
    these.  The embedded single-caller API keeps working through the
    database's own default session; the service layer allocates one
    session per remote connection, so ``BEGIN`` in one connection never
    sees -- or blocks -- another connection's transaction.
    """

    __slots__ = ("name", "txn")

    def __init__(self, name: str = "default"):
        self.name = name
        #: the open session transaction, or None (autocommit per statement)
        self.txn: Transaction | None = None

    @property
    def in_transaction(self) -> bool:
        return self.txn is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging surface
        state = f"txn={self.txn.txn_id}" if self.txn else "autocommit"
        return f"DbSession({self.name!r}, {state})"


class QueryResult:
    """Rows plus metadata from one statement execution."""

    def __init__(
        self,
        columns: list[str] | None = None,
        rows: list[tuple] | None = None,
        rowcount: int = 0,
        plan_text: str | None = None,
        diagnostics: tuple = (),
        exec_stats: dict[str, Any] | None = None,
    ):
        self.columns = columns or []
        self.rows = rows or []
        self.rowcount = rowcount if rowcount else len(self.rows)
        self.plan_text = plan_text
        #: analysis warnings attached by the semantic analyzer (Sinew layer)
        self.diagnostics = tuple(diagnostics)
        #: per-query execution counters (extraction decodes/cache hits,
        #: udf calls, wall time); empty for non-SELECT statements
        self.exec_stats = exec_stats or {}

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self) -> Any:
        """First column of the first row (for aggregates)."""
        if not self.rows:
            return None
        return self.rows[0][0]

    def column(self, name_or_index: str | int) -> list[Any]:
        """All values of one output column."""
        if isinstance(name_or_index, str):
            index = self.columns.index(name_or_index)
        else:
            index = name_or_index
        return [row[index] for row in self.rows]


class Database:
    """An embedded relational database instance."""

    def __init__(
        self,
        name: str = "db",
        config: DatabaseConfig | None = None,
        *,
        path: str | Path | None = None,
        defer_recovery: bool = False,
    ):
        self.name = name
        self.config = config or DatabaseConfig()
        self.counters = CostCounters()
        self.disk = DiskBudget(self.config.disk_budget_bytes)
        self.buffer_pool = BufferPool(self.config.buffer_pool_pages, self.counters)
        self.functions = FunctionRegistry(self.counters)
        #: shared morsel-executor pool (threads are created lazily, and
        #: never when ``parallel_workers == 1``)
        self.executor_pool = ExecutorPool(self.config.parallel_workers)
        #: durability root (``<path>/wal/*.wal`` + ``<path>/checkpoint.bin``);
        #: None keeps the engine fully in-memory (the historical behaviour)
        self.path = Path(path) if path is not None else None
        self.checkpointer: Checkpointer | None = None
        wal: WriteAheadLog | None = None
        if self.path is not None:
            self.path.mkdir(parents=True, exist_ok=True)
            wal = WriteAheadLog(
                self.counters,
                self.path / "wal",
                segment_bytes=self.config.wal_segment_bytes,
                group_commit_every=self.config.wal_group_commit,
            )
            self.checkpointer = Checkpointer(self.path, self.counters)
        self.txn_manager = TransactionManager(self.counters, wal)
        self.tables: dict[str, HeapTable] = {}
        self.table_stats: dict[str, TableStats] = {}
        self._default_session = DbSession()
        #: optional FaultInjector threaded into every heap table
        self._faults = None
        #: True while recovery replays WAL records (suppresses re-logging)
        self._replaying = False
        #: stats dict from the last :meth:`recover` (None = fresh start)
        self.last_recovery: dict[str, Any] | None = None
        if self.path is not None and not defer_recovery:
            self.recover()

    # ------------------------------------------------------------------
    # DDL / catalog
    # ------------------------------------------------------------------

    @property
    def wal(self) -> WriteAheadLog:
        return self.txn_manager.wal

    def _log_ddl(
        self,
        record_type: WalRecordType,
        table: str | None = None,
        payload: Any = None,
    ) -> None:
        """Log a DDL redo record (durable mode only; no-op during replay).

        DDL is logged under :data:`DDL_TXN_ID` rather than the session
        transaction because the engine has no DDL undo -- schema changes
        survive a rollback, so replay must apply them unconditionally.
        """
        if self._replaying or not self.wal.durable:
            return
        self.wal.append(DDL_TXN_ID, record_type, table=table, payload=payload)

    def log_catalog(self, payload: Any, txn: Transaction | None = None) -> None:
        """Log an upper-layer catalog delta (Sinew's catalog publishes its
        state changes through this so recovery replays them in log order).

        With ``txn`` the record belongs to that transaction (discarded on
        crash-before-commit, exactly like the data it describes); without
        one it is logged as always-committed, for state flips that happen
        outside any data transaction (analyzer decisions, collection DDL).
        """
        if self._replaying or not self.wal.durable:
            return
        if txn is not None:
            txn.log_catalog(payload)
        else:
            self.wal.append(DDL_TXN_ID, WalRecordType.CATALOG, payload=payload)

    def create_table(self, name: str, columns: Sequence[tuple[str, SqlType]]) -> HeapTable:
        """Create a heap table (programmatic form of CREATE TABLE)."""
        if name in self.tables:
            raise CatalogError(f"table already exists: {name!r}")
        schema = Schema([Column(c_name, c_type) for c_name, c_type in columns])
        table = HeapTable(
            name,
            schema,
            self.counters,
            self.buffer_pool,
            self.disk,
            null_model=self.config.null_model,
        )
        table.faults = self._faults
        self.tables[name] = table
        self._log_ddl(
            WalRecordType.CREATE_TABLE,
            name,
            payload=[(c_name, c_type.value) for c_name, c_type in columns],
        )
        return table

    def attach_faults(self, injector) -> None:
        """Thread a fault injector (see :mod:`repro.testing.faults`) into
        every existing and future heap table, the WAL, and the
        checkpointer; ``None`` detaches."""
        self._faults = injector
        for table in self.tables.values():
            table.faults = injector
        self.wal.faults = injector
        if self.checkpointer is not None:
            self.checkpointer.faults = injector

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        if name not in self.tables:
            if if_exists:
                return
            raise CatalogError(f"no such table: {name!r}")
        self.tables[name].truncate()
        del self.tables[name]
        self.table_stats.pop(name, None)
        self._log_ddl(WalRecordType.DROP_TABLE, name)

    def alter_add_column(self, table_name: str, column_name: str, sql_type: SqlType) -> None:
        """ADD COLUMN with WAL logging (used by ALTER and the materializer)."""
        self.table(table_name).add_column(Column(column_name, sql_type))
        self._log_ddl(
            WalRecordType.ADD_COLUMN, table_name, payload=(column_name, sql_type.value)
        )

    def alter_drop_column(self, table_name: str, column_name: str) -> None:
        """DROP COLUMN with WAL logging (used by ALTER and the materializer)."""
        self.table(table_name).drop_column(column_name)
        self._log_ddl(WalRecordType.DROP_COLUMN, table_name, payload=column_name)

    def truncate_table(self, table_name: str) -> None:
        """TRUNCATE with WAL logging (used by catalog reflection)."""
        self.table(table_name).truncate()
        self._log_ddl(WalRecordType.TRUNCATE, table_name)

    def table(self, name: str) -> HeapTable:
        if name not in self.tables:
            raise CatalogError(f"no such table: {name!r}")
        return self.tables[name]

    def has_table(self, name: str) -> bool:
        return name in self.tables

    def create_function(
        self,
        name: str,
        fn: Callable[..., Any],
        return_type: SqlType,
        counts_as_udf: bool = True,
        volatile: bool = False,
        remote_spec: tuple[str, str] | None = None,
    ) -> None:
        """Register a UDF, like PostgreSQL's CREATE FUNCTION.

        ``volatile`` excludes the function from parallel morsel execution
        (PostgreSQL's PARALLEL UNSAFE).  ``remote_spec`` tells the process
        executor lane how a worker process can rebuild the function
        without pickling ``fn``; without one the function is thread-lane
        only (see :class:`repro.rdbms.functions.ScalarFunction`).
        """
        self.functions.register_scalar(
            name,
            fn,
            return_type,
            counts_as_udf,
            volatile=volatile,
            remote_spec=remote_spec,
        )

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    def analyze(self, table_name: str | None = None) -> None:
        """Refresh optimizer statistics for one table or all tables."""
        names = [table_name] if table_name is not None else list(self.tables)
        for name in names:
            self.table_stats[name] = analyze_table(self.table(name))

    def stats(self, table_name: str) -> TableStats | None:
        return self.table_stats.get(table_name)

    # ------------------------------------------------------------------
    # statement execution
    # ------------------------------------------------------------------

    def execute(self, sql: str, *, session: DbSession | None = None) -> QueryResult:
        """Parse and execute one SQL statement."""
        return self.execute_statement(parse(sql), session=session)

    def execute_statement(
        self,
        statement: Statement,
        *,
        analyze: bool = False,
        extraction_hint: int | None = None,
        use_extraction_cache: bool = True,
        session: DbSession | None = None,
    ) -> QueryResult:
        if isinstance(statement, SelectStatement):
            return self._execute_select(
                statement,
                analyze=analyze,
                extraction_hint=extraction_hint,
                use_extraction_cache=use_extraction_cache,
            )
        if isinstance(statement, ExplainStatement):
            plan = self._plan(statement.inner)
            return QueryResult(plan_text=plan.explain())
        if isinstance(statement, InsertStatement):
            return self._execute_insert(statement, session=session)
        if isinstance(statement, UpdateStatement):
            return self._execute_update(statement, session=session)
        if isinstance(statement, DeleteStatement):
            return self._execute_delete(statement, session=session)
        if isinstance(statement, CreateTableStatement):
            return self._execute_create_table(statement)
        if isinstance(statement, DropTableStatement):
            self.drop_table(statement.table, statement.if_exists)
            return QueryResult()
        if isinstance(statement, AlterTableStatement):
            return self._execute_alter(statement)
        if isinstance(statement, AnalyzeStatement):
            self.analyze(statement.table)
            return QueryResult()
        if isinstance(statement, BeginStatement):
            self._begin(session)
            return QueryResult()
        if isinstance(statement, CommitStatement):
            self._commit(session)
            return QueryResult()
        if isinstance(statement, RollbackStatement):
            self._rollback(session)
            return QueryResult()
        raise PlanningError(f"unsupported statement type: {type(statement).__name__}")

    def explain(self, sql: str) -> str:
        """EXPLAIN helper returning the plan text for a SELECT."""
        statement = parse(sql)
        if isinstance(statement, ExplainStatement):
            statement = statement.inner
        if not isinstance(statement, SelectStatement):
            raise PlanningError("EXPLAIN supports only SELECT statements")
        return self._plan(statement).explain()

    # -- SELECT ----------------------------------------------------------

    def _plan(self, statement: SelectStatement) -> PlanNode:
        planner = Planner(
            self.tables,
            self.table_stats,
            self.functions,
            self.config.work_mem_bytes,
            parallel_workers=self.config.parallel_workers,
            executor_pool=self.executor_pool,
            executor_lane=self.config.executor_lane,
        )
        return planner.plan_select(statement)

    def _execute_select(
        self,
        statement: SelectStatement,
        *,
        analyze: bool = False,
        extraction_hint: int | None = None,
        use_extraction_cache: bool = True,
    ) -> QueryResult:
        plan = self._plan(statement)
        context = self.execution_context(
            analyze=analyze,
            extraction_hint=extraction_hint,
            use_extraction_cache=use_extraction_cache,
        )
        udf_calls_before = self.counters.udf_calls
        started = time.perf_counter()
        self.functions.begin_query(context)
        try:
            rows = list(plan.run(context))
        finally:
            self.functions.end_query(context)
        elapsed = time.perf_counter() - started
        context.extract_stats.udf_calls = self.counters.udf_calls - udf_calls_before
        columns = [name for _qualifier, name in plan.output_columns]
        exec_stats: dict[str, Any] = dict(context.extract_stats.as_dict())
        exec_stats["execution_seconds"] = elapsed
        exec_stats["rows"] = len(rows)
        parallel = context.parallel_summary()
        if parallel is not None:
            exec_stats.update(parallel)
        if analyze:
            plan_text = self._render_analyze(plan, context, elapsed, len(rows))
        else:
            plan_text = plan.explain()
        return QueryResult(
            columns=columns, rows=rows, plan_text=plan_text, exec_stats=exec_stats
        )

    @staticmethod
    def _render_analyze(
        plan: PlanNode, context: ExecutionContext, elapsed: float, n_rows: int
    ) -> str:
        lines = plan.explain_analyze_lines(context)
        parallel = context.parallel_summary()
        if parallel is not None:
            lines.append(
                f"Parallel: workers={parallel['workers']} "
                f"morsels={parallel['morsels']} "
                f"lane={parallel['lane']}"
            )
            for worker in parallel["per_worker"]:
                lines.append(
                    f"  Worker {worker['worker']}: rows={worker['rows']} "
                    f"morsels={worker['morsels']} "
                    f"header_decodes={worker['header_decodes']} "
                    f"cache_hits={worker['header_cache_hits']} "
                    f"udf_calls={worker['udf_calls']}"
                )
        lines.append(context.extract_stats.summary())
        if context.extraction_hint:
            lines.append(
                f"Extraction keys per row: {context.extraction_hint} (multi-key)"
            )
        lines.append(f"Execution time: {elapsed * 1000:.3f} ms ({n_rows} rows)")
        return "\n".join(lines)

    def execution_context(self, **options: Any) -> ExecutionContext:
        return ExecutionContext(
            self.counters,
            self.functions,
            self.disk,
            self.config.work_mem_bytes,
            **options,
        )

    # -- DML --------------------------------------------------------------

    def _execute_insert(
        self, statement: InsertStatement, session: DbSession | None = None
    ) -> QueryResult:
        table = self.table(statement.table)
        resolver = SchemaResolver([], self.functions)
        rows_to_insert: list[tuple] = []
        for value_row in statement.rows:
            values = [compile_expr(expr, resolver)(()) for expr in value_row]
            rows_to_insert.append(
                self._shape_row(table, statement.columns, values)
            )
        with self._dml_txn(session) as txn:
            for row in rows_to_insert:
                self._insert_row(table, row, txn)
        return QueryResult(rowcount=len(rows_to_insert))

    def insert_rows(
        self, table_name: str, rows: Sequence[tuple], txn: Transaction | None = None
    ) -> int:
        """Bulk append (used by loaders); one transaction for the batch.

        Pass ``txn`` to make the batch part of a caller-managed transaction
        (the Sinew loader does, so its catalog delta and heap rows commit
        atomically).
        """
        table = self.table(table_name)
        if txn is not None:
            for row in rows:
                self._insert_row(table, tuple(row), txn)
        else:
            with self._dml_txn() as dml:
                for row in rows:
                    self._insert_row(table, tuple(row), dml)
        return len(rows)

    def _insert_row(self, table: HeapTable, row: tuple, txn: Transaction) -> int:
        rid = table.insert(row)
        txn.log_insert(
            table.name,
            rid,
            table.tuple_bytes(row),
            undo=lambda: table.delete(rid),
            payload=row,
        )
        return rid

    def _shape_row(
        self,
        table: HeapTable,
        columns: tuple[str, ...] | None,
        values: list[Any],
    ) -> tuple:
        if columns is None:
            if len(values) != len(table.schema):
                raise ExecutionError(
                    f"INSERT arity mismatch for table {table.name!r}"
                )
            return tuple(values)
        if len(columns) != len(values):
            raise ExecutionError("INSERT column list / VALUES arity mismatch")
        row: list[Any] = [None] * len(table.schema)
        for name, value in zip(columns, values):
            row[table.schema.position_of(name)] = value
        return tuple(row)

    def _execute_update(
        self, statement: UpdateStatement, session: DbSession | None = None
    ) -> QueryResult:
        table = self.table(statement.table)
        resolver = SchemaResolver(
            [(statement.table, c.name) for c in table.schema], self.functions
        )
        predicate = (
            compile_expr(statement.where, resolver)
            if statement.where is not None
            else None
        )
        assignments: list[tuple[int, Callable]] = []
        for name, expr in statement.assignments:
            position = table.schema.position_of(name)
            assignments.append((position, compile_expr(expr, resolver)))

        updated = 0
        with self._dml_txn(session) as txn:
            # Two phases so an UPDATE never observes its own writes.
            matches: list[tuple[int, tuple]] = []
            for rid, row in table.scan():
                if predicate is None or predicate(row) is True:
                    matches.append((rid, row))
            for rid, row in matches:
                new_row = list(row)
                for position, value_fn in assignments:
                    new_row[position] = value_fn(row)
                replacement = tuple(new_row)
                old = table.update(rid, replacement)
                txn.log_update(
                    table.name,
                    rid,
                    table.tuple_bytes(replacement),
                    undo=lambda rid=rid, old=old: table.update(rid, old),
                    payload=replacement,
                )
                updated += 1
        return QueryResult(rowcount=updated)

    def _execute_delete(
        self, statement: DeleteStatement, session: DbSession | None = None
    ) -> QueryResult:
        table = self.table(statement.table)
        resolver = SchemaResolver(
            [(statement.table, c.name) for c in table.schema], self.functions
        )
        predicate = (
            compile_expr(statement.where, resolver)
            if statement.where is not None
            else None
        )
        deleted = 0
        with self._dml_txn(session) as txn:
            victims = [
                rid
                for rid, row in table.scan()
                if predicate is None or predicate(row) is True
            ]
            for rid in victims:
                old = table.delete(rid)
                txn.log_delete(
                    table.name,
                    rid,
                    table.tuple_bytes(old),
                    undo=lambda rid=rid, old=old: table.undo_delete(rid, old),
                )
                deleted += 1
        return QueryResult(rowcount=deleted)

    # -- DDL ----------------------------------------------------------------

    def _execute_create_table(self, statement: CreateTableStatement) -> QueryResult:
        if statement.table in self.tables:
            if statement.if_not_exists:
                return QueryResult()
            raise CatalogError(f"table already exists: {statement.table!r}")
        self.create_table(
            statement.table,
            [(c.name, c.sql_type) for c in statement.columns],
        )
        return QueryResult()

    def _execute_alter(self, statement: AlterTableStatement) -> QueryResult:
        if statement.action == "add":
            assert statement.sql_type is not None
            self.alter_add_column(
                statement.table, statement.column_name, statement.sql_type
            )
        elif statement.action == "drop":
            self.alter_drop_column(statement.table, statement.column_name)
        else:  # pragma: no cover - parser prevents this
            raise PlanningError(f"unknown ALTER action {statement.action!r}")
        return QueryResult()

    # ------------------------------------------------------------------
    # durability: recovery, checkpointing, lifecycle
    # ------------------------------------------------------------------

    def recover(
        self,
        extra_restore: Callable[[Any], None] | None = None,
        catalog_apply: Callable[[Any], None] | None = None,
    ) -> dict[str, Any] | None:
        """Rebuild state from disk: checkpoint image + WAL redo.

        Protocol (ARIES redo-only -- undo is unnecessary because rollbacks
        apply compensating heap writes at runtime and uncommitted work is
        simply never redone):

        1. load the checkpoint (if any) and restore heap tables from it;
        2. scan the WAL segments, truncating a torn final frame;
        3. classify transactions: a txn is committed iff its COMMIT record
           survived (DDL/standalone-catalog records are always committed);
        4. replay records with ``lsn > checkpoint_lsn`` in log order --
           committed data/DDL records are redone, uncommitted INSERTs burn
           their row id as a dead slot so later rids stay aligned, and
           everything else from uncommitted transactions is discarded;
        5. resume LSN/txn-id counters past everything seen and activate
           the WAL for appending.

        ``extra_restore`` receives the checkpoint's opaque ``extra`` blob
        (the Sinew catalog); ``catalog_apply`` receives each committed
        CATALOG record's payload in log order.
        """
        if self.path is None:
            return None
        if self.tables or self.wal.active:
            raise RecoveryError("recover() must run on a freshly opened database")
        assert self.checkpointer is not None
        checkpoint_lsn = 0
        next_txn_id = 1
        checkpoint = self.checkpointer.load()
        self._replaying = True
        try:
            if checkpoint is not None:
                checkpoint_lsn = checkpoint["lsn"]
                next_txn_id = checkpoint.get("next_txn_id", 1)
                for table_name, table_state in checkpoint["tables"].items():
                    table = self.create_table(
                        table_name,
                        [(n, SqlType(v)) for n, v in table_state["columns"]],
                    )
                    table.restore_state(table_state)
                if extra_restore is not None:
                    extra_restore(checkpoint.get("extra"))
            scan = scan_wal(self.wal.directory)
            # Stale records at or below the checkpoint LSN can exist when a
            # crash hit between the checkpoint rename and segment
            # truncation; their effects are already in the snapshot.
            records = [r for r in scan.records if r.lsn > checkpoint_lsn]
            committed = {DDL_TXN_ID}
            for record in records:
                if record.record_type is WalRecordType.COMMIT:
                    committed.add(record.txn_id)
            replayed = 0
            discarded = 0
            for record in records:
                if self._replay_record(
                    record, record.txn_id in committed, catalog_apply
                ):
                    replayed += 1
                elif record.record_type not in (
                    WalRecordType.BEGIN,
                    WalRecordType.COMMIT,
                    WalRecordType.ABORT,
                ):
                    discarded += 1
        finally:
            self._replaying = False
        max_lsn = max([checkpoint_lsn] + [r.lsn for r in scan.records])
        max_txn = max([next_txn_id - 1] + [r.txn_id for r in records])
        self.txn_manager.reset_next_txn_id(max_txn + 1)
        self.checkpointer.last_checkpoint_lsn = checkpoint_lsn
        self.wal.activate(max_lsn + 1)
        self.analyze()
        txns = {r.txn_id for r in records if r.txn_id != DDL_TXN_ID}
        self.last_recovery = {
            "had_checkpoint": checkpoint is not None,
            "checkpoint_lsn": checkpoint_lsn,
            "segments_scanned": scan.segments_scanned,
            "frames_decoded": scan.frames_decoded,
            "records_replayed": replayed,
            "records_discarded": discarded,
            "txns_committed": len(committed & txns),
            "txns_discarded": len(txns - committed),
            "torn_segment": scan.torn_segment,
            "torn_offset": scan.torn_offset,
            "segments_dropped": scan.segments_dropped,
        }
        return self.last_recovery

    def _replay_record(
        self,
        record: WalRecord,
        committed: bool,
        catalog_apply: Callable[[Any], None] | None,
    ) -> bool:
        """Redo one WAL record; returns True when it mutated state."""
        rt = record.record_type
        if rt in (WalRecordType.BEGIN, WalRecordType.COMMIT, WalRecordType.ABORT):
            return False
        if rt is WalRecordType.INSERT:
            table = self.tables.get(record.table)
            if table is None:
                # the table was dropped later in the log; nothing to align
                return False
            if committed:
                if record.payload is None:
                    raise RecoveryError(
                        f"committed INSERT at lsn {record.lsn} carries no row image"
                    )
                rid = table.insert(tuple(record.payload))
            else:
                # Uncommitted/aborted insert: the row must not reappear but
                # its rid must stay consumed so later records still align.
                rid = table.alloc_dead_slot()
            if rid != record.rid:
                raise RecoveryError(
                    f"row id drift replaying {record.table!r}: log says "
                    f"{record.rid}, heap allocated {rid} (lsn {record.lsn})"
                )
            return committed
        if not committed:
            # Uncommitted UPDATE/DELETE/CATALOG: skipping *is* the undo --
            # compensating writes were never logged, so the pre-images from
            # the checkpoint / earlier committed records remain in place.
            return False
        if rt is WalRecordType.UPDATE:
            table = self.tables.get(record.table)
            if table is None or record.payload is None:
                return False
            table.update(record.rid, tuple(record.payload))
            return True
        if rt is WalRecordType.DELETE:
            table = self.tables.get(record.table)
            if table is None:
                return False
            table.delete(record.rid)
            return True
        if rt is WalRecordType.CREATE_TABLE:
            if record.table not in self.tables:
                self.create_table(
                    record.table,
                    [(n, SqlType(v)) for n, v in record.payload],
                )
            return True
        if rt is WalRecordType.DROP_TABLE:
            self.drop_table(record.table, if_exists=True)
            return True
        if rt is WalRecordType.ADD_COLUMN:
            table = self.tables.get(record.table)
            if table is not None:
                name, type_value = record.payload
                if name not in table.schema:
                    table.add_column(Column(name, SqlType(type_value)))
            return True
        if rt is WalRecordType.DROP_COLUMN:
            table = self.tables.get(record.table)
            if table is not None and record.payload in table.schema:
                table.drop_column(record.payload)
            return True
        if rt is WalRecordType.TRUNCATE:
            table = self.tables.get(record.table)
            if table is not None:
                table.truncate()
            return True
        if rt is WalRecordType.CATALOG:
            if catalog_apply is not None:
                catalog_apply(record.payload)
            return True
        return False  # pragma: no cover - all record types handled above

    def checkpoint(self, extra: Any = None) -> CheckpointInfo:
        """Snapshot every heap table (+ ``extra``) and truncate dead WAL.

        Ordering: fsync + rotate the WAL first, so the snapshot LSN is the
        exact boundary -- everything at or below it is inside the snapshot
        and lives only in segments the checkpoint then deletes; everything
        above it starts in the fresh segment.  Callers must quiesce writers
        first (the Sinew layer holds the catalog's exclusive latch).
        """
        if self.path is None or self.checkpointer is None:
            raise TransactionError("an in-memory database cannot checkpoint")
        if not self.wal.active:
            raise TransactionError("recover() must run before checkpoint()")
        if self.wal.degraded:
            raise DegradedError(
                "cannot checkpoint: WAL is in read-only degraded mode",
                reason=self.wal.degraded_reason,
            )
        if self.txn_manager.active:
            # session transactions live in txn_manager.active too, so this
            # covers every connection's open BEGIN, not just the default's
            raise TransactionError("cannot checkpoint with transactions in flight")
        wal = self.wal
        wal.sync()
        wal.rotate()
        lsn = wal.last_lsn
        if self._faults is not None:
            self._faults.fire("checkpoint.pages", lsn=lsn)
        tables_state = {
            name: table.snapshot_state() for name, table in self.tables.items()
        }
        if self._faults is not None:
            self._faults.fire("checkpoint.catalog", lsn=lsn)
        state = {
            "lsn": lsn,
            "next_txn_id": self.txn_manager.next_txn_id,
            "tables": tables_state,
            "extra": extra,
        }
        return self.checkpointer.write(state, wal)

    def close(self, checkpoint: bool = True) -> None:
        """Release worker threads; flush and close the durable log."""
        self.executor_pool.shutdown()
        if self.path is None:
            return
        if checkpoint and self.wal.active and not self.wal.degraded:
            self.checkpoint()
        self.wal.close()

    def wal_status(self) -> dict[str, Any]:
        """WAL + checkpoint + last-recovery counters (status surface)."""
        status = self.wal.status()
        if self.checkpointer is not None:
            status.update(self.checkpointer.status())
        status["last_recovery"] = self.last_recovery
        return status

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------

    def create_session(self, name: str = "session") -> DbSession:
        """Allocate an independent transaction scope (one per connection)."""
        return DbSession(name)

    def _begin(self, session: DbSession | None = None) -> None:
        session = session or self._default_session
        if session.txn is not None:
            raise TransactionError(
                f"session {session.name!r} already has a transaction in progress"
            )
        session.txn = self.txn_manager.begin()

    def _commit(self, session: DbSession | None = None) -> None:
        session = session or self._default_session
        if session.txn is None:
            raise TransactionError("no transaction in progress")
        self.txn_manager.finish(session.txn, commit=True)
        session.txn = None

    def _rollback(self, session: DbSession | None = None) -> None:
        session = session or self._default_session
        if session.txn is None:
            raise TransactionError("no transaction in progress")
        self.txn_manager.finish(session.txn, commit=False)
        session.txn = None

    def abort_session(self, session: DbSession) -> bool:
        """Roll back a session's open transaction, if any.

        The service layer's disconnect path: a client that dies mid-
        transaction must never leave its writes pending (or its undo
        chain pinned) in the shared engine.  Returns True when there was
        a transaction to abort.
        """
        if session.txn is None:
            return False
        self.txn_manager.finish(session.txn, commit=False)
        session.txn = None
        return True

    def _dml_txn(self, session: DbSession | None = None):
        """Session transaction when open, else per-statement autocommit."""
        session = session or self._default_session
        if session.txn is not None:
            return _NoopTxnContext(session.txn)
        return self.txn_manager.autocommit()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def total_table_bytes(self) -> int:
        """Total modelled on-disk size of every table (Table 3 metric)."""
        return sum(table.total_bytes for table in self.tables.values())

    def modelled_io_seconds(self) -> float:
        return self.config.io_model.modelled_io_seconds(self.counters)


class _NoopTxnContext:
    """Adapter exposing an already-open transaction as a context manager."""

    def __init__(self, txn: Transaction):
        self.txn = txn

    def __enter__(self) -> Transaction:
        return self.txn

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False
