"""The engine facade: an embedded relational database.

``Database`` ties the storage, transaction, planning and execution layers
together behind a DB-API-flavoured interface::

    db = Database("bench")
    db.execute("CREATE TABLE webrequests (url text, hits integer)")
    db.execute("INSERT INTO webrequests VALUES ('www.sample-site.com', 22)")
    result = db.execute("SELECT url FROM webrequests WHERE hits > 20")
    rows = result.rows

Sinew treats this object exactly the way the paper treats PostgreSQL: it
never modifies engine code, only creates tables, registers UDFs
(``create_function``), issues rewritten SQL, and reads EXPLAIN output.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from .cost import CostCounters, DiskBudget, IoCostModel
from .errors import (
    CatalogError,
    ExecutionError,
    PlanningError,
    TransactionError,
)
from .expressions import ColumnRef, Expr, SchemaResolver, compile_expr
from .functions import FunctionRegistry
from .plan_nodes import ExecutionContext, PlanNode
from .planner import Planner
from .sql.ast import (
    AlterTableStatement,
    AnalyzeStatement,
    BeginStatement,
    ColumnDef,
    CommitStatement,
    CreateTableStatement,
    DeleteStatement,
    DropTableStatement,
    ExplainStatement,
    InsertStatement,
    RollbackStatement,
    SelectStatement,
    Statement,
    UpdateStatement,
)
from .sql.parser import parse
from .statistics import TableStats, analyze_table
from .storage import BufferPool, Column, HeapTable, Schema
from .transactions import Transaction, TransactionManager
from .types import NullStorageModel, SqlType

#: Default work_mem, deliberately small so hash/sort strategy crossovers
#: happen at benchmark scale (PostgreSQL's default is 4 MB at paper scale).
DEFAULT_WORK_MEM_BYTES = 256 * 1024

#: Default buffer pool: 4096 pages (32 MiB) -- "everything in memory" for
#: small-scale runs; benches shrink it to create the I/O-bound regime.
DEFAULT_BUFFER_POOL_PAGES = 4096


@dataclass
class DatabaseConfig:
    """Tunables for one database instance."""

    work_mem_bytes: int = DEFAULT_WORK_MEM_BYTES
    buffer_pool_pages: int = DEFAULT_BUFFER_POOL_PAGES
    null_model: NullStorageModel = NullStorageModel.BITMAP
    disk_budget_bytes: int | None = None
    io_model: IoCostModel = field(default_factory=IoCostModel)


class QueryResult:
    """Rows plus metadata from one statement execution."""

    def __init__(
        self,
        columns: list[str] | None = None,
        rows: list[tuple] | None = None,
        rowcount: int = 0,
        plan_text: str | None = None,
        diagnostics: tuple = (),
        exec_stats: dict[str, Any] | None = None,
    ):
        self.columns = columns or []
        self.rows = rows or []
        self.rowcount = rowcount if rowcount else len(self.rows)
        self.plan_text = plan_text
        #: analysis warnings attached by the semantic analyzer (Sinew layer)
        self.diagnostics = tuple(diagnostics)
        #: per-query execution counters (extraction decodes/cache hits,
        #: udf calls, wall time); empty for non-SELECT statements
        self.exec_stats = exec_stats or {}

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self) -> Any:
        """First column of the first row (for aggregates)."""
        if not self.rows:
            return None
        return self.rows[0][0]

    def column(self, name_or_index: str | int) -> list[Any]:
        """All values of one output column."""
        if isinstance(name_or_index, str):
            index = self.columns.index(name_or_index)
        else:
            index = name_or_index
        return [row[index] for row in self.rows]


class Database:
    """An embedded relational database instance."""

    def __init__(self, name: str = "db", config: DatabaseConfig | None = None):
        self.name = name
        self.config = config or DatabaseConfig()
        self.counters = CostCounters()
        self.disk = DiskBudget(self.config.disk_budget_bytes)
        self.buffer_pool = BufferPool(self.config.buffer_pool_pages, self.counters)
        self.functions = FunctionRegistry(self.counters)
        self.txn_manager = TransactionManager(self.counters)
        self.tables: dict[str, HeapTable] = {}
        self.table_stats: dict[str, TableStats] = {}
        self._session_txn: Transaction | None = None
        #: optional FaultInjector threaded into every heap table
        self._faults = None

    # ------------------------------------------------------------------
    # DDL / catalog
    # ------------------------------------------------------------------

    def create_table(self, name: str, columns: Sequence[tuple[str, SqlType]]) -> HeapTable:
        """Create a heap table (programmatic form of CREATE TABLE)."""
        if name in self.tables:
            raise CatalogError(f"table already exists: {name!r}")
        schema = Schema([Column(c_name, c_type) for c_name, c_type in columns])
        table = HeapTable(
            name,
            schema,
            self.counters,
            self.buffer_pool,
            self.disk,
            null_model=self.config.null_model,
        )
        table.faults = self._faults
        self.tables[name] = table
        return table

    def attach_faults(self, injector) -> None:
        """Thread a fault injector (see :mod:`repro.testing.faults`) into
        every existing and future heap table; ``None`` detaches."""
        self._faults = injector
        for table in self.tables.values():
            table.faults = injector

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        if name not in self.tables:
            if if_exists:
                return
            raise CatalogError(f"no such table: {name!r}")
        self.tables[name].truncate()
        del self.tables[name]
        self.table_stats.pop(name, None)

    def table(self, name: str) -> HeapTable:
        if name not in self.tables:
            raise CatalogError(f"no such table: {name!r}")
        return self.tables[name]

    def has_table(self, name: str) -> bool:
        return name in self.tables

    def create_function(
        self,
        name: str,
        fn: Callable[..., Any],
        return_type: SqlType,
        counts_as_udf: bool = True,
    ) -> None:
        """Register a UDF, like PostgreSQL's CREATE FUNCTION."""
        self.functions.register_scalar(name, fn, return_type, counts_as_udf)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    def analyze(self, table_name: str | None = None) -> None:
        """Refresh optimizer statistics for one table or all tables."""
        names = [table_name] if table_name is not None else list(self.tables)
        for name in names:
            self.table_stats[name] = analyze_table(self.table(name))

    def stats(self, table_name: str) -> TableStats | None:
        return self.table_stats.get(table_name)

    # ------------------------------------------------------------------
    # statement execution
    # ------------------------------------------------------------------

    def execute(self, sql: str) -> QueryResult:
        """Parse and execute one SQL statement."""
        return self.execute_statement(parse(sql))

    def execute_statement(
        self,
        statement: Statement,
        *,
        analyze: bool = False,
        extraction_hint: int | None = None,
        use_extraction_cache: bool = True,
    ) -> QueryResult:
        if isinstance(statement, SelectStatement):
            return self._execute_select(
                statement,
                analyze=analyze,
                extraction_hint=extraction_hint,
                use_extraction_cache=use_extraction_cache,
            )
        if isinstance(statement, ExplainStatement):
            plan = self._plan(statement.inner)
            return QueryResult(plan_text=plan.explain())
        if isinstance(statement, InsertStatement):
            return self._execute_insert(statement)
        if isinstance(statement, UpdateStatement):
            return self._execute_update(statement)
        if isinstance(statement, DeleteStatement):
            return self._execute_delete(statement)
        if isinstance(statement, CreateTableStatement):
            return self._execute_create_table(statement)
        if isinstance(statement, DropTableStatement):
            self.drop_table(statement.table, statement.if_exists)
            return QueryResult()
        if isinstance(statement, AlterTableStatement):
            return self._execute_alter(statement)
        if isinstance(statement, AnalyzeStatement):
            self.analyze(statement.table)
            return QueryResult()
        if isinstance(statement, BeginStatement):
            self._begin()
            return QueryResult()
        if isinstance(statement, CommitStatement):
            self._commit()
            return QueryResult()
        if isinstance(statement, RollbackStatement):
            self._rollback()
            return QueryResult()
        raise PlanningError(f"unsupported statement type: {type(statement).__name__}")

    def explain(self, sql: str) -> str:
        """EXPLAIN helper returning the plan text for a SELECT."""
        statement = parse(sql)
        if isinstance(statement, ExplainStatement):
            statement = statement.inner
        if not isinstance(statement, SelectStatement):
            raise PlanningError("EXPLAIN supports only SELECT statements")
        return self._plan(statement).explain()

    # -- SELECT ----------------------------------------------------------

    def _plan(self, statement: SelectStatement) -> PlanNode:
        planner = Planner(
            self.tables,
            self.table_stats,
            self.functions,
            self.config.work_mem_bytes,
        )
        return planner.plan_select(statement)

    def _execute_select(
        self,
        statement: SelectStatement,
        *,
        analyze: bool = False,
        extraction_hint: int | None = None,
        use_extraction_cache: bool = True,
    ) -> QueryResult:
        plan = self._plan(statement)
        context = self.execution_context(
            analyze=analyze,
            extraction_hint=extraction_hint,
            use_extraction_cache=use_extraction_cache,
        )
        udf_calls_before = self.counters.udf_calls
        started = time.perf_counter()
        self.functions.begin_query(context)
        try:
            rows = list(plan.run(context))
        finally:
            self.functions.end_query(context)
        elapsed = time.perf_counter() - started
        context.extract_stats.udf_calls = self.counters.udf_calls - udf_calls_before
        columns = [name for _qualifier, name in plan.output_columns]
        exec_stats: dict[str, Any] = dict(context.extract_stats.as_dict())
        exec_stats["execution_seconds"] = elapsed
        exec_stats["rows"] = len(rows)
        if analyze:
            plan_text = self._render_analyze(plan, context, elapsed, len(rows))
        else:
            plan_text = plan.explain()
        return QueryResult(
            columns=columns, rows=rows, plan_text=plan_text, exec_stats=exec_stats
        )

    @staticmethod
    def _render_analyze(
        plan: PlanNode, context: ExecutionContext, elapsed: float, n_rows: int
    ) -> str:
        lines = plan.explain_analyze_lines(context)
        lines.append(context.extract_stats.summary())
        if context.extraction_hint:
            lines.append(
                f"Extraction keys per row: {context.extraction_hint} (multi-key)"
            )
        lines.append(f"Execution time: {elapsed * 1000:.3f} ms ({n_rows} rows)")
        return "\n".join(lines)

    def execution_context(self, **options: Any) -> ExecutionContext:
        return ExecutionContext(
            self.counters,
            self.functions,
            self.disk,
            self.config.work_mem_bytes,
            **options,
        )

    # -- DML --------------------------------------------------------------

    def _execute_insert(self, statement: InsertStatement) -> QueryResult:
        table = self.table(statement.table)
        resolver = SchemaResolver([], self.functions)
        rows_to_insert: list[tuple] = []
        for value_row in statement.rows:
            values = [compile_expr(expr, resolver)(()) for expr in value_row]
            rows_to_insert.append(
                self._shape_row(table, statement.columns, values)
            )
        with self._dml_txn() as txn:
            for row in rows_to_insert:
                self._insert_row(table, row, txn)
        return QueryResult(rowcount=len(rows_to_insert))

    def insert_rows(self, table_name: str, rows: Sequence[tuple]) -> int:
        """Bulk append (used by loaders); one transaction for the batch."""
        table = self.table(table_name)
        with self._dml_txn() as txn:
            for row in rows:
                self._insert_row(table, tuple(row), txn)
        return len(rows)

    def _insert_row(self, table: HeapTable, row: tuple, txn: Transaction) -> int:
        rid = table.insert(row)
        txn.log_insert(
            table.name, rid, table.tuple_bytes(row), undo=lambda: table.delete(rid)
        )
        return rid

    def _shape_row(
        self,
        table: HeapTable,
        columns: tuple[str, ...] | None,
        values: list[Any],
    ) -> tuple:
        if columns is None:
            if len(values) != len(table.schema):
                raise ExecutionError(
                    f"INSERT arity mismatch for table {table.name!r}"
                )
            return tuple(values)
        if len(columns) != len(values):
            raise ExecutionError("INSERT column list / VALUES arity mismatch")
        row: list[Any] = [None] * len(table.schema)
        for name, value in zip(columns, values):
            row[table.schema.position_of(name)] = value
        return tuple(row)

    def _execute_update(self, statement: UpdateStatement) -> QueryResult:
        table = self.table(statement.table)
        resolver = SchemaResolver(
            [(statement.table, c.name) for c in table.schema], self.functions
        )
        predicate = (
            compile_expr(statement.where, resolver)
            if statement.where is not None
            else None
        )
        assignments: list[tuple[int, Callable]] = []
        for name, expr in statement.assignments:
            position = table.schema.position_of(name)
            assignments.append((position, compile_expr(expr, resolver)))

        updated = 0
        with self._dml_txn() as txn:
            # Two phases so an UPDATE never observes its own writes.
            matches: list[tuple[int, tuple]] = []
            for rid, row in table.scan():
                if predicate is None or predicate(row) is True:
                    matches.append((rid, row))
            for rid, row in matches:
                new_row = list(row)
                for position, value_fn in assignments:
                    new_row[position] = value_fn(row)
                old = table.update(rid, tuple(new_row))
                txn.log_update(
                    table.name,
                    rid,
                    table.tuple_bytes(tuple(new_row)),
                    undo=lambda rid=rid, old=old: table.update(rid, old),
                )
                updated += 1
        return QueryResult(rowcount=updated)

    def _execute_delete(self, statement: DeleteStatement) -> QueryResult:
        table = self.table(statement.table)
        resolver = SchemaResolver(
            [(statement.table, c.name) for c in table.schema], self.functions
        )
        predicate = (
            compile_expr(statement.where, resolver)
            if statement.where is not None
            else None
        )
        deleted = 0
        with self._dml_txn() as txn:
            victims = [
                rid
                for rid, row in table.scan()
                if predicate is None or predicate(row) is True
            ]
            for rid in victims:
                old = table.delete(rid)
                txn.log_delete(
                    table.name,
                    rid,
                    table.tuple_bytes(old),
                    undo=lambda rid=rid, old=old: table.undo_delete(rid, old),
                )
                deleted += 1
        return QueryResult(rowcount=deleted)

    # -- DDL ----------------------------------------------------------------

    def _execute_create_table(self, statement: CreateTableStatement) -> QueryResult:
        if statement.table in self.tables:
            if statement.if_not_exists:
                return QueryResult()
            raise CatalogError(f"table already exists: {statement.table!r}")
        self.create_table(
            statement.table,
            [(c.name, c.sql_type) for c in statement.columns],
        )
        return QueryResult()

    def _execute_alter(self, statement: AlterTableStatement) -> QueryResult:
        table = self.table(statement.table)
        if statement.action == "add":
            assert statement.sql_type is not None
            table.add_column(Column(statement.column_name, statement.sql_type))
        elif statement.action == "drop":
            table.drop_column(statement.column_name)
        else:  # pragma: no cover - parser prevents this
            raise PlanningError(f"unknown ALTER action {statement.action!r}")
        return QueryResult()

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------

    def _begin(self) -> None:
        if self._session_txn is not None:
            raise TransactionError("a transaction is already in progress")
        self._session_txn = self.txn_manager.begin()

    def _commit(self) -> None:
        if self._session_txn is None:
            raise TransactionError("no transaction in progress")
        self.txn_manager.finish(self._session_txn, commit=True)
        self._session_txn = None

    def _rollback(self) -> None:
        if self._session_txn is None:
            raise TransactionError("no transaction in progress")
        self.txn_manager.finish(self._session_txn, commit=False)
        self._session_txn = None

    def _dml_txn(self):
        """Session transaction when open, else per-statement autocommit."""
        if self._session_txn is not None:
            return _NoopTxnContext(self._session_txn)
        return self.txn_manager.autocommit()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def total_table_bytes(self) -> int:
        """Total modelled on-disk size of every table (Table 3 metric)."""
        return sum(table.total_bytes for table in self.tables.values())

    def modelled_io_seconds(self) -> float:
        return self.config.io_model.modelled_io_seconds(self.counters)


class _NoopTxnContext:
    """Adapter exposing an already-open transaction as a context manager."""

    def __init__(self, txn: Transaction):
        self.txn = txn

    def __enter__(self) -> Transaction:
        return self.txn

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False
