"""Deterministic cost counters shared by the storage and execution layers.

Wall-clock numbers from a pure-Python engine are noisy and their constant
factors differ from a C engine, so every experiment in this reproduction
reports *mechanical* counters alongside timings: pages read and written
through the buffer pool, tuples scanned, UDF invocations, WAL records, and
bytes spilled to scratch space.  The benchmark harness combines these with a
simple I/O latency model to reproduce the paper's memory-resident
("16 million records") versus I/O-bound ("64 million records") regimes.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CostCounters:
    """Mutable bundle of engine-level activity counters."""

    pages_read: int = 0
    pages_written: int = 0
    page_cache_hits: int = 0
    tuples_scanned: int = 0
    tuples_written: int = 0
    udf_calls: int = 0
    wal_records: int = 0
    wal_bytes: int = 0
    wal_fsyncs: int = 0
    checkpoints: int = 0
    spill_bytes: int = 0
    index_lookups: int = 0

    def reset(self) -> None:
        """Zero every counter in place."""
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)

    def snapshot(self) -> dict[str, int]:
        """Immutable copy of the current counter values."""
        return {name: getattr(self, name) for name in self.__dataclass_fields__}

    def diff(self, before: dict[str, int]) -> dict[str, int]:
        """Counter deltas since a previous :meth:`snapshot`."""
        return {
            name: getattr(self, name) - before.get(name, 0)
            for name in self.__dataclass_fields__
        }

    def __add__(self, other: "CostCounters") -> "CostCounters":
        merged = CostCounters()
        for name in self.__dataclass_fields__:
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        return merged

    def accumulate(self, other: "CostCounters") -> None:
        """Add another counter bundle into this one in place.

        The parallel executor gives each worker its own private bundle and
        folds them into the shared counters here, single-threaded at gather
        time, so totals stay exact without any per-increment locking.
        """
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))


@dataclass
class ExtractionStats:
    """Per-query extraction-pipeline counters (EXPLAIN ANALYZE surface).

    Populated by the reservoir extractor's per-query decode cache: a
    *decode* is one full header parse of a serialized document, a *hit*
    is a repeat access served from the cache without re-parsing.  The
    ``udf_calls`` field is the per-query delta of the engine-wide
    :class:`CostCounters` counter, filled in by the database facade.
    """

    udf_calls: int = 0
    header_decodes: int = 0
    header_cache_hits: int = 0
    subdoc_decodes: int = 0
    subdoc_cache_hits: int = 0

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__dataclass_fields__}

    def merge(self, other: "ExtractionStats") -> None:
        """Fold another stats bundle into this one (per-worker merge)."""
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def summary(self) -> str:
        """One-line rendering used as the EXPLAIN ANALYZE footer."""
        return (
            f"Extraction: udf_calls={self.udf_calls} "
            f"header_decodes={self.header_decodes} "
            f"cache_hits={self.header_cache_hits} "
            f"subdoc_decodes={self.subdoc_decodes} "
            f"subdoc_cache_hits={self.subdoc_cache_hits}"
        )


@dataclass
class IoCostModel:
    """Latency model used to convert counters into modelled time.

    The defaults approximate the paper's testbed: 250-300 MB/s sequential
    SSD reads over 8 KiB pages is roughly 30 microseconds per page.
    """

    page_read_seconds: float = 30e-6
    page_write_seconds: float = 35e-6
    wal_sync_seconds: float = 50e-6

    def modelled_io_seconds(self, counters: CostCounters) -> float:
        """Modelled I/O time implied by a set of counters."""
        return (
            counters.pages_read * self.page_read_seconds
            + counters.pages_written * self.page_write_seconds
            + counters.wal_records * self.wal_sync_seconds
        )


@dataclass
class DiskBudget:
    """Tracks scratch + table space against an optional hard budget.

    ``None`` means unlimited.  The EAV and MongoDB baselines are run under a
    finite budget in the Figure 7 / Q8 / Q9 experiments to reproduce their
    out-of-disk failures.
    """

    budget_bytes: int | None = None
    used_bytes: int = 0
    high_water_bytes: int = field(default=0, repr=False)

    def charge(self, n_bytes: int) -> None:
        """Account for ``n_bytes`` of new storage, raising when over budget."""
        from .errors import DiskFullError

        self.used_bytes += n_bytes
        if self.used_bytes > self.high_water_bytes:
            self.high_water_bytes = self.used_bytes
        if self.budget_bytes is not None and self.used_bytes > self.budget_bytes:
            raise DiskFullError(self.used_bytes, self.budget_bytes)

    def release(self, n_bytes: int) -> None:
        """Return ``n_bytes`` of storage to the budget (dropped temp data)."""
        self.used_bytes = max(0, self.used_bytes - n_bytes)
