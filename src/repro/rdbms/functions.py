"""Scalar (UDF) and aggregate function registries.

Sinew's key-extraction functions (``extract_key_text`` & friends, paper
section 3.2.2) are registered here exactly like PostgreSQL user-defined
functions.  Two properties of the registry matter to the reproduction:

* the planner cannot estimate selectivity through a UDF, so predicates
  containing one get the fixed default row estimate (Table 2's "200 rows
  out of 10 million");
* UDF invocations are counted on the shared cost counters, making the
  virtual-column extraction overhead of Appendix B measurable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable

from .cost import CostCounters
from .errors import CatalogError, ExecutionError
from .types import SqlType


@dataclass
class ScalarFunction:
    """A registered scalar function.

    ``counts_as_udf`` marks user-registered functions whose calls are
    tallied on the cost counters; built-ins (``abs``, ``length``...) are
    exempt to keep the counter meaningful as "reservoir extraction work".

    ``volatile`` declares that repeated calls with the same arguments may
    return different values (PostgreSQL's VOLATILE).  The planner refuses
    to push volatile calls into parallel morsel workers, where evaluation
    order and per-worker state would make results nondeterministic.

    ``remote_spec`` describes how a worker *process* can rebuild this
    function without pickling ``fn`` (closures and bound methods don't
    pickle): ``("builtin", name)`` for the built-in scalars,
    ``("sinew_extract", method)`` for the reservoir-extraction UDFs.
    ``None`` -- the default for user closures -- keeps any query calling
    the function off the process lane (it falls back to threads).
    """

    name: str
    fn: Callable[..., Any]
    return_type: SqlType
    counts_as_udf: bool = False
    counters: CostCounters | None = None
    volatile: bool = False
    remote_spec: tuple[str, str] | None = None


class AggregateFunction:
    """Streaming aggregate: ``init() -> state``, ``step``, ``final``.

    ``merge`` combines two partial states into one (must not mutate its
    second argument); aggregates without a merge cannot be computed as
    per-worker partials, so the planner keeps them on the serial path.
    """

    def __init__(
        self,
        name: str,
        init: Callable[[], Any],
        step: Callable[[Any, Any], Any],
        final: Callable[[Any], Any],
        skip_nulls: bool = True,
        merge: Callable[[Any, Any], Any] | None = None,
    ):
        self.name = name
        self.init = init
        self.step = step
        self.final = final
        self.skip_nulls = skip_nulls
        self.merge = merge


def _sum_step(state: Any, value: Any) -> Any:
    return value if state is None else state + value


def _min_step(state: Any, value: Any) -> Any:
    return value if state is None or value < state else state


def _max_step(state: Any, value: Any) -> Any:
    return value if state is None or value > state else state


def _avg_init() -> list:
    return [0, 0]


def _avg_step(state: list, value: Any) -> list:
    state[0] += value
    state[1] += 1
    return state


def _avg_final(state: list) -> float | None:
    return None if state[1] == 0 else state[0] / state[1]


def _sum_merge(left: Any, right: Any) -> Any:
    if left is None:
        return right
    if right is None:
        return left
    return left + right


def _min_merge(left: Any, right: Any) -> Any:
    if left is None:
        return right
    if right is None:
        return left
    return right if right < left else left


def _max_merge(left: Any, right: Any) -> Any:
    if left is None:
        return right
    if right is None:
        return left
    return right if right > left else left


def _avg_merge(left: list, right: list) -> list:
    return [left[0] + right[0], left[1] + right[1]]


_BUILTIN_AGGREGATES = {
    "count": AggregateFunction(
        "count",
        init=lambda: 0,
        step=lambda state, _value: state + 1,
        final=lambda state: state,
        merge=lambda left, right: left + right,
    ),
    "sum": AggregateFunction("sum", lambda: None, _sum_step, lambda s: s, merge=_sum_merge),
    "min": AggregateFunction("min", lambda: None, _min_step, lambda s: s, merge=_min_merge),
    "max": AggregateFunction("max", lambda: None, _max_step, lambda s: s, merge=_max_merge),
    "avg": AggregateFunction("avg", _avg_init, _avg_step, _avg_final, merge=_avg_merge),
}


def _builtin_scalars() -> dict[str, ScalarFunction]:
    def length(value: Any) -> int | None:
        if value is None:
            return None
        if isinstance(value, (list, tuple)):
            return len(value)
        return len(str(value))

    def absolute(value: Any) -> Any:
        return None if value is None else abs(value)

    def lower(value: Any) -> str | None:
        return None if value is None else str(value).lower()

    def upper(value: Any) -> str | None:
        return None if value is None else str(value).upper()

    def sqrt(value: Any) -> float | None:
        if value is None:
            return None
        if value < 0:
            raise ExecutionError("sqrt of a negative number")
        return math.sqrt(value)

    def round_fn(value: Any, digits: Any = 0) -> Any:
        if value is None:
            return None
        return round(value, int(digits or 0))

    def array_length(value: Any) -> int | None:
        if value is None:
            return None
        if not isinstance(value, (list, tuple)):
            raise ExecutionError("array_length expects an array")
        return len(value)

    scalars = {
        "length": ScalarFunction("length", length, SqlType.INTEGER),
        "abs": ScalarFunction("abs", absolute, SqlType.REAL),
        "lower": ScalarFunction("lower", lower, SqlType.TEXT),
        "upper": ScalarFunction("upper", upper, SqlType.TEXT),
        "sqrt": ScalarFunction("sqrt", sqrt, SqlType.REAL),
        "round": ScalarFunction("round", round_fn, SqlType.REAL),
        "array_length": ScalarFunction("array_length", array_length, SqlType.INTEGER),
    }
    # every build of the builtins is identical, so worker processes can
    # rebuild any of them from the name alone
    for key, implementation in scalars.items():
        implementation.remote_spec = ("builtin", key)
    return scalars


class FunctionRegistry:
    """Name -> implementation map for scalar and aggregate functions."""

    def __init__(self, counters: CostCounters | None = None):
        self.counters = counters
        self._scalars: dict[str, ScalarFunction] = _builtin_scalars()
        self._aggregates: dict[str, AggregateFunction] = dict(_BUILTIN_AGGREGATES)
        self._query_listeners: list[Any] = []
        # The Sinew layer installs its reservoir extractor here so the
        # process executor lane can snapshot the attribute catalog for
        # worker processes.  ``None`` means extraction UDFs (if any) keep
        # queries on the thread lane.
        self.remote_catalog: Any = None

    # -- query lifecycle -----------------------------------------------------

    def register_query_listener(self, listener: Any) -> None:
        """Subscribe to query begin/end notifications.

        Listeners expose ``begin_query(execution_context)`` and
        ``end_query(execution_context)``; the reservoir extractor uses this
        to scope its decoded-header cache to one query without the engine
        knowing anything about Sinew's layers.
        """
        if listener not in self._query_listeners:
            self._query_listeners.append(listener)

    def begin_query(self, execution_context: Any) -> None:
        for listener in self._query_listeners:
            listener.begin_query(execution_context)

    def end_query(self, execution_context: Any) -> None:
        for listener in self._query_listeners:
            listener.end_query(execution_context)

    # -- scalar -------------------------------------------------------------

    def register_scalar(
        self,
        name: str,
        fn: Callable[..., Any],
        return_type: SqlType,
        counts_as_udf: bool = True,
        volatile: bool = False,
        remote_spec: tuple[str, str] | None = None,
    ) -> ScalarFunction:
        """Register a user-defined scalar function (CREATE FUNCTION)."""
        key = name.lower()
        implementation = ScalarFunction(
            key,
            fn,
            return_type,
            counts_as_udf=counts_as_udf,
            counters=self.counters,
            volatile=volatile,
            remote_spec=remote_spec,
        )
        self._scalars[key] = implementation
        return implementation

    def scalar(self, name: str) -> ScalarFunction:
        key = name.lower()
        if key not in self._scalars:
            raise CatalogError(f"no such function: {name}()")
        return self._scalars[key]

    def has_scalar(self, name: str) -> bool:
        return name.lower() in self._scalars

    # -- aggregate ----------------------------------------------------------

    def aggregate(self, name: str) -> AggregateFunction:
        key = name.lower()
        if key not in self._aggregates:
            raise CatalogError(f"no such aggregate: {name}()")
        return self._aggregates[key]

    def is_aggregate(self, name: str) -> bool:
        return name.lower() in self._aggregates
