"""A self-contained relational engine (the PostgreSQL substitute).

This package provides everything Sinew needs from an unmodified RDBMS:
typed heap storage with NULL-bitmap size accounting, a buffer pool with I/O
counting, WAL-backed transactions, a SQL front end, per-column statistics,
a cost-based planner, and an iterator executor.

Public entry point::

    from repro.rdbms import Database

    db = Database("demo")
    db.execute("CREATE TABLE t (a integer, b text)")
"""

from .cost import CostCounters, DiskBudget, IoCostModel
from .database import Database, DatabaseConfig, QueryResult
from .errors import (
    CatalogError,
    ConcurrencyError,
    DatabaseError,
    DiskFullError,
    ExecutionError,
    PlanningError,
    SqlSyntaxError,
    TransactionError,
    TypeCastError,
)
from .storage import Column, HeapTable, Schema
from .types import NullStorageModel, SqlType, cast_value, infer_type

__all__ = [
    "CatalogError",
    "Column",
    "ConcurrencyError",
    "CostCounters",
    "Database",
    "DatabaseConfig",
    "DatabaseError",
    "DiskBudget",
    "DiskFullError",
    "ExecutionError",
    "HeapTable",
    "IoCostModel",
    "NullStorageModel",
    "PlanningError",
    "QueryResult",
    "Schema",
    "SqlSyntaxError",
    "SqlType",
    "TransactionError",
    "TypeCastError",
    "cast_value",
    "infer_type",
]
