"""Latch-protocol primitives shared by the engine and its analyzers.

The engine's hybrid layout stays correct only because a web of locking
protocols holds: catalog flags flip under the loader/materializer latch,
row moves happen under it, internal mutexes are leaf-only.  PRs 2, 4 and
5 each found violations of these protocols by *manual* audit; this module
makes the protocols declarable so they can be checked mechanically:

* :func:`requires_latch` -- a zero-cost decorator declaring that a
  function mutates latch-protected state and may only be called while the
  named latch is held.  The decorator only tags the function (one
  attribute write at import time); enforcement is static -- rule
  ``SNW401`` of :mod:`repro.analysis.protocol` verifies every call site
  lexically holds or acquires the latch -- so the hot path pays nothing.
* :class:`TrackedLock` -- a ``threading.Lock`` wrapper that reports
  acquisitions to the process-global **latch tracker** when one is
  installed (``REPRO_DEBUG_LATCHES=1``, or a test calling
  :func:`repro.testing.latch_tracker.enable_latch_tracking`).  With no
  tracker installed, the overhead is one function call per acquisition.

This module has no imports from the rest of the package, so every layer
(``core``, ``rdbms``, ``testing``) can use it without cycles.  The
tracker implementation itself lives in :mod:`repro.testing` -- production
code only ever sees it through the :func:`latch_tracker` hook, and the
lazy import below runs only when tracking is switched on.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable, TypeVar

F = TypeVar("F", bound=Callable[..., Any])

#: Attribute name :func:`requires_latch` stamps onto tagged functions.
LATCH_ATTRIBUTE = "__requires_latch__"

#: Environment variable that auto-installs a LatchOrderTracker.
DEBUG_LATCHES_ENV = "REPRO_DEBUG_LATCHES"


def requires_latch(latch: str) -> Callable[[F], F]:
    """Declare that the decorated function mutates ``latch``-protected state.

    Purely declarative at runtime: the function is returned unchanged with
    a :data:`LATCH_ATTRIBUTE` tag.  The SNW401 static rule uses the tag to
    verify that every call site either sits inside a
    ``with ...exclusive_latch(...)`` block or is itself tagged (i.e. its
    own callers carry the obligation).
    """

    def mark(fn: F) -> F:
        setattr(fn, LATCH_ATTRIBUTE, latch)
        return fn

    return mark


def declared_latch(fn: Any) -> str | None:
    """The latch a function was tagged with, or ``None`` when untagged."""
    return getattr(fn, LATCH_ATTRIBUTE, None)


# ----------------------------------------------------------------------
# the tracker hook
# ----------------------------------------------------------------------

#: The installed tracker (``None`` = tracking disabled).  Installed either
#: explicitly by :func:`repro.testing.latch_tracker.enable_latch_tracking`
#: or lazily from the :data:`DEBUG_LATCHES_ENV` environment variable.
_TRACKER: Any = None


def install_latch_tracker(tracker: Any) -> None:
    """Install (or, with ``None``, remove) the process-global tracker."""
    global _TRACKER
    _TRACKER = tracker


def latch_tracker() -> Any:
    """The active latch tracker, or ``None`` when tracking is disabled.

    Checked on every tracked acquisition, so the disabled path is kept to
    one global read plus one environment lookup.
    """
    if _TRACKER is not None:
        return _TRACKER
    if os.environ.get(DEBUG_LATCHES_ENV) == "1":
        from .testing.latch_tracker import LatchOrderTracker

        install_latch_tracker(LatchOrderTracker())
        return _TRACKER
    return None


class TrackedLock:
    """A named, non-reentrant mutex that participates in latch tracking.

    A drop-in replacement for ``threading.Lock`` used as a context
    manager.  The *name* identifies the lock class in the tracker's order
    graph (lockdep-style: ordering is learned per name, not per
    instance), so two databases in one process share one graph.
    """

    __slots__ = ("name", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()

    def __enter__(self) -> "TrackedLock":
        tracker = latch_tracker()
        if tracker is not None:
            tracker.before_acquire(self.name, blocking=True)
        # The release lives in __exit__ -- the whole point of this class
        # is to *be* the try/finally.
        self._lock.acquire()  # protocol: ignore[SNW405]
        if tracker is not None:
            tracker.after_acquire(self.name)
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        self._lock.release()
        tracker = latch_tracker()
        if tracker is not None:
            tracker.released(self.name)
        return False

    def locked(self) -> bool:
        return self._lock.locked()

    def __repr__(self) -> str:  # pragma: no cover - debugging surface
        state = "locked" if self._lock.locked() else "unlocked"
        return f"<TrackedLock {self.name!r} {state}>"
