"""An interactive SQL shell for Sinew (``python -m repro.shell``).

A small psql-flavoured REPL over a :class:`~repro.core.SinewDB` instance:
plain SQL runs against the logical universal relation, and meta-commands
manage collections and inspect the hybrid schema.

Meta-commands
-------------
==================  ====================================================
``\\c NAME``         create a collection
``\\load NAME FILE`` bulk-load a JSON-lines file into a collection
``\\d [NAME]``       list collections, or show one logical schema
``\\explain SQL``    show the rewritten physical plan
``\\analyze SQL``    execute with EXPLAIN ANALYZE instrumentation: per-node
                    actual rows and wall time plus extraction counters
``\\lint SQL``       semantic analysis only: diagnostics, no execution
``\\lint engine``    run the engine-protocol analyzer (SNW4xx findings)
                    over the installed ``repro`` package source
``\\check [NAME]``   catalog/storage integrity audit (SNW3xx findings)
``\\settle NAME``    run the schema analyzer + column materializer
``\\daemon [CMD]``   background materializer: status (default), start,
                    stop, pause, resume
``\\wal [CMD]``      durability status (default) or ``checkpoint`` to
                    force a checkpoint + WAL truncation
``\\catalog``        reflect + dump the attribute dictionary
``\\connect H:P``    switch to remote mode against a running
                    ``python -m repro.service`` server; SQL, ``\\c`` and
                    ``\\load`` then run over the wire in this session,
                    with automatic retries (exactly-once writes via the
                    service's request-id journal)
``\\disconnect``     leave remote mode (back to the embedded instance)
``\\service [CMD]``  fault-tolerance operations: status (default) shows
                    health/degraded/supervisor state; ``recover`` brings
                    a degraded engine back and resets tripped workers
``\\q``              quit
==================  ====================================================

Semantic errors print with a caret underline pointing into the query;
analyzer warnings (unknown keys, provably-NULL predicates, multi-typed
downcasts) print after the result rows.
"""

from __future__ import annotations

import json
import sys
from typing import Iterable, TextIO

from .analysis.diagnostics import render_report
from .core import SinewConfig, SinewDB
from .harness.tables import format_table
from .rdbms.errors import DatabaseError, SemanticError
from .service.client import ServiceClient, ServiceError
from .service.retry import RetryPolicy


class SinewShell:
    """Line-oriented command processor over one SinewDB instance."""

    def __init__(self, sdb: SinewDB | None = None, out: TextIO | None = None):
        self.sdb = sdb or SinewDB("shell", SinewConfig(enable_text_index=True))
        self.out = out or sys.stdout
        self.running = True
        #: remote mode: a live ServiceClient, or None for embedded mode
        self.remote: ServiceClient | None = None

    # ------------------------------------------------------------------

    def run_line(self, line: str) -> None:
        """Execute one input line (SQL or a meta-command)."""
        line = line.strip()
        if not line or line.startswith("--"):
            return
        try:
            if line.startswith("\\"):
                self._meta(line)
            else:
                self._sql(line)
        except DatabaseError as error:
            self._print(f"ERROR: {error}")
        except ServiceError as error:
            self._print(f"ERROR: {error}")
        except FileNotFoundError as error:
            self._print(f"ERROR: {error}")
        except (ConnectionError, OSError) as error:
            if self.remote is not None:
                self._print(f"ERROR: lost connection to server ({error})")
                self._disconnect(silent=True)
            else:
                self._print(f"ERROR: {error}")

    def run(self, lines: Iterable[str]) -> None:
        for line in lines:
            if not self.running:
                break
            self.run_line(line)

    # ------------------------------------------------------------------

    def _print(self, text: str = "") -> None:
        print(text, file=self.out)

    def _sql(self, sql: str) -> None:
        if self.remote is not None:
            result = self.remote.query(sql)
        else:
            try:
                result = self.sdb.query(sql)
            except SemanticError as error:
                self._print(render_report(error.diagnostics, sql))
                return
        if result.columns:
            rows = [list(row) for row in result.rows[:100]]
            self._print(format_table(result.columns, rows))
            suffix = "" if len(result.rows) <= 100 else " (first 100 shown)"
            self._print(f"({len(result.rows)} rows){suffix}")
        else:
            self._print(f"OK ({result.rowcount} rows affected)")
        for diagnostic in result.diagnostics:
            self._print(str(diagnostic))

    def _meta(self, line: str) -> None:
        parts = line.split()
        command, arguments = parts[0], parts[1:]
        if command == "\\q":
            self.running = False
            return
        if command == "\\connect":
            self._require(arguments, 1, "\\connect HOST:PORT")
            self._connect(arguments[0])
            return
        if command == "\\disconnect":
            self._disconnect()
            return
        if command == "\\c":
            self._require(arguments, 1, "\\c NAME")
            if self.remote is not None:
                self.remote.create_collection(arguments[0])
            else:
                self.sdb.create_collection(arguments[0])
            self._print(f"created collection {arguments[0]!r}")
            return
        if command == "\\load":
            self._require(arguments, 2, "\\load NAME FILE")
            self._load(arguments[0], arguments[1])
            return
        if command == "\\service":
            self._service(arguments)
            return
        if self.remote is not None and command not in ("\\d",):
            self._print(
                f"{command} is a local meta-command; \\disconnect first "
                "(remote mode supports SQL, \\c, \\load, \\d)"
            )
            return
        if command == "\\d":
            if self.remote is not None:
                engine = self.remote.status().get("engine", {})
                names = sorted(engine.get("collections", {}))
                self._print("collections: " + (", ".join(names) or "(none)"))
            elif arguments:
                self._describe(arguments[0])
            else:
                names = self.sdb.collections()
                self._print("collections: " + (", ".join(names) or "(none)"))
            return
        if command == "\\explain":
            sql = line[len("\\explain") :].strip()
            if not sql:
                self._print("usage: \\explain SELECT ...")
                return
            self._print(self.sdb.explain(sql))
            return
        if command == "\\analyze":
            sql = line[len("\\analyze") :].strip()
            if not sql:
                self._print("usage: \\analyze SELECT ...")
                return
            try:
                result = self.sdb.query(sql, explain_analyze=True)
            except SemanticError as error:
                self._print(render_report(error.diagnostics, sql))
                return
            self._print(result.plan_text or "")
            return
        if command == "\\lint":
            sql = line[len("\\lint") :].strip()
            if not sql:
                self._print("usage: \\lint SELECT ... | \\lint engine")
                return
            if sql == "engine":
                self._lint_engine()
                return
            analysis = self.sdb.lint(sql)
            if analysis.diagnostics:
                self._print(render_report(analysis.diagnostics, sql))
            else:
                self._print("no diagnostics")
            return
        if command == "\\check":
            reports = self.sdb.check(arguments[0] if arguments else None)
            for report in reports:
                self._print(str(report))
                for finding in report.findings:
                    self._print("  " + str(finding))
            if not reports:
                self._print("no collections to check")
            return
        if command == "\\settle":
            self._require(arguments, 1, "\\settle NAME")
            report = self.sdb.analyze_schema(arguments[0])
            moved = self.sdb.run_materializer(arguments[0])
            self._print(
                f"materialized: {report.materialized_keys() or '(nothing)'} / "
                f"dematerialized: {report.dematerialized_keys() or '(nothing)'} / "
                f"{moved.rows_moved} values moved"
            )
            return
        if command == "\\daemon":
            self._daemon(arguments)
            return
        if command == "\\wal":
            self._wal(arguments)
            return
        if command == "\\catalog":
            self.sdb.sync_catalog()
            result = self.sdb.db.execute(
                "SELECT _id, key_name, key_type FROM _sinew_attributes "
                "ORDER BY _id LIMIT 100"
            )
            self._print(format_table(["id", "key", "type"], [list(r) for r in result]))
            return
        self._print(
            f"unknown meta-command {command!r}; "
            "try \\d, \\c, \\load, \\lint, \\analyze, \\check, \\daemon, \\wal, "
            "\\service, \\connect, \\q"
        )

    def _lint_engine(self) -> None:
        """``\\lint engine`` -- the SNW4xx protocol pass over this install."""
        from pathlib import Path

        import repro

        from .analysis.protocol import analyze_paths, format_finding

        findings = analyze_paths([Path(repro.__file__).resolve().parent])
        for finding in findings:
            self._print(format_finding(finding))
        if findings:
            plural = "" if len(findings) == 1 else "s"
            self._print(f"engine protocol: {len(findings)} finding{plural}")
        else:
            self._print("engine protocol: clean")

    def _daemon(self, arguments: list[str]) -> None:
        """``\\daemon [start|stop|pause|resume|status]`` -- default status."""
        daemon = self.sdb.daemon
        action = arguments[0] if arguments else "status"
        if action == "start":
            daemon.start()
            self._print("daemon started")
            return
        if action == "stop":
            daemon.stop()
            self._print("daemon stopped")
            return
        if action == "pause":
            daemon.pause()
            self._print("daemon paused")
            return
        if action == "resume":
            daemon.resume()
            self._print("daemon resumed")
            return
        if action != "status":
            self._print("usage: \\daemon [start|stop|pause|resume|status]")
            return
        for line in daemon.status().lines():
            self._print(line)

    def _service(self, arguments: list[str]) -> None:
        """``\\service [status|recover]`` -- fault-tolerance operations."""
        action = arguments[0] if arguments else "status"
        if action == "recover":
            if self.remote is not None:
                report = self.remote.recover()
            else:
                report = self.sdb.recover_service()
            self._print(
                f"recovered: {report.get('recovered')}  "
                f"degraded: {report.get('degraded')}"
            )
            if report.get("last_io_error"):
                self._print(f"  last_io_error: {report['last_io_error']}")
            return
        if action != "status":
            self._print("usage: \\service [status|recover]")
            return
        if self.remote is not None:
            health = self.remote.health()
            self._print(
                f"service: {health['status']}  sessions: {health['sessions']}  "
                f"inflight: {health['inflight']}"
            )
            daemon = health.get("daemon") or {}
            line = f"  daemon: {daemon.get('state')}"
            if daemon.get("last_error"):
                line += f" (last error: {daemon['last_error']})"
            self._print(line)
            if health.get("degraded"):
                self._print(f"  degraded: {health.get('degraded_reason')}")
            supervisor = health.get("supervisor") or {}
            for name, info in supervisor.items():
                self._print(
                    f"  supervisor[{name}]: restarts={info['restarts']} "
                    f"failures={info['consecutive_failures']} "
                    f"tripped={info['tripped']}"
                )
            for name in health.get("tripped") or []:
                self._print(f"  TRIPPED: {name} (\\service recover to reset)")
            return
        wal = self.sdb.db.wal
        degraded = bool(wal.durable and wal.degraded)
        self._print(f"engine: {'degraded' if degraded else 'ok'}")
        if degraded:
            self._print(f"  degraded: {wal.degraded_reason}")
        daemon_status = self.sdb.daemon.status()
        self._print(
            f"  daemon: {daemon_status.state}"
            + (
                f" (last error: {daemon_status.last_error})"
                if daemon_status.last_error
                else ""
            )
        )
        supervisor = self.sdb.supervisor
        if supervisor is None:
            self._print("  supervisor: (not running)")
            return
        for name, info in supervisor.status().items():
            self._print(
                f"  supervisor[{name}]: restarts={info['restarts']} "
                f"failures={info['consecutive_failures']} "
                f"tripped={info['tripped']}"
            )

    def _wal(self, arguments: list[str]) -> None:
        """``\\wal [status|checkpoint]`` -- default status."""
        action = arguments[0] if arguments else "status"
        if action == "checkpoint":
            info = self.sdb.checkpoint()
            self._print(
                f"checkpoint written at lsn {info.lsn} "
                f"({info.bytes_written} bytes, "
                f"{info.segments_truncated} segments truncated)"
            )
            return
        if action != "status":
            self._print("usage: \\wal [status|checkpoint]")
            return
        status = self.sdb.db.wal_status()
        if not status.get("durable"):
            self._print("wal: in-memory (no on-disk durability)")
            self._print(
                f"  records: {status['records']}  last_lsn: {status['last_lsn']}  "
                f"commits: {status['commits']}"
            )
            return
        self._print("wal: durable")
        self._print(
            f"  records: {status['records']}  last_lsn: {status['last_lsn']}  "
            f"commits: {status['commits']}  fsyncs: {status['fsyncs']}"
        )
        self._print(
            f"  segments: {status['segments']}  "
            f"bytes_on_disk: {status['bytes_on_disk']}  "
            f"group_commit_every: {status['group_commit_every']}"
        )
        self._print(
            f"  checkpoints: {status.get('checkpoints', 0)}  "
            f"last_checkpoint_lsn: {status.get('last_checkpoint_lsn')}  "
            f"segments_truncated: {status.get('segments_truncated', 0)}"
        )
        recovery = status.get("last_recovery")
        if recovery is None:
            self._print("  last_recovery: (none this session)")
            return
        self._print(
            f"  last_recovery: replayed {recovery['records_replayed']} records "
            f"({recovery['txns_committed']} txns), discarded "
            f"{recovery['records_discarded']} records "
            f"({recovery['txns_discarded']} txns)"
        )
        self._print(
            f"    segments_scanned: {recovery['segments_scanned']}  "
            f"frames_decoded: {recovery['frames_decoded']}  "
            f"had_checkpoint: {recovery['had_checkpoint']}  "
            f"torn_tail: {recovery['torn_offset'] is not None}"
        )

    def _require(self, arguments: list[str], n: int, usage: str) -> None:
        if len(arguments) != n:
            raise DatabaseError(f"usage: {usage}")

    def _connect(self, address: str) -> None:
        """``\\connect HOST:PORT`` -- attach this shell to a running service."""
        host, _, port_text = address.rpartition(":")
        if not host or not port_text.isdigit():
            raise DatabaseError("usage: \\connect HOST:PORT")
        if self.remote is not None:
            self._disconnect(silent=True)
        self.remote = ServiceClient(
            host,
            int(port_text),
            connect_timeout=5.0,
            read_timeout=60.0,
            retry=RetryPolicy(),
        )
        self._print(
            f"connected to {address} "
            f"(session {self.remote.session_id}, "
            f"protocol v{self.remote.greeting.get('version')}, "
            f"retries on)"
        )

    def _disconnect(self, silent: bool = False) -> None:
        if self.remote is None:
            if not silent:
                self._print("not connected")
            return
        remote, self.remote = self.remote, None
        remote.close()
        if not silent:
            self._print("disconnected (back to embedded instance)")

    def _load(self, table_name: str, path: str) -> None:
        with open(path, "r", encoding="utf-8") as handle:
            documents = [json.loads(line) for line in handle if line.strip()]
        if self.remote is not None:
            report = self.remote.load(table_name, documents)
            self._print(
                f"loaded {report['loaded']} documents "
                f"({report['new_attributes']} new attributes)"
            )
            return
        if table_name not in self.sdb.collections():
            self.sdb.create_collection(table_name)
        report = self.sdb.load(table_name, documents)
        self._print(
            f"loaded {report.n_documents} documents "
            f"({report.new_attributes} new attributes)"
        )

    def _describe(self, table_name: str) -> None:
        rows = [
            [key, sql_type.value, storage]
            for key, sql_type, storage in self.sdb.logical_schema(table_name)
        ]
        self._print(format_table(["key", "type", "storage"], rows))


def main(argv: list[str] | None = None) -> int:
    """Entry point: read-eval-print over stdin."""
    shell = SinewShell()
    print("Sinew shell -- \\q to quit, \\load NAME FILE to load JSON lines")
    try:
        while shell.running:
            prompt = "sinew> " if shell.remote is None else "sinew(remote)> "
            try:
                line = input(prompt)
            except EOFError:
                break
            shell.run_line(line)
    except KeyboardInterrupt:
        pass
    finally:
        if shell.remote is not None:
            shell.remote.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
