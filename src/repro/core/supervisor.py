"""Crash supervision for background workers (daemon + checkpointer).

The materializer daemon deliberately treats any escaping exception as a
crash that freezes state for recovery (:mod:`repro.core.background`), and
the embedded engine keeps that behaviour: a crashed daemon *stays* crashed
until someone calls ``start_daemon()`` again, which is exactly what the
crash-safety tests rely on.  A long-running service cannot afford that --
a dead materializer silently stops compacting and a dead checkpointer
silently stops truncating the WAL.  :class:`Supervisor` closes the gap:

* a monitor thread polls each registered worker for the crashed state;
* a crashed worker is restarted under **bounded exponential backoff**
  (``backoff_base`` doubling up to ``backoff_max``);
* ``max_restarts`` consecutive failures without a stability window of
  healthy uptime **trips** the worker permanently -- the supervisor stops
  touching it and the tripped state is surfaced in ``SinewDB.status()``
  and the service health response, so operators see a flapping worker
  instead of an infinite crash loop;
* a worker that stays healthy for ``stability_window`` seconds has its
  failure budget reset.

Supervision is strictly **opt-in** (the service enables it via
``ServiceConfig.supervise``); embedded ``SinewDB`` users and the crash
tests keep the freeze-on-crash contract untouched.

The ``supervisor.restart`` fault point fires before each restart attempt,
so chaos schedules can make restarts themselves fail and drive the trip
logic.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from ..rdbms.errors import ConcurrencyError
from .background import MaterializerDaemon


@dataclass
class SupervisorPolicy:
    """Restart policy knobs (see the module docstring)."""

    backoff_base: float = 0.05
    backoff_max: float = 2.0
    #: consecutive failed lives after which the worker is tripped for good
    max_restarts: int = 5
    #: healthy uptime that resets the consecutive-failure budget
    stability_window: float = 5.0
    #: crash-detection poll interval of the monitor thread
    poll_interval: float = 0.02


class DaemonWorker:
    """Adapter: supervise a :class:`MaterializerDaemon`.

    ``restart`` goes through ``daemon.start()``, which runs the normal
    cursor-validating :meth:`~MaterializerDaemon.recover` first -- a
    supervised restart is exactly a manual one.
    """

    def __init__(self, daemon: MaterializerDaemon, name: str = "materializer"):
        self.daemon = daemon
        self.name = name

    def crashed(self) -> bool:
        return self.daemon.state == "crashed" and not self.daemon.is_alive()

    def restart(self) -> None:
        self.daemon.start()

    def describe_error(self) -> str | None:
        return self.daemon.last_error


class PeriodicWorker:
    """A supervisable thread running ``tick()`` every ``interval`` seconds.

    Used by the service for the background checkpointer.  ``tick`` owns its
    routine error handling; an exception escaping it crashes the worker
    (state ``crashed``, ``last_error``/``last_error_at`` recorded) and the
    supervisor -- if one watches this worker -- restarts it.
    """

    def __init__(self, name: str, interval: float, tick: Callable[[], None]):
        self.name = name
        self.interval = interval
        self.tick = tick
        self.state = "idle"
        self.ticks = 0
        self.last_error: str | None = None
        self.last_error_at: float | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        if self.is_alive():
            raise ConcurrencyError(f"worker {self.name!r} is already running")
        self._stop.clear()
        self.state = "running"
        self._thread = threading.Thread(
            target=self._run, name=f"sinew-{self.name}", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
        if self.state != "crashed":
            self.state = "stopped"

    def is_alive(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def crashed(self) -> bool:
        return self.state == "crashed" and not self.is_alive()

    def restart(self) -> None:
        self.start()

    def describe_error(self) -> str | None:
        return self.last_error

    def _run(self) -> None:
        while not self._stop.is_set():
            if self._stop.wait(self.interval):
                break
            try:
                self.tick()
                self.ticks += 1
            except BaseException as error:  # crash: freeze, supervisor restarts
                self.state = "crashed"
                self.last_error = f"{type(error).__name__}: {error}"
                self.last_error_at = time.time()
                return
        if self.state != "crashed":
            self.state = "stopped"


@dataclass
class _Entry:
    """Book-keeping for one supervised worker."""

    worker: Any
    restarts: int = 0
    #: consecutive failed lives (resets after a stability window)
    failures: int = 0
    tripped: bool = False
    last_error: str | None = None
    last_restart_at: float | None = None
    backoff: float = 0.0
    next_attempt: float | None = None
    stable_since: float | None = None
    pending: bool = field(default=False)  # crash counted, restart not yet tried


class Supervisor:
    """Monitor thread restarting crashed workers under a bounded policy."""

    def __init__(
        self,
        policy: SupervisorPolicy | None = None,
        *,
        faults_provider: Callable[[], Any] | None = None,
    ):
        self.policy = policy or SupervisorPolicy()
        #: late-bound FaultInjector lookup (the injector may be attached
        #: after the supervisor is built); fires ``supervisor.restart``
        self._faults_provider = faults_provider
        self._lock = threading.Lock()
        self._entries: dict[str, _Entry] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # registration / lifecycle
    # ------------------------------------------------------------------

    def add(self, worker: Any) -> None:
        """Register a worker (duck-typed: name/crashed/restart/describe_error)."""
        with self._lock:
            self._entries[worker.name] = _Entry(
                worker=worker, backoff=self.policy.backoff_base
            )

    def start(self) -> None:
        if self._thread is not None and self._thread.is_alive():
            raise ConcurrencyError("supervisor is already running")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._monitor, name="sinew-supervisor", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
        self._thread = None

    def is_alive(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def reset(self, name: str | None = None) -> None:
        """Clear trip/failure state (operator recovery path).

        ``\\service recover`` calls this after bringing the WAL back so a
        worker tripped by crash-looping on the degraded log gets a fresh
        restart budget.
        """
        with self._lock:
            entries = (
                [self._entries[name]] if name is not None else self._entries.values()
            )
            for entry in entries:
                entry.tripped = False
                entry.failures = 0
                entry.pending = False
                entry.backoff = self.policy.backoff_base
                entry.next_attempt = None

    # ------------------------------------------------------------------
    # status
    # ------------------------------------------------------------------

    def status(self) -> dict[str, dict[str, Any]]:
        with self._lock:
            return {
                name: {
                    "restarts": entry.restarts,
                    "consecutive_failures": entry.failures,
                    "tripped": entry.tripped,
                    "last_error": entry.last_error,
                    "last_restart_at": entry.last_restart_at,
                    "backoff": entry.backoff,
                }
                for name, entry in self._entries.items()
            }

    def tripped(self) -> list[str]:
        with self._lock:
            return [n for n, e in self._entries.items() if e.tripped]

    def total_restarts(self) -> int:
        with self._lock:
            return sum(e.restarts for e in self._entries.values())

    # ------------------------------------------------------------------
    # the monitor loop
    # ------------------------------------------------------------------

    def _monitor(self) -> None:
        while not self._stop.wait(self.policy.poll_interval):
            with self._lock:
                entries = list(self._entries.values())
            for entry in entries:
                self._check(entry)

    def _check(self, entry: _Entry) -> None:
        worker = entry.worker
        now = time.monotonic()
        if not worker.crashed():
            # healthy (or still coming up): a long-enough quiet stretch
            # earns the failure budget back
            with self._lock:
                if (
                    entry.failures
                    and not entry.pending
                    and entry.stable_since is not None
                    and now - entry.stable_since >= self.policy.stability_window
                ):
                    entry.failures = 0
                    entry.backoff = self.policy.backoff_base
            return
        with self._lock:
            if entry.tripped:
                return
            if not entry.pending:
                # first sighting of this crash: count the failed life and
                # schedule the restart after the current backoff
                entry.pending = True
                entry.failures += 1
                entry.last_error = worker.describe_error()
                entry.stable_since = None
                if entry.failures > self.policy.max_restarts:
                    entry.tripped = True
                    return
                entry.next_attempt = now + entry.backoff
                entry.backoff = min(entry.backoff * 2, self.policy.backoff_max)
                return
            if entry.next_attempt is None or now < entry.next_attempt:
                return
            entry.next_attempt = None
        # restart outside the lock: daemon.start() runs recover(), which
        # touches the catalog, and must not serialize against status()
        try:
            faults = self._faults_provider() if self._faults_provider else None
            if faults is not None:
                faults.fire("supervisor.restart", worker=worker.name)
            worker.restart()
        except Exception as error:
            with self._lock:
                entry.last_error = (
                    f"restart failed: {type(error).__name__}: {error}"
                )
                entry.failures += 1
                if entry.failures > self.policy.max_restarts:
                    entry.tripped = True
                else:
                    entry.next_attempt = time.monotonic() + entry.backoff
                    entry.backoff = min(
                        entry.backoff * 2, self.policy.backoff_max
                    )
            return
        with self._lock:
            entry.pending = False
            entry.restarts += 1
            entry.last_restart_at = time.time()
            entry.stable_since = time.monotonic()
