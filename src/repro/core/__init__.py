"""Sinew itself: the paper's primary contribution.

The pieces map one-to-one onto Figure 1 of the paper:

* :mod:`repro.core.serializer` -- the custom binary format (section 4.1)
* :mod:`repro.core.catalog` -- attribute dictionary + per-table catalog
* :mod:`repro.core.loader` -- bulk loader (section 3.2.1)
* :mod:`repro.core.schema_analyzer` -- materialization policy (3.1.3)
* :mod:`repro.core.materializer` -- incremental column moves (3.1.4)
* :mod:`repro.core.background` -- the background materializer daemon (3.1.4)
* :mod:`repro.core.rewriter` -- logical-to-physical SQL rewriting (3.2.2)
* :mod:`repro.core.text_index` -- inverted index / matches() (4.3)
* :mod:`repro.core.arrays` -- array storage strategies (4.2)
* :mod:`repro.core.sinew` -- the ``SinewDB`` facade
"""

from .arrays import ArrayConfig, ArrayStorageManager, ArrayStrategy
from .background import DaemonStatus, MaterializerDaemon, RecoveryReport
from .catalog import Attribute, ColumnState, SinewCatalog, TableCatalog
from .document import DocumentError, flatten, infer_sql_type, parse_document
from .extractors import ReservoirExtractor
from .loader import LoadReport, SinewLoader
from .materializer import ColumnMaterializer, MaterializerReport
from .rewriter import QueryRewriter
from .schema_analyzer import (
    AnalyzerDecision,
    AnalyzerReport,
    MaterializationPolicy,
    SchemaAnalyzer,
)
from .sinew import SinewConfig, SinewDB
from .text_index import InvertedTextIndex, tokenize

__all__ = [
    "AnalyzerDecision",
    "ArrayConfig",
    "ArrayStorageManager",
    "ArrayStrategy",
    "AnalyzerReport",
    "Attribute",
    "ColumnMaterializer",
    "ColumnState",
    "DaemonStatus",
    "DocumentError",
    "MaterializerDaemon",
    "RecoveryReport",
    "InvertedTextIndex",
    "LoadReport",
    "MaterializationPolicy",
    "MaterializerReport",
    "QueryRewriter",
    "ReservoirExtractor",
    "SchemaAnalyzer",
    "SinewCatalog",
    "SinewConfig",
    "SinewDB",
    "SinewLoader",
    "TableCatalog",
    "flatten",
    "infer_sql_type",
    "parse_document",
    "tokenize",
]
