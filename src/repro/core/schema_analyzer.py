"""The schema analyzer (paper section 3.1.3).

Periodically evaluates the current physical/virtual split recorded in the
catalog and decides which attributes to materialize into physical columns
and which materialized columns to dematerialize back into the reservoir.

Policy (the one the paper's evaluation uses, section 6.1): an attribute is
materialized when its **density** (fraction of documents containing it) is
at least ``density_threshold`` (default 0.6) **and** its **cardinality**
(distinct-value count) exceeds ``cardinality_threshold`` (default 200).
On the NoBench dataset this policy selects exactly ``str1``, ``num``,
``nested_arr``, ``nested_obj`` and ``thousandth`` -- low-cardinality dense
keys like ``bool`` stay virtual because the optimizer gains little from
statistics on two-valued columns, and the per-type split of the dynamic
keys keeps each ``dyn1``/``dyn2`` attribute below the density threshold.

Already-materialized columns that drop below the thresholds are marked for
dematerialization (section 3.1.3's final paragraph).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..rdbms.database import Database
from ..rdbms.types import SqlType
from . import serializer
from .catalog import ColumnState, SinewCatalog, column_state_payload
from .loader import RESERVOIR_COLUMN

#: Tracking more distinct values than this is pointless: the policy only
#: needs to know whether cardinality exceeds the threshold.
_DISTINCT_TRACKING_CAP = 4096


@dataclass
class MaterializationPolicy:
    """Thresholds for the materialization decision.

    The base rule is the paper's evaluation policy (section 6.1): density
    >= 60% AND cardinality > 200.  Section 3.1.3 additionally says the
    analyzer adapts "to evolving data models *and query patterns*";
    setting ``hot_access_threshold`` enables that adaptive mode: an
    attribute referenced by at least that many queries since the last
    analyzer pass is materialized even when too sparse for the base rule
    (a sparse-but-hot key gains real optimizer statistics and loses its
    per-row extraction cost), and a hot materialized column is never
    dematerialized mid-workload.
    """

    density_threshold: float = 0.6
    cardinality_threshold: int = 200
    #: When True, flattened nested keys (``user.id``) are materialization
    #: candidates too (paper section 4.2: sub-attributes of a materialized
    #: nested object "are marked for materialization if necessary").  The
    #: default keeps the paper's evaluation behaviour of materializing only
    #: top-level keys.
    include_nested: bool = False
    #: Query-pattern adaptivity: queries-per-analyzer-window above which an
    #: attribute counts as hot.  None disables the adaptive mode.
    hot_access_threshold: int | None = None

    def should_materialize(self, density: float, cardinality: int) -> bool:
        return (
            density >= self.density_threshold
            and cardinality > self.cardinality_threshold
        )

    def is_hot(self, access_count: int) -> bool:
        return (
            self.hot_access_threshold is not None
            and access_count >= self.hot_access_threshold
        )


@dataclass
class AnalyzerDecision:
    """One decision taken by an analyzer run."""

    key_name: str
    attr_id: int
    action: str  # "materialize" | "dematerialize"
    density: float
    cardinality: int
    #: why: "policy" (density+cardinality rule) or "hot" (query patterns)
    reason: str = "policy"


@dataclass
class AnalyzerReport:
    """Everything one analyzer pass decided."""

    table_name: str
    decisions: list[AnalyzerDecision] = field(default_factory=list)

    def materialized_keys(self) -> list[str]:
        return [d.key_name for d in self.decisions if d.action == "materialize"]

    def dematerialized_keys(self) -> list[str]:
        return [d.key_name for d in self.decisions if d.action == "dematerialize"]


class SchemaAnalyzer:
    """Evaluates the catalog and marks columns for (de)materialization.

    The analyzer only flips catalog state (``materialized`` target +
    ``dirty``); the actual data movement is the column materializer's job,
    keeping the two processes independently schedulable as in the paper.
    """

    def __init__(
        self,
        db: Database,
        catalog: SinewCatalog,
        policy: MaterializationPolicy | None = None,
        prepare_column=None,
    ):
        self.db = db
        self.catalog = catalog
        self.policy = policy or MaterializationPolicy()
        #: optional hook (table_name, state) that allocates the physical
        #: column *before* the dirty flag becomes visible, so no query can
        #: plan against a dirty column whose physical side does not exist
        self.prepare_column = prepare_column

    def analyze(self, table_name: str) -> AnalyzerReport:
        """One analyzer pass over ``table_name``."""
        report = AnalyzerReport(table_name)
        table_catalog = self.catalog.table(table_name)
        n_documents = table_catalog.n_documents
        if n_documents == 0:
            return report

        cardinalities = self._measure_cardinalities(
            table_name, list(table_catalog.columns.values())
        )
        for attr_id, state in table_catalog.columns.items():
            attribute = self.catalog.attribute(attr_id)
            if "." in attribute.key_name and not self.policy.include_nested:
                # Flattened sub-keys are cataloged for the logical view but
                # by default only top-level keys are materialization
                # candidates (the paper's evaluation policy).
                continue
            density = state.density(n_documents)
            cardinality = cardinalities.get(attr_id, 0)
            by_policy = self.policy.should_materialize(density, cardinality)
            hot = self.policy.is_hot(state.access_count)
            wants_physical = by_policy or hot
            if wants_physical and not state.materialized:
                if self.prepare_column is not None:
                    self.prepare_column(table_name, state)
                # The latch serializes the flip with in-flight materializer
                # slices: a direction change resets the progress cursor (a
                # stale mid-pass cursor would skip already-moved rows) and
                # dirty becomes visible first, so concurrent query planning
                # always sees the COALESCE bridge, never a bare read of the
                # still-empty physical column.
                with self.catalog.exclusive_latch("schema-flip"):
                    self.catalog.stamp_flip(state)
                    state.dirty = True
                    state.materialized = True
                    self.db.log_catalog(column_state_payload(table_name, state))
                report.decisions.append(
                    AnalyzerDecision(
                        attribute.key_name,
                        attr_id,
                        "materialize",
                        density,
                        cardinality,
                        reason="policy" if by_policy else "hot",
                    )
                )
            elif not wants_physical and state.materialized:
                with self.catalog.exclusive_latch("schema-flip"):
                    self.catalog.stamp_flip(state)
                    state.dirty = True
                    state.materialized = False
                    self.db.log_catalog(column_state_payload(table_name, state))
                report.decisions.append(
                    AnalyzerDecision(
                        attribute.key_name,
                        attr_id,
                        "dematerialize",
                        density,
                        cardinality,
                    )
                )
            # the access window closes with each analyzer pass
            state.access_count = 0
        return report

    def _measure_cardinalities(
        self, table_name: str, states: Iterable[ColumnState]
    ) -> dict[int, int]:
        """Distinct-value counts per attribute, from one reservoir scan.

        Physical columns could use the RDBMS's ANALYZE statistics instead;
        a single scan covering both physical values and reservoir values is
        simpler and exact at benchmark scale.  Tracking per attribute stops
        at :data:`_DISTINCT_TRACKING_CAP` -- the policy only compares
        against a threshold far below the cap.
        """
        table = self.db.table(table_name)
        data_position = table.schema.position_of(RESERVOIR_COLUMN)
        physical_positions: dict[int, int] = {}
        for state in states:
            if state.physical_name and state.physical_name in table.schema:
                physical_positions[state.attr_id] = table.schema.position_of(
                    state.physical_name
                )

        distinct: dict[int, set] = {}
        saturated: set[int] = set()

        def observe(data: bytes) -> None:
            """Count distinct encoded values, recursing into sub-documents
            so nested attributes are candidates too."""
            for attr_id, raw in serializer.iterate(data):
                if attr_id not in saturated:
                    seen = distinct.setdefault(attr_id, set())
                    seen.add(bytes(raw))
                    if len(seen) >= _DISTINCT_TRACKING_CAP:
                        saturated.add(attr_id)
                if self.catalog.type_of(attr_id) is SqlType.BYTEA:
                    observe(bytes(raw))

        for _rid, row in table.scan():
            data = row[data_position]
            if data:
                observe(data)
            for attr_id, position in physical_positions.items():
                if attr_id in saturated:
                    continue
                value = row[position]
                if value is None:
                    continue
                seen = distinct.setdefault(attr_id, set())
                try:
                    seen.add(value if not isinstance(value, list) else tuple(value))
                except TypeError:
                    seen.add(repr(value))
                if len(seen) >= _DISTINCT_TRACKING_CAP:
                    saturated.add(attr_id)
        return {attr_id: len(seen) for attr_id, seen in distinct.items()}
