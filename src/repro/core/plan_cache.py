"""Prepared-statement / plan cache keyed on normalized SQL.

The expensive, correctness-sensitive half of running a Sinew query is
everything *before* physical planning: semantic analysis (with its
occurrence-count-driven provably-NULL pruning) and the catalog-flag-driven
rewrite (bare physical read vs. COALESCE bridge vs. pure extraction).
This cache memoizes that half as a :class:`PreparedSelect`.

Correctness hinges on invalidation: a rewritten statement bakes in the
catalog state it observed, so every entry is stamped with the catalog's
:meth:`~repro.core.catalog.SinewCatalog.plan_token` at prepare time and
is only served while the live token still matches.  A materializer
direction flip bumps the schema epoch; loads, logical DML, collection
DDL, and the materializer finish path (which may drop a physical column)
bump the data epoch -- either mismatch is a *stale* miss that evicts the
entry and forces a re-prepare (DESIGN.md section 12).

Keys are whitespace/comment/case-insensitive: :func:`normalize_sql` runs
the real SQL lexer and joins the token stream, so two spellings of the
same statement share an entry while differing string literals never do.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from ..rdbms.sql.ast import SelectStatement
from ..rdbms.sql.lexer import tokenize

__all__ = ["PlanCache", "PreparedSelect", "normalize_sql"]

DEFAULT_PLAN_CACHE_SIZE = 256


def _escape_token(value: str) -> str:
    """Make a token value separator-free so the key join stays injective.

    String literals can contain the ``\\x1f``/``\\x1e`` separator bytes;
    unescaped, a single literal embedding them could normalize to the
    same key as a different statement whose token boundaries fall at
    those bytes -- and serve it the wrong cached plan.
    """
    return (
        value.replace("\\", "\\\\")
        .replace("\x1f", "\\u")
        .replace("\x1e", "\\r")
    )


def normalize_sql(sql: str) -> str | None:
    """Lexer-normalized cache key for one statement, or None on bad SQL.

    Token *values* keep their semantics (string literals are compared by
    content, identifiers arrive already case-folded from the lexer), and
    the token *type* is folded in so ``'x'`` the string never collides
    with ``x`` the identifier.
    """
    try:
        tokens = tokenize(sql)
    except Exception:
        return None
    return "\x1f".join(
        f"{token.type.value[0]}\x1e{_escape_token(str(token.value))}"
        for token in tokens
    )


@dataclass
class PreparedSelect:
    """The reusable prepare-phase output of one SELECT.

    Physical planning still happens per execution (optimizer statistics
    may move between runs); what is cached is the parse + analyze +
    rewrite pipeline and the star-expansion bindings.
    """

    rewritten: SelectStatement
    #: the semantic-analysis result (warnings re-attach on every execution)
    analysis: Any
    #: multi-key extraction hint for the single-decode cache (>1 only)
    extraction_hint: int | None
    #: Sinew tables covered by ``*`` items, in output order
    star_bindings: list[str]
    #: catalog plan token observed at prepare time
    token: tuple[int, int]


class PlanCache:
    """Thread-safe LRU of :class:`PreparedSelect` entries.

    Shared by every session of one service (and usable in-process via
    ``SinewConfig.plan_cache_size``); all counters are cumulative and
    surface through ``SinewDB.status()["plan_cache"]``.
    """

    def __init__(self, capacity: int = DEFAULT_PLAN_CACHE_SIZE):
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, PreparedSelect] = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: capacity evictions (LRU fell off the end)
        self.evictions = 0
        #: validity evictions (schema/data epoch moved under the entry)
        self.stale_evictions = 0

    def lookup(self, key: str, token: tuple[int, int]) -> PreparedSelect | None:
        """Serve a valid entry or record a miss (evicting a stale hit)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry.token != token:
                del self._entries[key]
                self.stale_evictions += 1
                entry = None
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def store(self, key: str, prepared: PreparedSelect) -> None:
        with self._lock:
            self._entries[key] = prepared
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "stale_evictions": self.stale_evictions,
            }
