"""Inverted text index (paper section 4.3; Apache Solr in the prototype).

The index tokenizes every string value of every document, faceted by the
flattened attribute name ("it can give the option of faceting its term
vectors by strongly typed fields"), and keeps numeric values in sorted
per-field lists for range probes.  Sinew uses it two ways:

* predicates over virtual columns can be answered from the index instead
  of reservoir extraction (``search_term`` / ``search_range``), and
* the ``matches(keys, query)`` SQL function gives full-text search over
  any subset of fields, including a generic text field for completely
  unstructured data.

The result of every search is a set of row ids (``_id`` values), applied
as a filter on the original relation -- the same integration contract the
paper uses for Solr.
"""

from __future__ import annotations

import bisect
import re
from collections import defaultdict
from typing import Any, Iterable, Mapping

from .document import flatten

_TOKEN_RE = re.compile(r"[A-Za-z0-9_=]+")


def tokenize(text: str) -> list[str]:
    """Lower-cased alphanumeric tokens of a string value."""
    return [token.lower() for token in _TOKEN_RE.findall(text)]


class InvertedTextIndex:
    """An in-process inverted index over document collections."""

    def __init__(self):
        # field -> term -> set of rids
        self._postings: dict[str, dict[str, set[int]]] = defaultdict(dict)
        # term -> set of rids (the '*' field)
        self._global: dict[str, set[int]] = {}
        # field -> sorted list of (numeric value, rid)
        self._numeric: dict[str, list[tuple[float, int]]] = defaultdict(list)
        # rid -> entries for removal on update
        self._doc_terms: dict[int, list[tuple[str, str]]] = {}
        self._doc_numbers: dict[int, list[tuple[str, float]]] = {}
        self.n_documents = 0

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def index_document(self, rid: int, document: Mapping[str, Any]) -> None:
        """Add one document; replaces any previous entry for ``rid``."""
        if rid in self._doc_terms or rid in self._doc_numbers:
            self.remove_document(rid)
        term_entries: list[tuple[str, str]] = []
        number_entries: list[tuple[str, float]] = []
        for field, value in flatten(document):
            if isinstance(value, str):
                for term in tokenize(value):
                    self._add_term(field, term, rid)
                    term_entries.append((field, term))
            elif isinstance(value, bool):
                term = "true" if value else "false"
                self._add_term(field, term, rid)
                term_entries.append((field, term))
            elif isinstance(value, (int, float)):
                bisect.insort(self._numeric[field], (float(value), rid))
                number_entries.append((field, float(value)))
            elif isinstance(value, (list, tuple)):
                for element in value:
                    if isinstance(element, str):
                        for term in tokenize(element):
                            self._add_term(field, term, rid)
                            term_entries.append((field, term))
        self._doc_terms[rid] = term_entries
        self._doc_numbers[rid] = number_entries
        self.n_documents += 1

    def index_text(self, rid: int, text: str, field: str = "_text") -> None:
        """Index completely unstructured text under a generic field."""
        entries = self._doc_terms.setdefault(rid, [])
        for term in tokenize(text):
            self._add_term(field, term, rid)
            entries.append((field, term))

    def remove_document(self, rid: int) -> None:
        for field, term in self._doc_terms.pop(rid, ()):
            postings = self._postings.get(field, {}).get(term)
            if postings is not None:
                postings.discard(rid)
            universal = self._global.get(term)
            if universal is not None:
                universal.discard(rid)
        for field, value in self._doc_numbers.pop(rid, ()):
            values = self._numeric.get(field)
            if values is not None:
                position = bisect.bisect_left(values, (value, rid))
                if position < len(values) and values[position] == (value, rid):
                    values.pop(position)
        self.n_documents = max(0, self.n_documents - 1)

    def _add_term(self, field: str, term: str, rid: int) -> None:
        self._postings[field].setdefault(term, set()).add(rid)
        self._global.setdefault(term, set()).add(rid)

    # ------------------------------------------------------------------
    # search primitives
    # ------------------------------------------------------------------

    def search_term(self, field: str | None, term: str) -> set[int]:
        """Exact term match in one field (or any field when None)."""
        term = term.lower()
        if field is None or field == "*":
            return set(self._global.get(term, ()))
        return set(self._postings.get(field, {}).get(term, ()))

    def search_prefix(self, field: str | None, prefix: str) -> set[int]:
        """Partial matching: every term starting with ``prefix``."""
        prefix = prefix.lower()
        source: Iterable[tuple[str, set[int]]]
        if field is None or field == "*":
            source = self._global.items()
        else:
            source = self._postings.get(field, {}).items()
        matched: set[int] = set()
        for term, rids in source:
            if term.startswith(prefix):
                matched.update(rids)
        return matched

    def search_fuzzy(self, field: str | None, term: str, max_edits: int = 1) -> set[int]:
        """Fuzzy matching within an edit-distance budget."""
        term = term.lower()
        if field is None or field == "*":
            candidates = self._global.items()
        else:
            candidates = self._postings.get(field, {}).items()
        matched: set[int] = set()
        for candidate, rids in candidates:
            if abs(len(candidate) - len(term)) <= max_edits and _edit_distance_at_most(
                candidate, term, max_edits
            ):
                matched.update(rids)
        return matched

    def search_range(
        self, field: str, low: float | None, high: float | None
    ) -> set[int]:
        """Numeric range probe over one field (inclusive bounds)."""
        values = self._numeric.get(field, [])
        start = 0 if low is None else bisect.bisect_left(values, (float(low), -1))
        end = (
            len(values)
            if high is None
            else bisect.bisect_right(values, (float(high), float("inf")))
        )
        return {rid for _value, rid in values[start:end]}

    # ------------------------------------------------------------------
    # the matches() query language
    # ------------------------------------------------------------------

    def matches(self, keys: str, query: str) -> set[int]:
        """Evaluate a ``matches(keys, query)`` call.

        ``keys`` is ``'*'`` or a comma-separated field list.  ``query`` is a
        conjunction of terms; a trailing ``*`` makes a term a prefix match,
        a ``~`` suffix makes it fuzzy, and ``/regex/`` matches terms by
        regular expression.
        """
        fields = self._parse_fields(keys)
        result: set[int] | None = None
        for raw_term in query.split():
            matched = self._match_one(fields, raw_term)
            result = matched if result is None else result & matched
            if not result:
                return set()
        return result if result is not None else set()

    def _parse_fields(self, keys: str) -> list[str | None]:
        if keys.strip() == "*":
            return [None]
        return [key.strip() for key in keys.split(",") if key.strip()]

    def _match_one(self, fields: list[str | None], raw_term: str) -> set[int]:
        matched: set[int] = set()
        for field in fields:
            if len(raw_term) > 2 and raw_term.startswith("/") and raw_term.endswith("/"):
                pattern = re.compile(raw_term[1:-1])
                source = (
                    self._global.items()
                    if field is None
                    else self._postings.get(field, {}).items()
                )
                for term, rids in source:
                    if pattern.search(term):
                        matched.update(rids)
            elif raw_term.endswith("*"):
                matched.update(self.search_prefix(field, raw_term[:-1]))
            elif raw_term.endswith("~"):
                matched.update(self.search_fuzzy(field, raw_term[:-1]))
            else:
                matched.update(self.search_term(field, raw_term))
        return matched


def _edit_distance_at_most(a: str, b: str, budget: int) -> bool:
    """Banded Levenshtein check: is distance(a, b) <= budget?"""
    if a == b:
        return True
    if abs(len(a) - len(b)) > budget:
        return False
    previous = list(range(len(b) + 1))
    for i, ch_a in enumerate(a, start=1):
        current = [i]
        row_min = i
        for j, ch_b in enumerate(b, start=1):
            cost = 0 if ch_a == ch_b else 1
            value = min(
                previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost
            )
            current.append(value)
            row_min = min(row_min, value)
        if row_min > budget:
            return False
        previous = current
    return previous[-1] <= budget
