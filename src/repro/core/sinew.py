"""``SinewDB`` -- the complete system facade.

Wires together every component of Figure 1: the underlying RDBMS, the
catalog, the loader, the schema analyzer, the column materializer, the
query rewriter, and the optional inverted text index.  A typical session::

    from repro.core import SinewDB

    sdb = SinewDB("demo")
    sdb.create_collection("webrequests")
    sdb.load("webrequests", [{"url": "www.sample-site.com", "hits": 22}])
    sdb.query("SELECT url FROM webrequests WHERE hits > 20")

Users only ever see the logical universal relation; the physical hybrid
schema (which attributes are materialized, which are dirty mid-move) is
invisible except through :meth:`logical_schema`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping

from ..analysis.analyzer import AnalysisResult, SemanticAnalyzer
from ..analysis.checker import CheckReport, IntegrityChecker, validate_document
from ..rdbms.database import Database, DatabaseConfig, DbSession, QueryResult
from ..rdbms.errors import CatalogError, PlanningError, SemanticError
from ..rdbms.transactions import CheckpointInfo
from ..rdbms.expressions import Star
from ..rdbms.sql.ast import (
    DeleteStatement,
    SelectItem,
    SelectStatement,
    UpdateStatement,
)
from ..rdbms.sql.parser import parse
from ..rdbms.types import SqlType
from .background import DEFAULT_IDLE_SLEEP, DEFAULT_STEP_ROWS, MaterializerDaemon
from .catalog import SinewCatalog, column_state_payload
from .extractors import ReservoirExtractor, register_extraction_udfs
from .loader import ID_COLUMN, RESERVOIR_COLUMN, LoadReport, SinewLoader
from .materializer import ColumnMaterializer, MaterializerReport
from .plan_cache import PlanCache, PreparedSelect, normalize_sql
from .rewriter import QueryRewriter
from .schema_analyzer import (
    AnalyzerReport,
    MaterializationPolicy,
    SchemaAnalyzer,
)
from .text_index import InvertedTextIndex


@dataclass
class SinewConfig:
    """Configuration for a :class:`SinewDB` instance."""

    database: DatabaseConfig = field(default_factory=DatabaseConfig)
    policy: MaterializationPolicy = field(default_factory=MaterializationPolicy)
    enable_text_index: bool = False
    #: section 4.3: automatically prefilter equality predicates on virtual
    #: text columns through the inverted index (requires enable_text_index)
    rewrite_predicates_with_index: bool = False
    #: run the semantic analyzer before rewriting: errors (SNW1xx) block
    #: execution, warnings (SNW2xx) attach to the result, and provably-NULL
    #: predicates are pruned before they cost extraction UDF calls
    analyze_queries: bool = True
    #: row budget of one background-materializer slice (section 3.1.4);
    #: smaller values yield the catalog latch to the loader more often
    daemon_step_rows: int = DEFAULT_STEP_ROWS
    #: how long the idle daemon sleeps between backlog checks (seconds)
    daemon_idle_sleep: float = DEFAULT_IDLE_SLEEP
    #: per-query decoded-document cursor cache: parse each row's reservoir
    #: header at most once per query no matter how many virtual columns,
    #: predicates, or COALESCE bridges touch it (DESIGN.md section 8)
    enable_extraction_cache: bool = True
    #: prepared-plan cache capacity; 0 disables caching entirely (the
    #: embedded default).  The service layer enables it so repeated
    #: statements skip parse + analyze + rewrite; entries invalidate on
    #: schema-epoch or data-epoch movement (DESIGN.md section 12)
    plan_cache_size: int = 0


class SinewDB:
    """A Sinew instance: SQL over multi-structured data, no schema needed."""

    def __init__(
        self,
        name: str = "sinew",
        config: SinewConfig | None = None,
        *,
        path: str | Path | None = None,
    ):
        self.name = name
        self.config = config or SinewConfig()
        # recovery is deferred so the Sinew catalog hooks below exist before
        # any WAL CATALOG record needs them
        self.db = Database(name, self.config.database, path=path, defer_recovery=True)
        self.catalog = SinewCatalog()
        self.extractor = ReservoirExtractor(self.catalog)
        self.loader = SinewLoader(self.db, self.catalog)
        self.analyzer = SchemaAnalyzer(self.db, self.catalog, self.config.policy)
        self.materializer = ColumnMaterializer(self.db, self.catalog, self.extractor)
        self.analyzer.prepare_column = self.materializer.prepare_column
        self._collections: set[str] = set()
        self.daemon = MaterializerDaemon(
            self.materializer,
            self.catalog,
            self.collections,
            step_rows=self.config.daemon_step_rows,
            idle_sleep=self.config.daemon_idle_sleep,
        )
        self.faults = None
        #: opt-in crash supervision (see :meth:`supervise`); never started
        #: implicitly so the freeze-on-crash daemon contract holds by default
        self.supervisor = None
        self.plan_cache = (
            PlanCache(self.config.plan_cache_size)
            if self.config.plan_cache_size > 0
            else None
        )
        self.text_index = InvertedTextIndex() if self.config.enable_text_index else None
        self._matches_cache: dict[tuple[str, str], set[int]] = {}
        register_extraction_udfs(self.db, self.extractor)
        # a cached set-membership probe, not reservoir extraction work, so
        # it stays out of the udf_calls extraction counter
        self.db.create_function(
            "sinew_matches", self._sinew_matches, SqlType.BOOLEAN, counts_as_udf=False
        )
        # per-row structural audit of one serialized document; a header
        # probe, not extraction work, so it stays out of udf_calls
        self.db.create_function(
            "sinew_check", self._sinew_check, SqlType.TEXT, counts_as_udf=False
        )
        #: recovery stats from the last reopen (None = fresh database)
        self.last_recovery: dict[str, Any] | None = None
        if path is not None:
            self._recover_from_disk()

    # ------------------------------------------------------------------
    # durability lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def open(
        cls,
        path: str | Path,
        name: str = "sinew",
        config: SinewConfig | None = None,
    ) -> "SinewDB":
        """Open (or create) a durable Sinew instance rooted at ``path``.

        On an existing directory this replays the WAL from the last
        checkpoint: committed transactions are redone, uncommitted tails
        discarded, and a torn final record truncated.  The recovered
        instance resumes exactly where the crashed one stopped -- including
        mid-flight column materialization (see :meth:`start_daemon`).
        """
        return cls(name, config, path=path)

    def close(self) -> None:
        """Checkpoint and shut down cleanly (stops the daemon first).

        A closed database reopens without any WAL replay; killing the
        process *without* calling close is also safe -- that is what the
        WAL is for -- it just makes the next open do recovery work.
        """
        if self.supervisor is not None:
            self.supervisor.stop()
            self.supervisor = None
        if self.daemon.is_alive():
            self.daemon.stop()
        if self.db.path is not None and self.db.wal.active and not self.db.wal.degraded:
            self.checkpoint()
        self.db.close(checkpoint=False)

    def checkpoint(self) -> CheckpointInfo:
        """Snapshot heap + catalog and truncate dead WAL segments.

        Takes the catalog latch, so the materializer daemon is quiesced for
        the duration -- the snapshot is a transactionally consistent cut.
        """
        with self.catalog.exclusive_latch("checkpointer"):
            return self.db.checkpoint(
                extra={
                    "catalog": self.catalog.snapshot_state(),
                    "collections": sorted(self._collections),
                }
            )

    def _recover_from_disk(self) -> None:
        stats = self.db.recover(
            extra_restore=self._restore_checkpoint_extra,
            catalog_apply=self._apply_catalog_record,
        )
        self.last_recovery = stats
        had_state = stats is not None and (
            stats["had_checkpoint"] or stats["frames_decoded"]
        )
        if not had_state:
            return
        # Validate materializer cursors against the recovered row horizon
        # so a restarted daemon resumes mid-column (never past the end).
        self.daemon.recover()
        if self.text_index is not None:
            # the inverted index is in-memory-only: rebuild it from the
            # recovered documents
            for table_name in self.collections():
                for doc_id, document in self.documents(table_name):
                    self.text_index.index_document(doc_id, document)

    def _restore_checkpoint_extra(self, extra: Any) -> None:
        """Rebuild the Sinew catalog from the checkpoint's ``extra`` blob."""
        if not extra:
            return
        self.catalog.restore_state(extra["catalog"])
        self._collections.update(extra["collections"])

    def _apply_catalog_record(self, payload: Mapping[str, Any]) -> None:
        """Redo one committed CATALOG WAL record (see the emitting sites:
        loader batches, column-state flips, cursor advances, UPDATE count
        corrections, collection DDL)."""
        op = payload.get("op")
        if op == "load":
            for attr_id, key_name, type_value in payload["attrs"]:
                self.catalog.ensure_attribute(attr_id, key_name, SqlType(type_value))
            table_catalog = self.catalog.table(payload["table"])
            for attr_id, occurrences in payload["counts"].items():
                table_catalog.state(attr_id).count += occurrences
            for attr_id in payload["dirtied"]:
                table_catalog.state(attr_id).dirty = True
            table_catalog.n_documents = payload["n_documents"]
        elif op == "state":
            state = self.catalog.table(payload["table"]).state(payload["attr_id"])
            state.count = payload["count"]
            # dirty before materialized (SNW402): recovery replays with no
            # concurrent planners today, but the redo path must still obey
            # the live write protocol rather than silently inverting it
            state.dirty = payload["dirty"]
            state.materialized = payload["materialized"]
            state.physical_name = payload["physical_name"]
            state.cursor = payload["cursor"]
        elif op == "cursor":
            state = self.catalog.table(payload["table"]).state(payload["attr_id"])
            state.cursor = payload["cursor"]
        elif op == "counts":
            for attr_id, key_name, type_value in payload.get("attrs", ()):
                self.catalog.ensure_attribute(attr_id, key_name, SqlType(type_value))
            table_catalog = self.catalog.table(payload["table"])
            for attr_id, count in payload["counts"].items():
                table_catalog.state(attr_id).count = count
        elif op == "collection":
            if payload["action"] == "add":
                self.catalog.table(payload["table"])
                self._collections.add(payload["table"])
            else:
                self.catalog.tables.pop(payload["table"], None)
                self._collections.discard(payload["table"])

    # ------------------------------------------------------------------
    # collections and loading
    # ------------------------------------------------------------------

    def create_collection(self, table_name: str) -> None:
        """Create a Sinew table: ``(_id integer, data bytea)`` to start."""
        self.db.create_table(
            table_name, [(ID_COLUMN, SqlType.INTEGER), (RESERVOIR_COLUMN, SqlType.BYTEA)]
        )
        self.catalog.table(table_name)
        self._collections.add(table_name)
        self.catalog.bump_data_epoch()
        self.db.log_catalog(
            {"op": "collection", "action": "add", "table": table_name}
        )

    def drop_collection(self, table_name: str) -> None:
        self.db.drop_table(table_name)
        self.catalog.tables.pop(table_name, None)
        self._collections.discard(table_name)
        self.catalog.bump_data_epoch()
        self.db.log_catalog(
            {"op": "collection", "action": "drop", "table": table_name}
        )

    def collections(self) -> list[str]:
        return sorted(self._collections)

    def load(
        self, table_name: str, documents: Iterable[str | Mapping[str, Any]]
    ) -> LoadReport:
        """Bulk-load documents (JSON strings or mappings)."""
        self._require_collection(table_name)
        documents = list(documents)
        report = self.loader.load(table_name, documents)
        if self.text_index is not None:
            base = self.catalog.table(table_name).n_documents - report.n_documents
            from .document import parse_document

            for offset, document in enumerate(documents):
                self.text_index.index_document(base + offset, parse_document(document))
        self._matches_cache.clear()
        # new attributes / occurrence counts stale any cached plan
        self.catalog.bump_data_epoch()
        # a load dirties every materialized column: wake the daemon
        self.daemon.kick()
        return report

    # ------------------------------------------------------------------
    # schema management
    # ------------------------------------------------------------------

    def analyze_schema(self, table_name: str) -> AnalyzerReport:
        """Run the schema analyzer pass (decides what to (de)materialize)."""
        self._require_collection(table_name)
        return self.analyzer.analyze(table_name)

    def materialize(self, table_name: str, key_name: str, key_type: SqlType) -> None:
        """Explicitly mark an attribute for materialization.

        The analyzer normally decides this; the explicit form exists for
        experiments like Table 2 that pin a specific hybrid layout.
        """
        self._require_collection(table_name)
        attr_id = self.catalog.lookup_id(key_name, key_type)
        if attr_id is None:
            raise CatalogError(f"unknown attribute: {key_name!r} ({key_type})")
        state = self.catalog.table(table_name).state(attr_id)
        if not state.materialized:
            # column first, flags second: once dirty is visible the daemon
            # may start moving rows, and the rewriter must already be able
            # to emit the COALESCE bridge over the physical column
            self.materializer.prepare_column(table_name, state)
            # The latch serializes the flip with in-flight materializer
            # slices: a direction change must reset the progress cursor to
            # 0 (a mid-pass cursor would skip rows whose values already
            # moved the other way), and a concurrent slice would otherwise
            # overwrite that reset when it commits its own cursor.
            with self.catalog.exclusive_latch("schema-flip"):
                self.catalog.stamp_flip(state)
                # dirty first: a query planned between these two writes must
                # see the COALESCE bridge, never a bare (still empty)
                # physical column read (materialized=True + dirty=False
                # would do that)
                state.dirty = True
                state.materialized = True
                self.db.log_catalog(column_state_payload(table_name, state))

    def dematerialize(self, table_name: str, key_name: str, key_type: SqlType) -> None:
        """Explicitly mark a materialized attribute to move back."""
        self._require_collection(table_name)
        attr_id = self.catalog.lookup_id(key_name, key_type)
        if attr_id is None:
            raise CatalogError(f"unknown attribute: {key_name!r} ({key_type})")
        state = self.catalog.table(table_name).state(attr_id)
        if state.materialized:
            # same latch + write ordering as materialize(): the cursor
            # reset makes the reverse pass re-examine every row (values
            # already moved to the physical column live *below* any
            # mid-pass cursor), and dirty becomes visible first so
            # concurrent planning always takes the bridge
            with self.catalog.exclusive_latch("schema-flip"):
                self.catalog.stamp_flip(state)
                state.dirty = True
                state.materialized = False
                self.db.log_catalog(column_state_payload(table_name, state))

    def materializer_step(self, table_name: str, max_rows: int = 1000) -> MaterializerReport:
        """One incremental materializer slice (the background process)."""
        return self.materializer.step(table_name, max_rows)

    def run_materializer(self, table_name: str) -> MaterializerReport:
        """Drive the materializer until no dirty columns remain."""
        report = self.materializer.run_to_completion(table_name)
        self.db.analyze(table_name)
        return report

    def settle(self, table_name: str) -> None:
        """Analyzer + materializer + statistics refresh, in one call."""
        self.analyze_schema(table_name)
        self.run_materializer(table_name)

    # ------------------------------------------------------------------
    # background daemon (the paper's concurrent materialization process)
    # ------------------------------------------------------------------

    def start_daemon(self) -> None:
        """Run the column materializer on a background worker thread.

        Restarting after a crash performs cursor recovery first (see
        :class:`~repro.core.background.MaterializerDaemon`).
        """
        self.daemon.start()

    def stop_daemon(self) -> None:
        self.daemon.stop()

    def supervise(self, policy=None) -> "Supervisor":
        """Start opt-in crash supervision over the materializer daemon.

        Returns the running :class:`~repro.core.supervisor.Supervisor`
        (idempotent: a second call returns the existing one).  The service
        layer calls this when ``ServiceConfig.supervise`` is set; embedded
        users who want auto-restart call it explicitly.  Additional
        workers (e.g. the service checkpointer) can be ``add()``-ed to the
        returned supervisor before or after it starts.
        """
        if self.supervisor is None:
            from .supervisor import DaemonWorker, Supervisor

            supervisor = Supervisor(policy, faults_provider=lambda: self.faults)
            supervisor.add(DaemonWorker(self.daemon))
            supervisor.start()
            self.supervisor = supervisor
        return self.supervisor

    def recover_service(self) -> dict[str, Any]:
        """Operator recovery: bring a degraded WAL back and untrip workers.

        The ``\\service recover`` path.  Attempts
        :meth:`WriteAheadLog.try_recover`; when the log is writable again,
        any supervisor trips are reset (a worker that crash-looped on the
        read-only log deserves a fresh budget) so supervised workers
        restart on the next monitor pass.  An unsupervised crashed daemon
        is left alone, as everywhere else.  Returns a status summary.
        """
        wal = self.db.wal
        recovered = wal.try_recover() if wal.durable else True
        if recovered and self.supervisor is not None:
            self.supervisor.reset()
        return {
            "recovered": recovered,
            "degraded": wal.degraded,
            "last_io_error": wal.last_io_error,
            "supervisor": (
                self.supervisor.status() if self.supervisor is not None else None
            ),
        }

    def status(self) -> dict[str, Any]:
        """One-call health snapshot: collections, daemon, latch.

        The daemon block carries the section 3.1.4 observables (rows
        moved, steps, latch waits, last error); the latch block exposes
        the loader/materializer contention counters.
        """
        from dataclasses import asdict

        collections = {}
        for name in self.collections():
            table_catalog = self.catalog.table(name)
            collections[name] = {
                "documents": table_catalog.n_documents,
                "attributes": len(table_catalog.columns),
                "materialized": len(table_catalog.materialized_columns()),
                "dirty": len(table_catalog.dirty_columns()),
            }
        latch = self.catalog.latch_stats
        return {
            "name": self.name,
            "collections": collections,
            "plan_cache": (
                self.plan_cache.stats() if self.plan_cache is not None else None
            ),
            "daemon": asdict(self.daemon.status()),
            "latch": {
                "acquisitions": latch.acquisitions,
                "waits": latch.waits,
                "wait_seconds": latch.wait_seconds,
                "timeouts": latch.timeouts,
                "contentions": latch.contentions,
                "holder": self.catalog.latch_owner,
            },
            "executor": self.db.executor_pool.status(),
            "wal": self.db.wal_status(),
            "supervisor": (
                self.supervisor.status() if self.supervisor is not None else None
            ),
        }

    def attach_faults(self, injector: Any) -> None:
        """Thread a :class:`~repro.testing.faults.FaultInjector` through the
        loader, materializer, daemon, and storage engine (None detaches)."""
        self.faults = injector
        self.loader.faults = injector
        self.materializer.faults = injector
        self.daemon.faults = injector
        self.db.attach_faults(injector)

    def logical_schema(self, table_name: str) -> list[tuple[str, SqlType, str]]:
        """The user-facing universal relation: (key, type, storage) rows."""
        self._require_collection(table_name)
        return self.catalog.logical_columns(table_name)

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------

    def create_session(self, name: str = "session") -> DbSession:
        """An independent transaction scope (one per service connection).

        Pass the handle back through :meth:`query`/:meth:`execute` so
        ``BEGIN``/``COMMIT``/``ROLLBACK`` and DML statements bind to this
        session's transaction instead of the shared default scope.
        """
        return self.db.create_session(name)

    def query(
        self,
        sql: str,
        *,
        explain_analyze: bool = False,
        use_extraction_cache: bool | None = None,
        session: DbSession | None = None,
        use_plan_cache: bool = True,
    ) -> QueryResult:
        """Run a standard SQL query against the logical schema.

        ``explain_analyze=True`` executes the query under instrumentation:
        the result's ``plan_text`` carries per-node actual rows and wall
        time plus the extraction counters, and ``exec_stats`` is always
        populated.  ``use_extraction_cache`` overrides the config default
        for this one query (the uncached path exists for verification).
        ``session`` scopes any transaction interaction to one connection;
        ``use_plan_cache=False`` bypasses the prepared-plan cache for this
        query even when the instance has one enabled.
        """
        statement = parse(sql)
        if not isinstance(statement, SelectStatement):
            return self.execute(sql, session=session)
        sql_key = None
        if use_plan_cache and self.plan_cache is not None:
            sql_key = normalize_sql(sql)
        return self._execute_select(
            statement,
            explain_analyze=explain_analyze,
            use_extraction_cache=use_extraction_cache,
            sql_key=sql_key,
            session=session,
        )

    def explain_analyze(self, sql: str) -> str:
        """Execute a SELECT and return its EXPLAIN ANALYZE text."""
        statement = parse(sql)
        if not isinstance(statement, SelectStatement):
            raise PlanningError("EXPLAIN ANALYZE supports only SELECT statements")
        return self._execute_select(statement, explain_analyze=True).plan_text

    def explain(self, sql: str) -> str:
        """EXPLAIN of the *rewritten* query (what the RDBMS actually sees)."""
        statement = parse(sql)
        if not isinstance(statement, SelectStatement):
            raise PlanningError("EXPLAIN supports only SELECT statements")
        rewriter = self._rewriter()
        rewritten = rewriter.rewrite_select(statement)
        rewritten = self._expand_stars_plain(rewritten)
        plan = self.db._plan(rewritten)
        return plan.explain()

    def execute(self, sql: str, *, session: DbSession | None = None) -> QueryResult:
        """Execute DML (UPDATE/DELETE) against the logical schema."""
        statement = parse(sql)
        if isinstance(statement, UpdateStatement) and statement.table in self._collections:
            return self._execute_update(statement, session=session)
        if isinstance(statement, DeleteStatement) and statement.table in self._collections:
            analysis = self._analyze(statement)
            null_ids = analysis.null_predicate_ids() if analysis else None
            where = self._rewriter(null_ids).rewrite_where(statement)
            result = self.db.execute_statement(
                DeleteStatement(statement.table, where), session=session
            )
            self._matches_cache.clear()
            self.catalog.bump_data_epoch()
            return self._attach_diagnostics(result, analysis)
        if isinstance(statement, SelectStatement):
            return self._execute_select(statement, session=session)
        return self.db.execute_statement(statement, session=session)

    # -- SELECT ----------------------------------------------------------

    def _rewriter(
        self, null_predicates: frozenset[int] | None = None
    ) -> QueryRewriter:
        tables = {name: self.db.table(name) for name in self._collections}
        return QueryRewriter(
            self.catalog,
            tables,
            use_text_index=(
                self.config.rewrite_predicates_with_index
                and self.text_index is not None
            ),
            null_predicates=null_predicates,
        )

    def _analyze(self, statement) -> AnalysisResult | None:
        """Semantic analysis before rewriting (parse -> analyze -> rewrite).

        Errors raise :class:`SemanticError`; the result (with its warnings
        and prunable provably-NULL predicates) is returned for the caller
        to thread through rewriting and attach to the query result.
        """
        if not self.config.analyze_queries:
            return None
        analysis = SemanticAnalyzer(
            catalog=self.catalog,
            collections=self._collections,
            db=self.db,
        ).analyze(statement)
        if not analysis.ok:
            raise SemanticError(analysis.diagnostics)
        return analysis

    @staticmethod
    def _attach_diagnostics(
        result: QueryResult, analysis: AnalysisResult | None
    ) -> QueryResult:
        if analysis is not None and analysis.warnings:
            result.diagnostics = analysis.warnings
        return result

    def _prepare_select(
        self, statement: SelectStatement, token: tuple[int, int]
    ) -> PreparedSelect:
        """The cacheable prepare phase: analyze + rewrite + star bindings.

        Must run inside :meth:`SinewCatalog.query_scope` with ``token``
        read after registration, so the rewritten statement's view of the
        catalog flags is exactly the one the token certifies.
        """
        analysis = self._analyze(statement)
        null_ids = analysis.null_predicate_ids() if analysis else None
        rewriter = self._rewriter(null_ids)
        rewritten = rewriter.rewrite_select(statement)
        # the multi-key tag: only meaningful when one reservoir binding
        # feeds more than one extraction site
        keys_per_row = rewriter.max_extraction_keys()
        return PreparedSelect(
            rewritten=rewritten,
            analysis=analysis,
            extraction_hint=keys_per_row if keys_per_row > 1 else None,
            star_bindings=self._star_bindings(rewritten),
            token=token,
        )

    def _execute_select(
        self,
        statement: SelectStatement,
        *,
        explain_analyze: bool = False,
        use_extraction_cache: bool | None = None,
        sql_key: str | None = None,
        session: DbSession | None = None,
    ) -> QueryResult:
        # Register before the rewriter reads the catalog flags: the plan
        # bakes those flags in, and the materializer defers row moves for
        # columns whose direction flips while this query is in flight
        # (catalog.query_scope docs).  Registering first makes the race
        # benign in both orders -- a flip after registration blocks moves;
        # a flip before it means the rewriter already saw the new flags.
        # The same registration covers a cached plan: serving it requires
        # the live plan token to equal the entry's, i.e. no flip happened
        # since its prepare, and any flip after our registration defers.
        with self.catalog.query_scope():
            token = self.catalog.plan_token()
            prepared = None
            if self.plan_cache is not None and sql_key is not None:
                prepared = self.plan_cache.lookup(sql_key, token)
            if prepared is None:
                prepared = self._prepare_select(statement, token)
                if self.plan_cache is not None and sql_key is not None:
                    self.plan_cache.store(sql_key, prepared)
            if use_extraction_cache is None:
                use_extraction_cache = self.config.enable_extraction_cache
            options = dict(
                analyze=explain_analyze,
                extraction_hint=prepared.extraction_hint,
                use_extraction_cache=use_extraction_cache,
                session=session,
            )
            if not prepared.star_bindings:
                result = self.db.execute_statement(prepared.rewritten, **options)
            else:
                result = self._execute_star_select(
                    prepared.rewritten, prepared.star_bindings, options
                )
        return self._attach_diagnostics(result, prepared.analysis)

    def _star_bindings(self, statement: SelectStatement) -> list[str]:
        """Bindings of Sinew tables covered by ``*`` items (in order)."""
        sinew_bindings = {
            (ref.alias or ref.name): ref.name
            for ref in statement.from_tables
            if ref.name in self._collections
        }
        covered: list[str] = []
        for item in statement.items:
            if not isinstance(item.expr, Star):
                continue
            if item.expr.table is None:
                covered.extend(sinew_bindings)
                if len(sinew_bindings) < len(statement.from_tables):
                    raise PlanningError(
                        "SELECT * mixing Sinew and plain tables is not supported; "
                        "project columns explicitly"
                    )
            elif item.expr.table in sinew_bindings:
                covered.append(item.expr.table)
            else:
                raise PlanningError(
                    f"SELECT {item.expr.table}.* does not name a Sinew table"
                )
        return covered

    def _execute_star_select(
        self,
        statement: SelectStatement,
        star_bindings: list[str],
        options: dict[str, Any] | None = None,
    ) -> QueryResult:
        """Execute a SELECT containing ``*`` over Sinew tables.

        Each star expands to the table's clean physical columns plus
        ``sinew_to_json(data)``; the user layer then merges both back into
        complete documents -- reconstructing exactly what was loaded.
        """
        binding_tables = {
            (ref.alias or ref.name): ref.name for ref in statement.from_tables
        }
        new_items: list[SelectItem] = []
        # output assembly program: ("doc", binding, phys_specs, json_index)
        # or ("col", source_index, name)
        program: list[tuple] = []
        from ..rdbms.expressions import ColumnRef, FunctionCall

        for item in statement.items:
            if isinstance(item.expr, Star):
                expand_over = (
                    list(binding_tables)
                    if item.expr.table is None
                    else [item.expr.table]
                )
                for binding in expand_over:
                    table_name = binding_tables[binding]
                    phys_specs: list[tuple[str, SqlType, int]] = []
                    table_catalog = self.catalog.table(table_name)
                    for state in table_catalog.materialized_columns():
                        if not state.physical_name:
                            continue
                        attribute = self.catalog.attribute(state.attr_id)
                        phys_specs.append(
                            (attribute.key_name, attribute.key_type, len(new_items))
                        )
                        new_items.append(
                            SelectItem(
                                ColumnRef(binding, state.physical_name),
                                f"__{binding}__{attribute.key_name}",
                            )
                        )
                    json_index = len(new_items)
                    new_items.append(
                        SelectItem(
                            FunctionCall(
                                "sinew_to_json",
                                (ColumnRef(binding, RESERVOIR_COLUMN),),
                            ),
                            f"__{binding}__json",
                        )
                    )
                    program.append(("doc", binding, phys_specs, json_index))
            else:
                program.append(("col", len(new_items), item.alias))
                new_items.append(item)

        inner = SelectStatement(
            items=tuple(new_items),
            from_tables=statement.from_tables,
            where=statement.where,
            group_by=statement.group_by,
            having=statement.having,
            order_by=statement.order_by,
            limit=statement.limit,
            distinct=statement.distinct,
        )
        raw = self.db.execute_statement(inner, **(options or {}))

        single_star = sum(1 for step in program if step[0] == "doc") == 1
        columns: list[str] = []
        for step in program:
            if step[0] == "doc":
                columns.append("document" if single_star else step[1])
            else:
                columns.append(step[2] or raw.columns[step[1]])

        rows: list[tuple] = []
        for raw_row in raw.rows:
            out: list[Any] = []
            for step in program:
                if step[0] == "doc":
                    out.append(self._assemble_document(raw_row, step[2], step[3]))
                else:
                    out.append(raw_row[step[1]])
            rows.append(tuple(out))
        return QueryResult(
            columns=columns,
            rows=rows,
            plan_text=raw.plan_text,
            exec_stats=raw.exec_stats,
        )

    def _assemble_document(
        self,
        row: tuple,
        phys_specs: list[tuple[str, SqlType, int]],
        json_index: int,
    ) -> dict[str, Any]:
        """Merge reservoir JSON with materialized physical values."""
        text = row[json_index]
        document: dict[str, Any] = json.loads(text) if text else {}
        for key_name, key_type, index in phys_specs:
            value = row[index]
            if value is None:
                continue
            if key_type is SqlType.BYTEA:
                value = self.extractor.to_dict(value, prefix=key_name + ".")
            elif key_type is SqlType.ARRAY:
                # object elements were serialized under the array key's
                # dotted prefix; strip it when rebuilding them
                value = self.extractor._array_to_plain(value, prefix=key_name + ".")
            self._insert_path(document, key_name, value)
        return document

    @staticmethod
    def _insert_path(document: dict, dotted_key: str, value: Any) -> None:
        parts = dotted_key.split(".")
        node = document
        for part in parts[:-1]:
            child = node.get(part)
            if not isinstance(child, dict):
                child = {}
                node[part] = child
            node = child
        node[parts[-1]] = value

    def _expand_stars_plain(self, statement: SelectStatement) -> SelectStatement:
        """For EXPLAIN: replace stars with the physical-column expansion."""
        if not any(isinstance(item.expr, Star) for item in statement.items):
            return statement
        from ..rdbms.expressions import ColumnRef, FunctionCall

        items: list[SelectItem] = []
        for item in statement.items:
            if not isinstance(item.expr, Star):
                items.append(item)
                continue
            for ref in statement.from_tables:
                binding = ref.alias or ref.name
                if item.expr.table is not None and item.expr.table != binding:
                    continue
                items.append(
                    SelectItem(
                        FunctionCall(
                            "sinew_to_json", (ColumnRef(binding, RESERVOIR_COLUMN),)
                        ),
                        f"__{binding}__json",
                    )
                )
        return SelectStatement(
            items=tuple(items),
            from_tables=statement.from_tables,
            where=statement.where,
            group_by=statement.group_by,
            having=statement.having,
            order_by=statement.order_by,
            limit=statement.limit,
            distinct=statement.distinct,
        )

    # -- UPDATE ------------------------------------------------------------

    def _execute_update(
        self, statement: UpdateStatement, session: DbSession | None = None
    ) -> QueryResult:
        """UPDATE against the logical schema.

        Assignments to clean physical columns run as plain SQL; assignments
        to virtual (or dirty) columns rewrite the serialized reservoir value
        row by row, inside one transaction.
        """
        table_name = statement.table
        table = self.db.table(table_name)
        table_catalog = self.catalog.table(table_name)
        analysis = self._analyze(statement)
        null_ids = analysis.null_predicate_ids() if analysis else None
        rewriter = self._rewriter(null_ids)
        where = rewriter.rewrite_where(statement)

        physical_assignments: list[tuple[str, Any]] = []
        reservoir_assignments: list[tuple[str, SqlType, Any]] = []
        for column_name, value_expr in statement.assignments:
            from ..rdbms.expressions import Literal

            if not isinstance(value_expr, Literal):
                raise PlanningError(
                    "Sinew UPDATE currently supports literal assignments on "
                    "logical columns"
                )
            value = value_expr.value
            state, _name = rewriter._column_state(
                column_name, rewriter._bindings_for_tables([(table_name, None)])[table_name]
            )
            if (
                state is not None
                and state.materialized
                and not state.dirty
                and state.physical_name
            ):
                physical_assignments.append((state.physical_name, value))
            else:
                sql_type = (
                    self.catalog.type_of(state.attr_id)
                    if state is not None
                    else _literal_sql_type(value)
                )
                reservoir_assignments.append((column_name, sql_type, value))

        from ..rdbms.expressions import SchemaResolver, compile_expr

        resolver = SchemaResolver(
            [(table_name, c.name) for c in table.schema], self.db.functions
        )
        predicate = compile_expr(where, resolver) if where is not None else None
        data_position = table.schema.position_of(RESERVOIR_COLUMN)
        id_position = table.schema.position_of(ID_COLUMN)

        updated = 0
        touched_attrs: dict[int, tuple[str, str]] = {}
        with self.db._dml_txn(session) as txn:
            matches: list[tuple[int, tuple]] = []
            for rid, row in table.scan():
                if predicate is None or predicate(row) is True:
                    matches.append((rid, row))
            for rid, row in matches:
                new_row = list(row)
                for physical_name, value in physical_assignments:
                    new_row[table.schema.position_of(physical_name)] = value
                if reservoir_assignments:
                    data = new_row[data_position]
                    if data is None:
                        from . import serializer

                        data = serializer.serialize([])
                    for key_name, sql_type, value in reservoir_assignments:
                        had_value = (
                            self.extractor.extract_typed(data, key_name, sql_type)
                            is not None
                        )
                        data = self.extractor.set_path(data, key_name, sql_type, value)
                        attr_id = self.catalog.attribute_id(key_name, sql_type)
                        touched_attrs[attr_id] = (key_name, sql_type.value)
                        if value is not None and not had_value:
                            table_catalog.state(attr_id).count += 1
                        elif value is None and had_value:
                            table_catalog.state(attr_id).count -= 1
                    new_row[data_position] = data
                replacement = tuple(new_row)
                old = table.update(rid, replacement)
                txn.log_update(
                    table_name,
                    rid,
                    table.tuple_bytes(replacement),
                    undo=lambda rid=rid, old=old: table.update(rid, old),
                    payload=replacement,
                )
                if self.text_index is not None:
                    doc = self._document_of_row(table, replacement)
                    self.text_index.index_document(replacement[id_position], doc)
                updated += 1
            if touched_attrs:
                # absolute post-statement counts: replay sets them verbatim,
                # so the redo is idempotent no matter the per-row history
                self.db.log_catalog(
                    {
                        "op": "counts",
                        "table": table_name,
                        "attrs": [
                            (attr_id, key_name, type_value)
                            for attr_id, (key_name, type_value) in touched_attrs.items()
                        ],
                        "counts": {
                            attr_id: table_catalog.state(attr_id).count
                            for attr_id in touched_attrs
                        },
                    },
                    txn=txn,
                )
        self._matches_cache.clear()
        self.catalog.bump_data_epoch()
        return self._attach_diagnostics(QueryResult(rowcount=updated), analysis)

    def _document_of_row(self, table, row: tuple) -> dict[str, Any]:
        data_position = table.schema.position_of(RESERVOIR_COLUMN)
        document = self.extractor.to_dict(row[data_position]) if row[data_position] else {}
        table_catalog = self.catalog.table(table.name)
        for state in table_catalog.materialized_columns():
            if not state.physical_name or state.physical_name not in table.schema:
                continue
            value = row[table.schema.position_of(state.physical_name)]
            if value is None:
                continue
            attribute = self.catalog.attribute(state.attr_id)
            if attribute.key_type is SqlType.BYTEA:
                value = self.extractor.to_dict(value, prefix=attribute.key_name + ".")
            self._insert_path(document, attribute.key_name, value)
        return document

    # ------------------------------------------------------------------
    # documents and text search
    # ------------------------------------------------------------------

    def documents(self, table_name: str) -> Iterator[tuple[int, dict[str, Any]]]:
        """Iterate ``(_id, reconstructed document)`` over a collection."""
        self._require_collection(table_name)
        table = self.db.table(table_name)
        id_position = table.schema.position_of(ID_COLUMN)
        for _rid, row in table.scan():
            yield row[id_position], self._document_of_row(table, row)

    def _sinew_check(self, data: Any) -> str:
        """The UDF behind ``sinew_check(data)``: per-document audit."""
        if data is None:
            return "no reservoir document"
        problem = validate_document(data)
        return "ok" if problem is None else problem

    def _sinew_matches(self, doc_id: int, keys: str, query: str) -> bool:
        """The UDF behind ``matches()``: membership in the index result."""
        if self.text_index is None:
            raise PlanningError(
                "matches() requires the text index "
                "(SinewConfig.enable_text_index=True)"
            )
        cache_key = (keys, query)
        if cache_key not in self._matches_cache:
            self._matches_cache[cache_key] = self.text_index.matches(keys, query)
        return doc_id in self._matches_cache[cache_key]

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------

    def analyze(self, table_name: str | None = None) -> None:
        """Refresh RDBMS optimizer statistics (physical columns only)."""
        self.db.analyze(table_name)

    def check(self, table_name: str | None = None) -> list[CheckReport]:
        """``CHECK``-style catalog/storage integrity audit (``\\check``).

        Scans one collection (or all of them) and reports every violated
        invariant as an SNW3xx diagnostic: occurrence counts vs. stored
        rows, reservoir residue under clean materialized columns,
        serialization-header well-formedness, unknown attribute ids, and
        catalog row counts vs. the heap.
        """
        if table_name is not None:
            self._require_collection(table_name)
            names = [table_name]
        else:
            names = self.collections()
        return IntegrityChecker(self.db, self.catalog).check(names)

    def lint(self, sql: str) -> AnalysisResult:
        """Analyze a query without executing it (the shell's ``\\lint``)."""
        return SemanticAnalyzer(
            catalog=self.catalog,
            collections=self._collections,
            db=self.db,
        ).analyze(sql)

    def storage_bytes(self, table_name: str) -> int:
        """Modelled on-disk size of a collection (Table 3 metric)."""
        return self.db.table(table_name).total_bytes

    def sync_catalog(self) -> None:
        """Reflect the catalog into queryable ``_sinew_*`` relations."""
        self.catalog.sync_to_rdbms(self.db)

    def _require_collection(self, table_name: str) -> None:
        if table_name not in self._collections:
            raise CatalogError(f"no such Sinew collection: {table_name!r}")


def _literal_sql_type(value: Any) -> SqlType:
    if isinstance(value, bool):
        return SqlType.BOOLEAN
    if isinstance(value, int):
        return SqlType.INTEGER
    if isinstance(value, float):
        return SqlType.REAL
    return SqlType.TEXT
