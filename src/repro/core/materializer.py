"""The column materializer (paper section 3.1.4).

Maintains the dynamic physical schema by moving attribute values between
the column reservoir and physical columns.  Design requirements carried
over from the paper:

* **Incremental and interruptible** -- materialization proceeds row by
  row; ``step(max_rows)`` can stop at any point and resume later, so the
  process can yield to foreground queries.  A partially moved column is
  *dirty*, and the query rewriter wraps it in ``COALESCE(physical,
  extract(...))`` until the move completes.
* **Per-row atomicity** -- each row move is one atomic update (a
  transaction here), but the materialization as a whole is not a
  transaction.
* **Mutual exclusion with the loader** -- via the catalog latch, so that
  once the row cursor reaches the end of the table every value is in its
  correct location and the dirty bit can be cleared.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..rdbms.database import Database
from ..rdbms.errors import CatalogError
from ..rdbms.storage import Column
from ..rdbms.types import SqlType
from .catalog import ColumnState, SinewCatalog
from .extractors import ReservoirExtractor
from .loader import ID_COLUMN, RESERVOIR_COLUMN


@dataclass
class MaterializerReport:
    """Progress accounting for materializer activity."""

    rows_examined: int = 0
    rows_moved: int = 0
    columns_completed: list[str] = field(default_factory=list)


class ColumnMaterializer:
    """Moves data between the reservoir and physical columns."""

    def __init__(self, db: Database, catalog: SinewCatalog, extractor: ReservoirExtractor):
        self.db = db
        self.catalog = catalog
        self.extractor = extractor
        #: Resume cursors: (table, attr_id) -> next rid to examine.
        self._cursors: dict[tuple[str, int], int] = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def pending(self, table_name: str) -> list[ColumnState]:
        """Dirty columns of a table, in attribute-id order."""
        return sorted(
            self.catalog.table(table_name).dirty_columns(), key=lambda s: s.attr_id
        )

    def step(self, table_name: str, max_rows: int = 1000) -> MaterializerReport:
        """Process up to ``max_rows`` row-moves, then stop.

        Works on one dirty column at a time (lowest attribute id first).
        Returns a report; when no dirty column remains the report is empty.
        """
        report = MaterializerReport()
        with self.catalog.exclusive_latch("materializer"):
            budget = max_rows
            for state in self.pending(table_name):
                if budget <= 0:
                    break
                budget -= self._process_column(table_name, state, budget, report)
        return report

    def run_to_completion(self, table_name: str, batch_rows: int = 10000) -> MaterializerReport:
        """Loop :meth:`step` until no dirty columns remain."""
        total = MaterializerReport()
        while True:
            report = self.step(table_name, batch_rows)
            total.rows_examined += report.rows_examined
            total.rows_moved += report.rows_moved
            total.columns_completed.extend(report.columns_completed)
            if not report.rows_examined and not report.columns_completed:
                break
        return total

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _process_column(
        self,
        table_name: str,
        state: ColumnState,
        budget: int,
        report: MaterializerReport,
    ) -> int:
        """Advance one dirty column by up to ``budget`` rows; returns the
        number of rows examined."""
        attribute = self.catalog.attribute(state.attr_id)
        table = self.db.table(table_name)

        if state.materialized:
            self._ensure_physical_column(table_name, state)
        physical_name = state.physical_name
        if physical_name is None or physical_name not in table.schema:
            if state.materialized:
                raise CatalogError(
                    f"column {attribute.key_name!r} marked materialized but has "
                    "no physical column"
                )
            # Dematerialization finished earlier and column was dropped.
            state.dirty = False
            return 0

        data_position = table.schema.position_of(RESERVOIR_COLUMN)
        column_position = table.schema.position_of(physical_name)
        cursor_key = (table_name, state.attr_id)
        cursor = self._cursors.get(cursor_key, 0)
        examined = 0
        n_rids = self._max_rid(table)

        while cursor < n_rids and examined < budget:
            row = table.fetch(cursor)
            examined += 1
            if row is not None:
                moved = self._move_row_value(
                    table, cursor, row, state, attribute.key_type,
                    data_position, column_position,
                )
                if moved:
                    report.rows_moved += 1
            cursor += 1
        self._cursors[cursor_key] = cursor
        report.rows_examined += examined

        if cursor >= n_rids:
            # Cursor reached the end under the latch: the column is clean.
            self._finish_column(table_name, state, attribute.key_name)
            report.columns_completed.append(attribute.key_name)
            del self._cursors[cursor_key]
        return examined

    def _move_row_value(
        self,
        table,
        rid: int,
        row: tuple,
        state: ColumnState,
        key_type: SqlType,
        data_position: int,
        column_position: int,
    ) -> bool:
        """Move one row's value to its correct location (atomic update)."""
        attribute = self.catalog.attribute(state.attr_id)
        data = row[data_position]
        if state.materialized:
            if data is None:
                return False
            value = self.extractor.extract_typed(data, attribute.key_name, key_type)
            if value is None:
                return False
            new_data = self.extractor.remove_path(data, attribute.key_name, key_type)
            new_row = list(row)
            new_row[data_position] = new_data
            new_row[column_position] = value
        else:
            value = row[column_position]
            if value is None:
                return False
            if data is None:
                from . import serializer

                data = serializer.serialize([])
            new_data = self.extractor.set_path(
                data, attribute.key_name, key_type, value
            )
            new_row = list(row)
            new_row[data_position] = new_data
            new_row[column_position] = None
        with self.db.txn_manager.autocommit() as txn:
            old = table.update(rid, tuple(new_row))
            txn.log_update(
                table.name,
                rid,
                table.tuple_bytes(tuple(new_row)),
                undo=lambda rid=rid, old=old: table.update(rid, old),
            )
        return True

    def _finish_column(self, table_name: str, state: ColumnState, key_name: str) -> None:
        state.dirty = False
        if not state.materialized and state.physical_name:
            # Dematerialization complete: drop the now-empty physical column.
            self.db.table(table_name).drop_column(state.physical_name)
            state.physical_name = None

    def _ensure_physical_column(self, table_name: str, state: ColumnState) -> None:
        """ALTER TABLE ADD COLUMN for a newly materialized attribute."""
        table = self.db.table(table_name)
        if state.physical_name and state.physical_name in table.schema:
            return
        attribute = self.catalog.attribute(state.attr_id)
        name = attribute.key_name
        if name in (ID_COLUMN, RESERVOIR_COLUMN) or name in table.schema:
            name = f"{name}__{attribute.key_type.value}"
        if name in table.schema:
            raise CatalogError(f"cannot allocate physical column name for {name!r}")
        column_type = (
            SqlType.BYTEA
            if attribute.key_type is SqlType.BYTEA
            else attribute.key_type
        )
        table.add_column(Column(name, column_type))
        state.physical_name = name

    @staticmethod
    def _max_rid(table) -> int:
        """Upper bound of allocated row ids (the row-cursor horizon)."""
        return table.allocated_rids
