"""The column materializer (paper section 3.1.4).

Maintains the dynamic physical schema by moving attribute values between
the column reservoir and physical columns.  Design requirements carried
over from the paper:

* **Incremental and interruptible** -- materialization proceeds row by
  row; ``step(max_rows)`` can stop at any point and resume later, so the
  process can yield to foreground queries.  A partially moved column is
  *dirty*, and the query rewriter wraps it in ``COALESCE(physical,
  extract(...))`` until the move completes.
* **Per-row atomicity** -- each row move is one atomic update (a
  transaction here), but the materialization as a whole is not a
  transaction.
* **Mutual exclusion with the loader** -- via the catalog latch, so that
  once the row cursor reaches the end of the table every value is in its
  correct location and the dirty bit can be cleared.  Acquisition blocks
  (bounded) by default so the materializer and a concurrent loader take
  turns instead of failing.
* **Crash safety** -- the per-column progress cursor lives in the catalog
  (:attr:`~repro.core.catalog.ColumnState.cursor`) and is advanced only
  *after* each row move commits, so a crash at any instant leaves a state
  from which re-running ``step`` converges: re-examining an already-moved
  row is a no-op (the value is no longer on the source side).  The named
  ``materializer.*`` fault-injection points (see
  :mod:`repro.testing.faults`) let tests kill the process between any two
  of these transitions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..latching import requires_latch
from ..rdbms.database import Database
from ..rdbms.errors import CatalogError
from ..rdbms.types import SqlType
from .catalog import (
    DEFAULT_LATCH_TIMEOUT,
    ColumnState,
    SinewCatalog,
    column_state_payload,
)
from .extractors import ReservoirExtractor
from .loader import ID_COLUMN, RESERVOIR_COLUMN


@dataclass
class MaterializerReport:
    """Progress accounting for materializer activity."""

    rows_examined: int = 0
    rows_moved: int = 0
    columns_completed: list[str] = field(default_factory=list)


class ColumnMaterializer:
    """Moves data between the reservoir and physical columns."""

    def __init__(self, db: Database, catalog: SinewCatalog, extractor: ReservoirExtractor):
        self.db = db
        self.catalog = catalog
        self.extractor = extractor
        #: optional FaultInjector (duck-typed); tests attach one to crash
        #: the process at the ``materializer.*`` injection points
        self.faults = None
        #: latch acquisition mode for :meth:`step`
        self.latch_blocking = True
        self.latch_timeout = DEFAULT_LATCH_TIMEOUT

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def pending(self, table_name: str) -> list[ColumnState]:
        """Dirty columns of a table, in attribute-id order."""
        return sorted(
            self.catalog.table(table_name).dirty_columns(), key=lambda s: s.attr_id
        )

    def step(self, table_name: str, max_rows: int = 1000) -> MaterializerReport:
        """Process up to ``max_rows`` row-moves, then stop.

        Works on one dirty column at a time (lowest attribute id first).
        Returns a report; when no dirty column remains the report is empty.
        """
        report = MaterializerReport()
        with self.catalog.exclusive_latch(
            "materializer",
            blocking=self.latch_blocking,
            timeout=self.latch_timeout,
        ):
            self._fire("materializer.before_step", table=table_name)
            budget = max_rows
            for state in self.pending(table_name):
                if budget <= 0:
                    break
                budget -= self._process_column(table_name, state, budget, report)
        return report

    def run_to_completion(self, table_name: str, batch_rows: int = 10000) -> MaterializerReport:
        """Loop :meth:`step` until no dirty columns remain.

        When every dirty column is blocked behind the query drain barrier
        (see :meth:`_blocked_by_queries`), waits -- bounded by the latch
        timeout -- for the in-flight queries to finish rather than
        returning with work left undone.
        """
        total = MaterializerReport()
        deadline = None
        while True:
            report = self.step(table_name, batch_rows)
            total.rows_examined += report.rows_examined
            total.rows_moved += report.rows_moved
            total.columns_completed.extend(report.columns_completed)
            if report.rows_examined or report.columns_completed:
                deadline = None
                continue
            pending = self.pending(table_name)
            if pending and any(self._blocked_by_queries(s) for s in pending):
                now = time.monotonic()
                if deadline is None:
                    deadline = now + self.latch_timeout
                elif now >= deadline:
                    raise CatalogError(
                        f"materializer blocked for {self.latch_timeout:.1f}s "
                        "waiting for pre-flip queries to drain"
                    )
                time.sleep(0.001)
                continue
            break
        return total

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    @requires_latch("catalog")
    def _process_column(
        self,
        table_name: str,
        state: ColumnState,
        budget: int,
        report: MaterializerReport,
    ) -> int:
        """Advance one dirty column by up to ``budget`` rows; returns the
        number of rows examined."""
        attribute = self.catalog.attribute(state.attr_id)
        table = self.db.table(table_name)

        if state.materialized:
            self._ensure_physical_column(table_name, state)
        physical_name = state.physical_name
        if physical_name is None or physical_name not in table.schema:
            if state.materialized:
                raise CatalogError(
                    f"column {attribute.key_name!r} marked materialized but has "
                    "no physical column"
                )
            # Dematerialization finished earlier and column was dropped.
            state.physical_name = None
            state.cursor = 0
            state.dirty = False
            self.db.log_catalog(column_state_payload(table_name, state))
            return 0

        if self._blocked_by_queries(state):
            # A query planned before this column's direction flip is still
            # running; its plan cannot see the destination side of a move,
            # so moving rows now would hide values from its scan.  Skip the
            # slice -- the daemon (or run_to_completion) retries once the
            # pre-flip queries drain.
            return 0

        data_position = table.schema.position_of(RESERVOIR_COLUMN)
        column_position = table.schema.position_of(physical_name)
        cursor = min(state.cursor, self._max_rid(table))
        examined = 0
        n_rids = self._max_rid(table)

        while cursor < n_rids and examined < budget:
            row = table.fetch(cursor)
            examined += 1
            if row is not None:
                self._fire(
                    "materializer.before_row_move",
                    table=table_name, key=attribute.key_name, rid=cursor,
                )
                moved = self._move_row_value(
                    table, cursor, row, state, attribute.key_type,
                    data_position, column_position,
                )
                if moved:
                    report.rows_moved += 1
                self._fire(
                    "materializer.after_row_move",
                    table=table_name, key=attribute.key_name, rid=cursor,
                )
            cursor += 1
            # Persist progress after every committed row move so a crash
            # resumes mid-column instead of restarting it.
            state.cursor = cursor
        report.rows_examined += examined

        if cursor >= n_rids:
            # Cursor reached the end under the latch: the column is clean.
            self._finish_column(table_name, state, attribute.key_name)
            report.columns_completed.append(attribute.key_name)
        return examined

    @requires_latch("catalog")
    def _move_row_value(
        self,
        table,
        rid: int,
        row: tuple,
        state: ColumnState,
        key_type: SqlType,
        data_position: int,
        column_position: int,
    ) -> bool:
        """Move one row's value to its correct location (atomic update).

        A dotted key whose ancestor object is itself materialized (section
        4.2: a nested object stored as its own serialized column) may live
        in that ancestor's physical cell rather than the reservoir, so the
        move sources from -- and returns values to -- whichever side holds
        the parent document for this row.
        """
        attribute = self.catalog.attribute(state.attr_id)
        data = row[data_position]
        host_position = self._ancestor_cell_position(table, attribute.key_name)
        new_row = list(row)
        if state.materialized:
            value = None
            if data is not None:
                value = self.extractor.extract_typed(
                    data, attribute.key_name, key_type
                )
            if value is not None:
                new_row[data_position] = self.extractor.remove_path(
                    data, attribute.key_name, key_type
                )
            else:
                # not in the reservoir: the parent object may already have
                # moved to its own physical column for this row
                cell = row[host_position] if host_position is not None else None
                if cell is None:
                    return False
                value = self.extractor.extract_typed(
                    cell, attribute.key_name, key_type
                )
                if value is None:
                    return False
                new_row[host_position] = self.extractor.remove_path(
                    cell, attribute.key_name, key_type
                )
            new_row[column_position] = value
        else:
            value = row[column_position]
            if value is None:
                return False
            cell = row[host_position] if host_position is not None else None
            if cell is not None:
                # the parent document lives in its physical column for this
                # row; returning the value there keeps the nesting intact
                new_row[host_position] = self.extractor.set_path(
                    cell, attribute.key_name, key_type, value
                )
            else:
                if data is None:
                    from . import serializer

                    data = serializer.serialize([])
                new_row[data_position] = self.extractor.set_path(
                    data, attribute.key_name, key_type, value
                )
            new_row[column_position] = None
        with self.db.txn_manager.autocommit() as txn:
            replacement = tuple(new_row)
            old = table.update(rid, replacement)
            txn.log_update(
                table.name,
                rid,
                table.tuple_bytes(replacement),
                undo=lambda rid=rid, old=old: table.update(rid, old),
                payload=replacement,
            )
            # The progress cursor rides in the same transaction as the row
            # move, so a recovered database resumes from exactly the rows
            # whose moves became durable.
            self.db.log_catalog(
                {
                    "op": "cursor",
                    "table": table.name,
                    "attr_id": state.attr_id,
                    "cursor": rid + 1,
                },
                txn=txn,
            )
        return True

    def _blocked_by_queries(self, state: ColumnState) -> bool:
        """True while some in-flight query predates this column's flip."""
        oldest = self.catalog.oldest_active_epoch()
        return oldest is not None and oldest < state.flip_epoch

    def _ancestor_cell_position(self, table, key: str) -> int | None:
        """Schema position of the nearest materialized ancestor's physical
        column, or None when no ancestor object of ``key`` is materialized."""
        if "." not in key:
            return None
        table_catalog = self.catalog.table(table.name)
        parts = key.split(".")
        for split in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:split])
            parent_id = self.catalog.lookup_id(prefix, SqlType.BYTEA)
            if parent_id is None:
                continue
            parent = table_catalog.columns.get(parent_id)
            if (
                parent is not None
                and parent.materialized
                and parent.physical_name
                and parent.physical_name in table.schema
            ):
                return table.schema.position_of(parent.physical_name)
        return None

    @requires_latch("catalog")
    def _finish_column(self, table_name: str, state: ColumnState, key_name: str) -> None:
        """Clear the dirty bit (and drop the source column when dematerializing).

        Ordered so that a crash between any two statements leaves a state
        ``step`` converges from: the dirty bit is cleared *last*, after the
        physical side is consistent.
        """
        self._fire(
            "materializer.before_clear_dirty", table=table_name, key=key_name
        )
        if not state.materialized and state.physical_name:
            # Dematerialization complete: drop the now-empty physical column.
            self.db.alter_drop_column(table_name, state.physical_name)
            state.physical_name = None
        state.cursor = 0
        state.dirty = False
        self.db.log_catalog(column_state_payload(table_name, state))
        # a finished dematerialization dropped the physical column above:
        # any cached plan still bridging through it must re-prepare
        self.catalog.bump_data_epoch()

    def prepare_column(self, table_name: str, state: ColumnState) -> None:
        """Allocate the physical column for a column about to be marked.

        Callers mark a column for materialization by flipping its dirty
        bit; the physical column must exist *before* that flip becomes
        visible, or a query planned in the gap sees ``physical_name`` unset,
        omits the COALESCE bridge, and loses any value the background
        materializer moves before the scan reaches its row.
        """
        self._ensure_physical_column(table_name, state)

    def _ensure_physical_column(self, table_name: str, state: ColumnState) -> None:
        """ALTER TABLE ADD COLUMN for a newly materialized attribute.

        Idempotent: the chosen name is recorded in the catalog *before* the
        column is added, so a crash in between re-runs the ADD (not the
        name allocation) on recovery.
        """
        table = self.db.table(table_name)
        if state.physical_name is None:
            attribute = self.catalog.attribute(state.attr_id)
            name = attribute.key_name
            if name in (ID_COLUMN, RESERVOIR_COLUMN) or name in table.schema:
                name = f"{name}__{attribute.key_type.value}"
            if name in table.schema:
                raise CatalogError(f"cannot allocate physical column name for {name!r}")
            state.physical_name = name
        if state.physical_name not in table.schema:
            attribute = self.catalog.attribute(state.attr_id)
            column_type = (
                SqlType.BYTEA
                if attribute.key_type is SqlType.BYTEA
                else attribute.key_type
            )
            self.db.alter_add_column(table_name, state.physical_name, column_type)

    def _fire(self, point: str, **context) -> None:
        if self.faults is not None:
            self.faults.fire(point, **context)

    @staticmethod
    def _max_rid(table) -> int:
        """Upper bound of allocated row ids (the row-cursor horizon)."""
        return table.allocated_rids
