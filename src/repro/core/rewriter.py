"""Sinew's query rewriter (paper section 3.2.2).

Queries arrive written against the *logical* universal relation; the
rewriter transforms them to match the *physical* hybrid schema before they
reach the RDBMS:

* a reference to a clean **physical** column passes through (renamed if the
  physical column name was mangled on a collision);
* a reference to a **dirty** column becomes
  ``COALESCE(physical, extract_key_*(data, 'key'))`` so both locations are
  consulted while the materializer is mid-move;
* a reference to a **virtual** column becomes a typed extraction UDF call
  over the column reservoir.

The extraction *type* is chosen from the semantics of the query: comparing
against a numeric literal selects numeric extraction (values of other types
yield NULL rather than an error -- the multi-typed-key behaviour that the
Postgres JSON baseline cannot express), string contexts select text
extraction, and a bare projection with no constraint extracts the
attribute's dominant type, falling back to the paper's
downcast-to-string behaviour for multi-typed keys.

``matches(keys, query)`` predicates (section 4.3) are rewritten into a text
index probe keyed by the table's ``_id`` column.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rdbms.errors import PlanningError
from ..rdbms.expressions import (
    AnyPredicate,
    Between,
    BinaryOp,
    Cast,
    Coalesce,
    ColumnRef,
    Expr,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Star,
    UnaryOp,
)
from ..rdbms.sql.ast import (
    DeleteStatement,
    OrderItem,
    SelectItem,
    SelectStatement,
    UpdateStatement,
)
from ..rdbms.storage import HeapTable
from ..rdbms.types import SqlType
from .catalog import SinewCatalog, TableCatalog
from .extractors import EXTRACT_FUNCTION_FOR_TYPE
from .loader import ID_COLUMN, RESERVOIR_COLUMN

_NUMERIC_AGGREGATES = frozenset({"sum", "avg"})


@dataclass
class _Binding:
    """One Sinew table instance in the FROM clause."""

    binding: str
    table_name: str
    table: HeapTable
    table_catalog: TableCatalog


class QueryRewriter:
    """Rewrites logical-schema statements onto the physical schema.

    With ``use_text_index=True`` (requires the instance's inverted index),
    equality predicates on *virtual* text columns are additionally
    prefiltered through the index -- "rewriting predicates over virtual
    columns into queries of the text index" (section 4.3) -- with the
    original extraction kept as an exactness recheck on the candidates,
    the way an RDBMS rechecks lossy index results.
    """

    def __init__(
        self,
        catalog: SinewCatalog,
        sinew_tables: dict[str, HeapTable],
        use_text_index: bool = False,
        null_predicates: frozenset[int] | None = None,
    ):
        self.catalog = catalog
        self.sinew_tables = sinew_tables
        self.use_text_index = use_text_index
        #: binding -> distinct keys the rewritten statement extracts per
        #: row of that binding; tags multi-key queries so the executor can
        #: size its decoded-header cache expectations (EXPLAIN ANALYZE
        #: reports the hint alongside the decode counters)
        self.extraction_keys: dict[str, set[str]] = {}
        #: how many COALESCE(physical, extract(...)) bridges were emitted
        #: for dirty columns -- each one is an extra extraction site
        self.coalesce_bridges = 0
        #: ``id()``s of predicate subtrees the semantic analyzer proved are
        #: NULL on every row (SNW201/SNW202); each is replaced by
        #: ``Literal(None)``, which is exact under three-valued logic and
        #: saves the per-row extraction UDF calls the predicate would cost.
        self.null_predicates = null_predicates or frozenset()

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def rewrite_select(self, statement: SelectStatement) -> SelectStatement:
        bindings = self._bind(statement)
        items = []
        for item in statement.items:
            if isinstance(item.expr, Star):
                items.append(item)
                continue
            rewritten = self._rewrite(item.expr, bindings, None)
            alias = item.alias
            if alias is None and rewritten is not item.expr and isinstance(
                item.expr, ColumnRef
            ):
                # Preserve the logical column name on the output even though
                # the expression became an extraction call.
                alias = item.expr.name
            items.append(SelectItem(rewritten, alias))
        items = tuple(items)

        # ORDER BY / GROUP BY may reference a SELECT-list alias; such a
        # reference means "the aliased output expression", so substitute
        # the already-rewritten item expression rather than treating the
        # alias as a logical column.
        alias_exprs = {
            item.alias: item.expr for item in items if item.alias is not None
        }

        def rewrite_unless_alias(expr: Expr) -> Expr:
            if (
                isinstance(expr, ColumnRef)
                and expr.table is None
                and expr.name in alias_exprs
            ):
                return alias_exprs[expr.name]
            return self._rewrite(expr, bindings, None)

        return SelectStatement(
            items=items,
            from_tables=statement.from_tables,
            where=self._rewrite(statement.where, bindings, None)
            if statement.where is not None
            else None,
            group_by=tuple(rewrite_unless_alias(e) for e in statement.group_by),
            having=self._rewrite(statement.having, bindings, None)
            if statement.having is not None
            else None,
            order_by=tuple(
                OrderItem(rewrite_unless_alias(item.expr), item.ascending)
                for item in statement.order_by
            ),
            limit=statement.limit,
            distinct=statement.distinct,
        )

    def rewrite_where(
        self, statement: UpdateStatement | DeleteStatement
    ) -> Expr | None:
        """Rewrite the WHERE clause of an UPDATE/DELETE on a Sinew table."""
        if statement.where is None:
            return None
        bindings = self._bindings_for_tables([(statement.table, None)])
        return self._rewrite(statement.where, bindings, None)

    # ------------------------------------------------------------------
    # binding
    # ------------------------------------------------------------------

    def _bind(self, statement: SelectStatement) -> dict[str, _Binding]:
        pairs = [(ref.name, ref.alias) for ref in statement.from_tables]
        return self._bindings_for_tables(pairs)

    def _bindings_for_tables(
        self, pairs: list[tuple[str, str | None]]
    ) -> dict[str, _Binding]:
        bindings: dict[str, _Binding] = {}
        for table_name, alias in pairs:
            binding = alias or table_name
            if table_name in self.sinew_tables:
                bindings[binding] = _Binding(
                    binding,
                    table_name,
                    self.sinew_tables[table_name],
                    self.catalog.table(table_name),
                )
        return bindings

    # ------------------------------------------------------------------
    # expression rewriting
    # ------------------------------------------------------------------

    def _rewrite(
        self,
        expr: Expr,
        bindings: dict[str, _Binding],
        expected: SqlType | None,
    ) -> Expr:
        if self.null_predicates and id(expr) in self.null_predicates:
            return Literal(None)

        if isinstance(expr, Literal) or isinstance(expr, Star):
            return expr

        if isinstance(expr, ColumnRef):
            return self._rewrite_column(expr, bindings, expected)

        if isinstance(expr, BinaryOp):
            return self._rewrite_binary(expr, bindings, expected)

        if isinstance(expr, UnaryOp):
            return UnaryOp(expr.op, self._rewrite(expr.operand, bindings, expected))

        if isinstance(expr, IsNull):
            return IsNull(self._rewrite(expr.operand, bindings, None), expr.negated)

        if isinstance(expr, Between):
            bound_type = self._literal_type(expr.low) or self._literal_type(expr.high)
            return Between(
                self._rewrite(expr.operand, bindings, bound_type),
                self._rewrite(expr.low, bindings, None),
                self._rewrite(expr.high, bindings, None),
                expr.negated,
            )

        if isinstance(expr, InList):
            item_type = None
            for item in expr.items:
                item_type = self._literal_type(item)
                if item_type is not None:
                    break
            return InList(
                self._rewrite(expr.operand, bindings, item_type),
                tuple(self._rewrite(item, bindings, None) for item in expr.items),
                expr.negated,
            )

        if isinstance(expr, Like):
            return Like(
                self._rewrite(expr.operand, bindings, SqlType.TEXT),
                self._rewrite(expr.pattern, bindings, SqlType.TEXT),
                expr.negated,
            )

        if isinstance(expr, AnyPredicate):
            needle_type = self._literal_type(expr.needle)
            return AnyPredicate(
                self._rewrite(expr.needle, bindings, needle_type),
                self._rewrite(expr.haystack, bindings, SqlType.ARRAY),
            )

        if isinstance(expr, FunctionCall):
            return self._rewrite_function(expr, bindings)

        if isinstance(expr, Coalesce):
            return Coalesce(
                tuple(self._rewrite(a, bindings, expected) for a in expr.args)
            )

        if isinstance(expr, Cast):
            cast_expected = (
                expr.target if expr.target in EXTRACT_FUNCTION_FOR_TYPE else expected
            )
            return Cast(self._rewrite(expr.operand, bindings, cast_expected), expr.target)

        return expr

    def _rewrite_binary(
        self, expr: BinaryOp, bindings: dict[str, _Binding], expected: SqlType | None
    ) -> Expr:
        if expr.op in ("AND", "OR"):
            return BinaryOp(
                expr.op,
                self._rewrite(expr.left, bindings, None),
                self._rewrite(expr.right, bindings, None),
            )
        if expr.op in ("=", "<>", "!=", "<", "<=", ">", ">="):
            left_expected = self._literal_type(expr.right)
            right_expected = self._literal_type(expr.left)
            rewritten = BinaryOp(
                expr.op,
                self._rewrite(expr.left, bindings, left_expected),
                self._rewrite(expr.right, bindings, right_expected),
            )
            if expr.op == "=" and self.use_text_index:
                prefilter = self._index_prefilter(expr, bindings)
                if prefilter is not None:
                    # index probe first (cheap set membership), exact
                    # extraction recheck only on the candidates
                    return BinaryOp("AND", prefilter, rewritten)
            return rewritten
        if expr.op == "||":
            return BinaryOp(
                expr.op,
                self._rewrite(expr.left, bindings, SqlType.TEXT),
                self._rewrite(expr.right, bindings, SqlType.TEXT),
            )
        # arithmetic
        return BinaryOp(
            expr.op,
            self._rewrite(expr.left, bindings, SqlType.REAL),
            self._rewrite(expr.right, bindings, SqlType.REAL),
        )

    def _rewrite_function(
        self, expr: FunctionCall, bindings: dict[str, _Binding]
    ) -> Expr:
        if expr.name == "matches":
            return self._rewrite_matches(expr, bindings)
        arg_expected: SqlType | None = None
        if expr.name.lower() in _NUMERIC_AGGREGATES:
            arg_expected = SqlType.REAL
        return FunctionCall(
            expr.name,
            tuple(self._rewrite(a, bindings, arg_expected) for a in expr.args),
            expr.distinct,
        )

    def _index_prefilter(
        self, expr: BinaryOp, bindings: dict[str, _Binding]
    ) -> Expr | None:
        """Index probe for ``virtual_text_column = 'literal'`` predicates.

        Applies only when one side is a single-token text literal and the
        other resolves to a *virtual* column of a Sinew table (physical
        columns already have statistics and fast access).
        """
        from .text_index import tokenize

        if isinstance(expr.left, ColumnRef) and isinstance(expr.right, Literal):
            ref, literal = expr.left, expr.right
        elif isinstance(expr.right, ColumnRef) and isinstance(expr.left, Literal):
            ref, literal = expr.right, expr.left
        else:
            return None
        if not isinstance(literal.value, str):
            return None
        terms = tokenize(literal.value)
        if len(terms) != 1:
            return None  # multi-token equality is not a term lookup
        binding = self._owning_binding(ref, bindings)
        if binding is None or ref.name in (ID_COLUMN, RESERVOIR_COLUMN):
            return None
        state, _name = self._column_state(ref.name, binding)
        if state is not None and state.materialized:
            return None  # physical columns don't need the index
        return FunctionCall(
            "sinew_matches",
            (
                ColumnRef(binding.binding, ID_COLUMN),
                Literal(ref.name),
                Literal(terms[0]),
            ),
        )

    def _rewrite_matches(
        self, expr: FunctionCall, bindings: dict[str, _Binding]
    ) -> Expr:
        """``matches(keys, query)`` -> text-index probe on ``_id``."""
        if len(expr.args) != 2:
            raise PlanningError("matches() takes exactly two arguments")
        if len(bindings) != 1:
            raise PlanningError(
                "matches() requires exactly one Sinew table in FROM"
            )
        binding = next(iter(bindings.values()))
        return FunctionCall(
            "sinew_matches",
            (ColumnRef(binding.binding, ID_COLUMN), expr.args[0], expr.args[1]),
        )

    # ------------------------------------------------------------------
    # column resolution
    # ------------------------------------------------------------------

    def _rewrite_column(
        self,
        ref: ColumnRef,
        bindings: dict[str, _Binding],
        expected: SqlType | None,
    ) -> Expr:
        binding = self._owning_binding(ref, bindings)
        if binding is None:
            return ref  # not a Sinew table; the RDBMS resolves it

        # direct physical columns (the id, the reservoir, clean materialized)
        state, attribute_name = self._column_state(ref.name, binding)
        if state is not None:
            # query-pattern statistics for the schema analyzer (§3.1.3)
            state.access_count += 1
        if ref.name in (ID_COLUMN, RESERVOIR_COLUMN):
            return ColumnRef(binding.binding, ref.name)
        if (
            state is not None
            and state.physical_name
            and state.physical_name in binding.table.schema
        ):
            physical = ColumnRef(binding.binding, state.physical_name)
            if state.materialized and not state.dirty:
                return physical
            # dirty in either direction (materializing *or* dematerializing):
            # each row's value lives on exactly one side of the move, so the
            # bridge must consult both
            self.coalesce_bridges += 1
            return Coalesce(
                (physical, self._extraction(binding, attribute_name, expected))
            )
        return self._extraction(binding, ref.name, expected)

    def max_extraction_keys(self) -> int:
        """Max distinct extracted keys over any one binding (0 when none)."""
        if not self.extraction_keys:
            return 0
        return max(len(keys) for keys in self.extraction_keys.values())

    def _owning_binding(
        self, ref: ColumnRef, bindings: dict[str, _Binding]
    ) -> _Binding | None:
        if ref.table is not None:
            return bindings.get(ref.table)
        owners = []
        for binding in bindings.values():
            if ref.name in (ID_COLUMN, RESERVOIR_COLUMN):
                owners.append(binding)
                continue
            if ref.name in binding.table.schema:
                owners.append(binding)
                continue
            if any(
                attribute.attr_id in binding.table_catalog.columns
                for attribute in self.catalog.attributes_named(ref.name)
            ):
                owners.append(binding)
        if len(owners) > 1:
            raise PlanningError(f"ambiguous column reference: {ref.name!r}")
        if owners:
            return owners[0]
        if len(bindings) == 1:
            # Unknown key on the only Sinew table: treat as a virtual column
            # (extraction will yield NULL), keeping the evolving-schema
            # semantics of querying a key the data has not shown yet.
            return next(iter(bindings.values()))
        return None

    def _column_state(self, key_name: str, binding: _Binding):
        """The catalog state of the attribute backing ``key_name``.

        With multi-typed keys, prefer a materialized attribute, then the
        one with the highest occurrence count.
        """
        states = []
        for attribute in self.catalog.attributes_named(key_name):
            state = binding.table_catalog.columns.get(attribute.attr_id)
            if state is not None:
                states.append((state, attribute.key_name))
        if not states:
            return None, key_name
        states.sort(key=lambda pair: (not pair[0].materialized, -pair[0].count))
        return states[0]

    def _extraction(
        self, binding: _Binding, key_name: str, expected: SqlType | None
    ) -> Expr:
        """Build the typed extraction UDF call for a virtual column.

        When an *ancestor* of a dotted key is materialized (section 4.2:
        a nested object stored as its own serialized physical column), the
        extraction reads from that physical column instead of the
        reservoir -- with the usual COALESCE bridge while the ancestor is
        dirty.
        """
        if expected is None:
            expected = self._dominant_type(key_name, binding)
        self.extraction_keys.setdefault(binding.binding, set()).add(key_name)
        function = EXTRACT_FUNCTION_FOR_TYPE.get(expected, "extract_key_any")
        reservoir_call = FunctionCall(
            function,
            (ColumnRef(binding.binding, RESERVOIR_COLUMN), Literal(key_name)),
        )
        parts = key_name.split(".")
        for split in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:split])
            parent_id = self.catalog.lookup_id(prefix, SqlType.BYTEA)
            if parent_id is None:
                continue
            state = binding.table_catalog.columns.get(parent_id)
            if (
                state is None
                or not state.physical_name
                or state.physical_name not in binding.table.schema
            ):
                continue
            physical_call = FunctionCall(
                function,
                (ColumnRef(binding.binding, state.physical_name), Literal(key_name)),
            )
            if state.dirty:
                # mid-move either way: the parent document may sit on
                # either side for any given row
                self.coalesce_bridges += 1
                return Coalesce((physical_call, reservoir_call))
            if state.materialized:
                return physical_call
            continue
        return reservoir_call

    def _dominant_type(self, key_name: str, binding: _Binding) -> SqlType | None:
        """The single observed type of a key, or None when multi-typed.

        A multi-typed key with no semantic constraint falls back to
        ``extract_key_any`` (downcast to text), per the paper.
        """
        observed: list[tuple[int, SqlType]] = []
        for attribute in self.catalog.attributes_named(key_name):
            state = binding.table_catalog.columns.get(attribute.attr_id)
            if state is not None and state.count > 0:
                observed.append((state.count, attribute.key_type))
        if len(observed) == 1:
            return observed[0][1]
        return None

    @staticmethod
    def _literal_type(expr: Expr) -> SqlType | None:
        if not isinstance(expr, Literal) or expr.value is None:
            return None
        value = expr.value
        if isinstance(value, bool):
            return SqlType.BOOLEAN
        if isinstance(value, int):
            return SqlType.INTEGER
        if isinstance(value, float):
            return SqlType.REAL
        if isinstance(value, str):
            return SqlType.TEXT
        return None
