"""Key-extraction functions over the column reservoir.

These are the UDFs the query rewriter substitutes for virtual-column
references (paper section 3.2.2)::

    SELECT url, extract_key_text(data, 'owner') FROM webrequests ...

Each function takes the serialized reservoir value and a (possibly dotted)
key, resolves the key against the global catalog dictionary, and performs
the O(log n) random-access extraction of section 4.1.  Type handling
follows the paper:

* the extraction is *typed*: ``extract_key_num`` applied to a key that maps
  to both integers and strings returns the numeric values and NULL for the
  strings -- "rather than throwing an exception for type mismatches ... it
  will instead selectively extract the integer values and return NULL";
* with no type context (a bare projection) ``extract_key_any`` returns the
  value "downcast to a string type".

Dotted keys navigate nested sub-documents: the serializer stores every
level's attributes under their *full* dotted names, so navigation extracts
the longest nested-document prefix and recurses.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Callable

from ..rdbms.database import Database
from ..rdbms.types import SqlType
from . import serializer
from .catalog import SinewCatalog
from .extraction_context import DEFAULT_CACHE_CAPACITY, ExtractionContext
from .serializer import DecodedHeader


def _found(value: Any) -> bool:
    return value is not None


class ReservoirExtractor:
    """Catalog-aware extraction over serialized reservoir values."""

    def __init__(self, catalog: SinewCatalog):
        self.catalog = catalog
        # per-thread stack of query-scoped decode caches: queries on the
        # main thread never share state with the materializer daemon, and
        # nested query execution (UDFs issuing queries) stays balanced
        self._local = threading.local()
        # key -> its nested-document prefixes, longest first; pure string
        # derivation, so sharing across threads/queries is safe
        self._prefixes: dict[str, tuple[str, ...]] = {}

    # -- query-scoped decode cache (FunctionRegistry listener hooks) ---------

    def begin_query(self, execution_context: Any) -> None:
        """Install a fresh :class:`ExtractionContext` for one query.

        A scope may request a larger decode cache through an
        ``extraction_cache_capacity`` attribute: the vectorized batch
        pipeline evaluates expressions column-major, so the cache must
        hold one full batch of headers for the decode/hit split to match
        row-major evaluation (see repro.rdbms.vectorized).
        """
        local = self._local
        stack = getattr(local, "stack", None)
        if stack is None:
            stack = local.stack = []
        capacity = getattr(execution_context, "extraction_cache_capacity", None)
        stack.append(
            ExtractionContext(
                stats=getattr(execution_context, "extract_stats", None),
                enabled=getattr(execution_context, "use_extraction_cache", True),
                capacity=capacity or DEFAULT_CACHE_CAPACITY,
            )
        )
        # mirror of stack[-1]: one getattr on the hot path instead of two
        local.top = stack[-1]

    def end_query(self, execution_context: Any) -> None:
        local = self._local
        stack = getattr(local, "stack", None)
        if stack:
            stack.pop()
        local.top = stack[-1] if stack else None

    def _context(self) -> ExtractionContext | None:
        return getattr(self._local, "top", None)

    def _header(self, data: bytes) -> DecodedHeader:
        context = getattr(self._local, "top", None)
        if context is not None:
            return context.header(data)
        # no active query (direct use, materializer thread): plain decode
        return DecodedHeader(data)

    def _subdocument(self, header: DecodedHeader, parent_id: int) -> bytes | None:
        context = getattr(self._local, "top", None)
        if context is not None:
            return context.subdocument(header, parent_id)
        return header.extract(parent_id, SqlType.BYTEA)

    # -- core navigation ----------------------------------------------------

    def extract_typed(self, data: bytes | None, key: str, sql_type: SqlType) -> Any:
        """Extract ``key`` as ``sql_type``; None when absent or mistyped.

        A stored attribute's value is never NULL (the serializer encodes
        absence by omission), so a None from ``extract`` means "absent at
        this level" and navigation can proceed without a separate
        existence probe.
        """
        if data is None:
            return None
        header = self._header(data)
        if "." in key:
            # dotted keys almost always live inside a nested document;
            # navigate the parent chain first, then fall back to a literal
            # dotted key stored at this level
            value = self._descend(
                header, key, lambda sub: self.extract_typed(sub, key, sql_type)
            )
            if value is not None:
                return value
        attr_id = self.catalog.lookup_id(key, sql_type)
        if attr_id is None:
            return None
        return header.extract(attr_id, sql_type)

    def _descend(
        self,
        header: DecodedHeader,
        key: str,
        continuation: Callable[[bytes], Any],
        found: Callable[[Any], bool] = _found,
    ) -> Any:
        """Navigate nested-document prefixes of ``key``, longest first.

        A miss inside one prefix (``found`` rejects the continuation's
        result) keeps trying *shorter* prefixes: the key may live directly
        in a shallower cell -- e.g. a literal ``"b.c"`` key inside ``a``'s
        document coexisting with a materialized ``a.b`` sub-document --
        so the longest prefix must not short-circuit navigation.
        """
        prefixes = self._prefixes.get(key)
        if prefixes is None:
            parts = key.split(".")
            prefixes = self._prefixes[key] = tuple(
                ".".join(parts[:split]) for split in range(len(parts) - 1, 0, -1)
            )
        lookup_id = self.catalog.lookup_id
        for prefix in prefixes:
            parent_id = lookup_id(prefix, SqlType.BYTEA)
            if parent_id is None or not header.has(parent_id):
                continue
            sub_document = self._subdocument(header, parent_id)
            if sub_document is None:
                continue
            value = continuation(sub_document)
            if found(value):
                return value
        return None

    def exists(self, data: bytes | None, key: str) -> bool:
        """Key-existence check (any type) without decoding the value."""
        if data is None:
            return False
        header = self._header(data)
        for attribute in self.catalog.attributes_named(key):
            if header.has(attribute.attr_id):
                return True
        result = self._descend(
            header, key, lambda sub: self.exists(sub, key), found=bool
        )
        return bool(result)

    # -- typed entry points (the registered UDFs) ---------------------------

    def extract_text(self, data: bytes | None, key: str) -> str | None:
        return self.extract_typed(data, key, SqlType.TEXT)

    def extract_int(self, data: bytes | None, key: str) -> int | None:
        return self.extract_typed(data, key, SqlType.INTEGER)

    def extract_real(self, data: bytes | None, key: str) -> float | None:
        return self.extract_typed(data, key, SqlType.REAL)

    def extract_num(self, data: bytes | None, key: str) -> int | float | None:
        """Numeric extraction: integer attribute first, then real."""
        value = self.extract_typed(data, key, SqlType.INTEGER)
        if value is not None:
            return value
        return self.extract_typed(data, key, SqlType.REAL)

    def extract_bool(self, data: bytes | None, key: str) -> bool | None:
        return self.extract_typed(data, key, SqlType.BOOLEAN)

    def extract_array(self, data: bytes | None, key: str) -> list | None:
        return self.extract_typed(data, key, SqlType.ARRAY)

    def extract_doc(self, data: bytes | None, key: str) -> bytes | None:
        return self.extract_typed(data, key, SqlType.BYTEA)

    def extract_any(self, data: bytes | None, key: str) -> str | None:
        """Untyped extraction; non-text values are downcast to text."""
        if data is None:
            return None
        header = self._header(data)
        for attribute in self.catalog.attributes_named(key):
            if header.has(attribute.attr_id):
                value = header.extract(attribute.attr_id, attribute.key_type)
                return self._downcast(value, attribute.key_type, attribute.key_name)
        return self._descend(header, key, lambda sub: self.extract_any(sub, key))

    def _downcast(
        self, value: Any, sql_type: SqlType, key_name: str = ""
    ) -> str | None:
        """Downcast a non-text value to its JSON text rendering.

        Containers reconstruct under ``key_name``'s dotted prefix (nested
        attributes are stored under full dotted names) and render as
        canonical JSON, matching what the pgjson baseline's
        ``json_get_text`` produces for the same value.
        """
        if value is None:
            return None
        if sql_type is SqlType.TEXT:
            return value
        if sql_type is SqlType.BOOLEAN:
            return "true" if value else "false"
        prefix = key_name + "." if key_name else ""
        if sql_type is SqlType.BYTEA:
            return json.dumps(self.to_dict(value, prefix=prefix), sort_keys=True)
        if sql_type is SqlType.ARRAY:
            return json.dumps(self._array_to_plain(value, prefix=prefix))
        return str(value)

    # -- whole-document reconstruction ---------------------------------------

    def to_dict(self, data: bytes | None, prefix: str = "") -> dict[str, Any]:
        """Rebuild the original (nested) document from the reservoir."""
        if data is None:
            return {}
        out: dict[str, Any] = {}
        for attr_id, raw in serializer.iterate(data):
            attribute = self.catalog.attribute(attr_id)
            local_name = attribute.key_name[len(prefix):]
            if attribute.key_type is SqlType.BYTEA:
                out[local_name] = self.to_dict(
                    bytes(raw), prefix=attribute.key_name + "."
                )
            else:
                value = serializer.decode_value(raw, attribute.key_type)
                if attribute.key_type is SqlType.ARRAY:
                    value = self._array_to_plain(
                        value, prefix=attribute.key_name + "."
                    )
                out[local_name] = value
        return out

    def _array_to_plain(self, values: list, prefix: str = "") -> list:
        """Decode nested sub-documents stored inside arrays.

        Object elements were serialized under the array key's dotted
        prefix, which must be stripped when rebuilding them.
        """
        out = []
        for element in values:
            if isinstance(element, bytes):
                out.append(self.to_dict(element, prefix=prefix))
            elif isinstance(element, list):
                out.append(self._array_to_plain(element, prefix=prefix))
            else:
                out.append(element)
        return out

    def to_json(self, data: bytes | None) -> str | None:
        if data is None:
            return None
        return json.dumps(self.to_dict(data), sort_keys=True)

    # -- reservoir mutation (materializer / UPDATE support) ------------------

    def remove_path(self, data: bytes, key: str, sql_type: SqlType) -> bytes:
        """Remove a (possibly nested) attribute from a serialized document."""
        attr_id = self.catalog.lookup_id(key, sql_type)
        if attr_id is not None and serializer.has_attribute(data, attr_id):
            return serializer.remove_attribute(data, attr_id, self.catalog.type_of)
        rewritten = self._rewrite_parent(
            data, key, lambda sub: self.remove_path(sub, key, sql_type)
        )
        return rewritten if rewritten is not None else data

    def set_path(self, data: bytes, key: str, sql_type: SqlType, value: Any) -> bytes:
        """Set (or clear, when value is None) an attribute in a document.

        For dotted keys the nested parent document must already exist; a
        missing parent leaves the document unchanged except for top-level
        keys, which are created on demand.
        """
        attr_id = self.catalog.attribute_id(key, sql_type)
        if "." not in key or serializer.has_attribute(data, attr_id):
            return serializer.add_attribute(
                data, attr_id, sql_type, value, self.catalog.type_of
            )
        rewritten = self._rewrite_parent(
            data, key, lambda sub: self.set_path(sub, key, sql_type, value)
        )
        if rewritten is not None:
            return rewritten
        return serializer.add_attribute(
            data, attr_id, sql_type, value, self.catalog.type_of
        )

    # -- process-lane support -------------------------------------------------

    def remote_token(self) -> tuple:
        """Cache key for the catalog snapshot shipped to worker processes.

        Epochs move on every DDL / DML batch, so a worker never extracts
        against attribute ids the parent has since reassigned.
        """
        catalog = self.catalog
        return (catalog.schema_epoch, catalog.data_epoch, len(catalog))

    def remote_payload(self) -> list[tuple[int, str, str]]:
        """Picklable catalog image: ``(attr_id, key_name, type value)``.

        Worker processes rebuild a :class:`SinewCatalog` from these
        triples with ``ensure_attribute`` (forced ids), giving their
        private extractor the exact dictionary the parent's documents
        were serialized against.
        """
        return [
            (attribute.attr_id, attribute.key_name, attribute.key_type.value)
            for attribute in self.catalog.all_attributes()
        ]

    def _rewrite_parent(
        self, data: bytes, key: str, transform: Callable[[bytes], bytes]
    ) -> bytes | None:
        """Apply ``transform`` to the nested document owning ``key`` and
        re-serialize the chain of parents; None when no parent exists."""
        parts = key.split(".")
        for split in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:split])
            parent_id = self.catalog.lookup_id(prefix, SqlType.BYTEA)
            if parent_id is not None and serializer.has_attribute(data, parent_id):
                sub_document = serializer.extract(data, parent_id, SqlType.BYTEA)
                new_sub = transform(sub_document)
                return serializer.add_attribute(
                    data, parent_id, SqlType.BYTEA, new_sub, self.catalog.type_of
                )
        return None


#: Map from an expected SQL type to the UDF name the rewriter emits.
EXTRACT_FUNCTION_FOR_TYPE = {
    SqlType.TEXT: "extract_key_text",
    SqlType.INTEGER: "extract_key_num",
    SqlType.REAL: "extract_key_num",
    SqlType.BOOLEAN: "extract_key_bool",
    SqlType.ARRAY: "extract_key_array",
    SqlType.BYTEA: "extract_key_doc",
    None: "extract_key_any",
}


#: The extraction UDF surface: SQL name -> (extractor method, return type).
#: Shared with the process-lane worker (repro.rdbms.process_worker), which
#: re-registers the same methods on its private extractor from the same
#: table -- the two registries cannot drift apart.
EXTRACTION_UDFS: dict[str, tuple[str, SqlType]] = {
    "extract_key_text": ("extract_text", SqlType.TEXT),
    "extract_key_int": ("extract_int", SqlType.INTEGER),
    "extract_key_real": ("extract_real", SqlType.REAL),
    "extract_key_num": ("extract_num", SqlType.REAL),
    "extract_key_bool": ("extract_bool", SqlType.BOOLEAN),
    "extract_key_array": ("extract_array", SqlType.ARRAY),
    "extract_key_doc": ("extract_doc", SqlType.BYTEA),
    "extract_key_any": ("extract_any", SqlType.TEXT),
    "sinew_exists": ("exists", SqlType.BOOLEAN),
    "sinew_to_json": ("to_json", SqlType.TEXT),
}


def register_extraction_udfs(db: Database, extractor: ReservoirExtractor) -> None:
    """Register Sinew's extraction functions on the underlying RDBMS,
    exactly as the prototype installs its UDF extension (paper section 5).

    Each function carries a ``("sinew_extract", method)`` remote spec: the
    bound methods themselves are unpicklable (they close over the catalog
    and its latches), so the process lane ships the *name* and the worker
    rebinds it to its own extractor (see repro.rdbms.process_worker).
    """
    for name, (method, return_type) in EXTRACTION_UDFS.items():
        db.create_function(
            name,
            getattr(extractor, method),
            return_type,
            remote_spec=("sinew_extract", method),
        )
    # scope the extractor's decoded-header cache to each query's lifetime
    db.functions.register_query_listener(extractor)
    # and let the planner/process lane snapshot the catalog for workers
    db.functions.remote_catalog = extractor
