"""Sinew's bulk loader (paper section 3.2.1).

A load is two steps:

1. **Serialization** -- each document is parsed and syntax-checked, its
   keys are type-inferred and registered in the global catalog dictionary
   (get-or-create of attribute ids), per-table occurrence counts are
   accumulated, and the document is serialized into the reservoir format.
2. **Insertion** -- every serialized document goes into the column
   reservoir *regardless of the current physical schema*; physical columns
   of the row are NULL.  Affected materialized columns are then flagged
   dirty so the column materializer will move the newly loaded values into
   their physical columns in the background.

The loader takes the catalog latch, so it can never run concurrently with
the materializer (section 3.1.4); acquisition *blocks* (bounded by
``latch_timeout``) so a loader arriving while the background materializer
holds the latch waits its turn instead of failing.

Crash safety: catalog mutations (dirty flags, occurrence counts, the
document count) are published **before** the heap insert, and counts are
allowed to run stale-high (`SNW301`/`SNW305` treat that as a warning).  A
crash at any of the ``loader.*`` / ``storage.write_row`` injection points
therefore leaves `SinewDB.check()` free of errors: either the rows are
absent and the catalog over-counts (warning), or the rows are present and
every affected materialized column is already marked dirty, so queries
fall back to the ``COALESCE(physical, extract(...))`` path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..latching import requires_latch
from ..rdbms.database import Database
from ..rdbms.types import SqlType
from . import serializer
from .catalog import DEFAULT_LATCH_TIMEOUT, SinewCatalog
from .document import infer_sql_type, parse_document

#: Fixed physical columns every Sinew table starts with.
ID_COLUMN = "_id"
RESERVOIR_COLUMN = "data"


@dataclass
class LoadReport:
    """Summary of one bulk load."""

    n_documents: int = 0
    serialized_bytes: int = 0
    new_attributes: int = 0
    dirtied_columns: list[str] = field(default_factory=list)


class SinewLoader:
    """Serializes documents and appends them to a Sinew table."""

    def __init__(self, db: Database, catalog: SinewCatalog):
        self.db = db
        self.catalog = catalog
        #: optional FaultInjector (duck-typed); see repro.testing.faults
        self.faults = None
        #: latch acquisition mode: wait (bounded) for the materializer
        self.latch_blocking = True
        self.latch_timeout = DEFAULT_LATCH_TIMEOUT

    def serialize_document(
        self,
        document: Mapping[str, Any],
        prefix: str = "",
        counts: dict[int, int] | None = None,
    ) -> bytes:
        """Serialize one parsed document into the reservoir format.

        Nested objects are recursively serialized; every nesting level's
        attributes are registered under their full dotted key names, so the
        catalog dictionary covers the whole flattened logical schema.

        When ``counts`` is given, each registered attribute's occurrence is
        tallied there (the loader's statistics pass, folded into
        serialization so the document is walked only once).
        """
        triples: list[tuple[int, SqlType, Any]] = []
        for key, value in document.items():
            if value is None:
                continue  # JSON null == key absence in the sparse model
            dotted = f"{prefix}{key}"
            sql_type = infer_sql_type(value)
            attr_id = self.catalog.attribute_id(dotted, sql_type)
            if counts is not None:
                counts[attr_id] = counts.get(attr_id, 0) + 1
            if sql_type is SqlType.BYTEA:
                value = self.serialize_document(value, prefix=f"{dotted}.", counts=counts)
            elif sql_type is SqlType.ARRAY:
                value = self._normalise_array(value, dotted)
            triples.append((attr_id, sql_type, value))
        return serializer.serialize(triples)

    def _normalise_array(self, values: Iterable[Any], dotted: str) -> list[Any]:
        """Serialize dict elements inside arrays as nested documents."""
        out: list[Any] = []
        for element in values:
            if isinstance(element, dict):
                out.append(self.serialize_document(element, prefix=f"{dotted}."))
            elif isinstance(element, (list, tuple)):
                out.append(self._normalise_array(element, dotted))
            else:
                out.append(element)
        return out

    def load(
        self,
        table_name: str,
        documents: Iterable[str | Mapping[str, Any]],
    ) -> LoadReport:
        """Bulk-load documents into ``table_name``.

        The table must already exist with at least the ``(_id, data)``
        physical columns (``SinewDB.create_collection`` sets this up).
        """
        report = LoadReport()
        table = self.db.table(table_name)
        table_catalog = self.catalog.table(table_name)
        schema = table.schema
        n_physical = len(schema)
        id_position = schema.position_of(ID_COLUMN)
        data_position = schema.position_of(RESERVOIR_COLUMN)
        attributes_before = len(self.catalog)

        with self.catalog.exclusive_latch(
            "loader", blocking=self.latch_blocking, timeout=self.latch_timeout
        ):
            rows: list[tuple] = []
            counts: dict[int, int] = {}
            next_id = table_catalog.n_documents
            for raw_document in documents:
                document = parse_document(raw_document)
                serialized = self.serialize_document(document, counts=counts)
                row = [None] * n_physical
                row[id_position] = next_id
                row[data_position] = serialized
                rows.append(tuple(row))
                next_id += 1
                report.n_documents += 1
                report.serialized_bytes += len(serialized)

            # Crash-safe ordering: publish every catalog mutation *before*
            # touching the heap.  Newly loaded values live only in the
            # reservoir, so every materialized column must be dirty by the
            # time its rows are visible (section 3.2.1); counts and the
            # document tally may only ever run stale-HIGH after a crash,
            # which the integrity checker treats as a warning, not an error.
            # On disk the batch is one WAL transaction: the catalog delta
            # and the heap rows replay together or not at all.
            with self.db._dml_txn() as txn:
                self._publish_catalog_delta(
                    table_name, table_catalog, counts, next_id, report, txn
                )
                if self.faults is not None:
                    self.faults.fire("loader.before_insert", table=table_name)
                self.db.insert_rows(table_name, rows, txn=txn)
            if self.faults is not None:
                self.faults.fire("loader.after_insert", table=table_name)

        report.new_attributes = len(self.catalog) - attributes_before
        return report

    @requires_latch("catalog")
    def _publish_catalog_delta(
        self,
        table_name: str,
        table_catalog,
        counts: dict[int, int],
        next_id: int,
        report: LoadReport,
        txn,
    ) -> None:
        """Publish a load's catalog mutations (latch held, inside the txn).

        Dirty flags, occurrence counts and the document tally flip here --
        the state the materializer and the query rewriter read, hence the
        ``@requires_latch`` obligation on every caller.
        """
        dirtied_ids: list[int] = []
        if report.n_documents:
            for state in table_catalog.materialized_columns():
                if not state.dirty:
                    state.dirty = True
                dirtied_ids.append(state.attr_id)
                report.dirtied_columns.append(
                    self.catalog.attribute(state.attr_id).key_name
                )
        for attr_id, occurrences in counts.items():
            table_catalog.state(attr_id).count += occurrences
        table_catalog.n_documents = next_id
        self.db.log_catalog(
            {
                "op": "load",
                "table": table_name,
                "attrs": [
                    (
                        attr_id,
                        self.catalog.attribute(attr_id).key_name,
                        self.catalog.attribute(attr_id).key_type.value,
                    )
                    for attr_id in counts
                ],
                "counts": counts,
                "dirtied": dirtied_ids,
                "n_documents": next_id,
            },
            txn=txn,
        )
