"""Array storage strategies (paper section 4.2).

JSON arrays can be stored three ways, chosen per key by the user according
to what the array *means*:

``NATIVE``
    The default: the array stays a value in the column reservoir (or a
    physical ARRAY column once materialized).  Containment predicates use
    ``value = ANY(extract_key_array(data, key))``.

``POSITIONAL``
    For fixed-size, small arrays (Deutsch et al.'s STORED mapping): each
    position becomes its own physical column ``<key>_0 .. <key>_{n-1}``,
    so positional and containment predicates reduce to trivial column
    filters.

``ELEMENT_TABLE``
    For unordered collections or arrays of nested objects: elements move
    to a separate relation ``<table>__<key>`` of ``(parent_id, idx,
    element)`` rows -- or one column per object attribute when elements
    are homogeneous objects -- so the RDBMS keeps aggregate statistics on
    the element collection and containment becomes a semi-join.

The :class:`ArrayStorageManager` applies a strategy to already-loaded data
(scanning the reservoir, building the auxiliary columns/tables, and
removing the moved arrays from the reservoir) and builds the matching
containment SQL for each strategy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..rdbms.errors import ExecutionError, PlanningError
from ..rdbms.storage import Column
from ..rdbms.types import SqlType
from .loader import ID_COLUMN, RESERVOIR_COLUMN


class ArrayStrategy(enum.Enum):
    NATIVE = "native"
    POSITIONAL = "positional"
    ELEMENT_TABLE = "element_table"


@dataclass
class ArrayConfig:
    """The applied strategy for one (table, key)."""

    table_name: str
    key_name: str
    strategy: ArrayStrategy
    fixed_size: int | None = None
    element_table: str | None = None
    position_columns: tuple[str, ...] = ()


class ArrayStorageManager:
    """Applies and queries the per-key array storage strategies."""

    def __init__(self, sdb):
        self.sdb = sdb
        self.configs: dict[tuple[str, str], ArrayConfig] = {}

    # ------------------------------------------------------------------
    # applying strategies
    # ------------------------------------------------------------------

    def apply(
        self,
        table_name: str,
        key_name: str,
        strategy: ArrayStrategy,
        fixed_size: int | None = None,
    ) -> ArrayConfig:
        """Reorganise the storage of one array key."""
        if strategy is ArrayStrategy.NATIVE:
            config = ArrayConfig(table_name, key_name, strategy)
        elif strategy is ArrayStrategy.POSITIONAL:
            if fixed_size is None or fixed_size <= 0:
                raise PlanningError(
                    "POSITIONAL array storage needs a fixed_size > 0"
                )
            config = self._apply_positional(table_name, key_name, fixed_size)
        elif strategy is ArrayStrategy.ELEMENT_TABLE:
            config = self._apply_element_table(table_name, key_name)
        else:  # pragma: no cover
            raise PlanningError(f"unknown strategy {strategy!r}")
        self.configs[(table_name, key_name)] = config
        return config

    def _apply_positional(
        self, table_name: str, key_name: str, fixed_size: int
    ) -> ArrayConfig:
        table = self.sdb.db.table(table_name)
        extractor = self.sdb.extractor
        names = tuple(f"{key_name}_{index}" for index in range(fixed_size))
        for name in names:
            if name not in table.schema:
                table.add_column(Column(name, SqlType.TEXT))
        data_position = table.schema.position_of(RESERVOIR_COLUMN)
        positions = [table.schema.position_of(name) for name in names]

        for rid, row in list(table.scan()):
            data = row[data_position]
            if data is None:
                continue
            values = extractor.extract_array(data, key_name)
            if values is None:
                continue
            if len(values) > fixed_size:
                raise ExecutionError(
                    f"array {key_name!r} has {len(values)} elements; "
                    f"fixed_size is {fixed_size}"
                )
            new_row = list(row)
            for index, position in enumerate(positions):
                new_row[position] = (
                    _element_as_text(values[index]) if index < len(values) else None
                )
            new_row[data_position] = extractor.remove_path(
                data, key_name, SqlType.ARRAY
            )
            table.update(rid, tuple(new_row))
        return ArrayConfig(
            table_name,
            key_name,
            ArrayStrategy.POSITIONAL,
            fixed_size=fixed_size,
            position_columns=names,
        )

    def _apply_element_table(self, table_name: str, key_name: str) -> ArrayConfig:
        db = self.sdb.db
        extractor = self.sdb.extractor
        element_table = f"{table_name}__{_sanitize(key_name)}"
        if not db.has_table(element_table):
            db.create_table(
                element_table,
                [
                    ("parent_id", SqlType.INTEGER),
                    ("idx", SqlType.INTEGER),
                    ("element", SqlType.TEXT),
                ],
            )
        table = db.table(table_name)
        data_position = table.schema.position_of(RESERVOIR_COLUMN)
        id_position = table.schema.position_of(ID_COLUMN)

        element_rows: list[tuple] = []
        for rid, row in list(table.scan()):
            data = row[data_position]
            if data is None:
                continue
            values = extractor.extract_array(data, key_name)
            if values is None:
                continue
            parent_id = row[id_position]
            for index, element in enumerate(values):
                element_rows.append((parent_id, index, _element_as_text(element)))
            new_row = list(row)
            new_row[data_position] = extractor.remove_path(
                data, key_name, SqlType.ARRAY
            )
            table.update(rid, tuple(new_row))
        db.insert_rows(element_table, element_rows)
        db.analyze(element_table)
        return ArrayConfig(
            table_name,
            key_name,
            ArrayStrategy.ELEMENT_TABLE,
            element_table=element_table,
        )

    # ------------------------------------------------------------------
    # containment queries
    # ------------------------------------------------------------------

    def containment_sql(self, table_name: str, key_name: str, value: str) -> str:
        """SQL returning ``_id`` of parents whose array contains ``value``,
        under whichever strategy is configured for the key."""
        config = self.configs.get(
            (table_name, key_name),
            ArrayConfig(table_name, key_name, ArrayStrategy.NATIVE),
        )
        escaped = value.replace("'", "''")
        if config.strategy is ArrayStrategy.NATIVE:
            return (
                f"SELECT _id FROM {table_name} "
                f"WHERE '{escaped}' = ANY(extract_key_array(data, '{key_name}'))"
            )
        if config.strategy is ArrayStrategy.POSITIONAL:
            predicate = " OR ".join(
                f"{column} = '{escaped}'" for column in config.position_columns
            )
            return f"SELECT _id FROM {table_name} WHERE {predicate}"
        return (
            f"SELECT DISTINCT t._id FROM {table_name} t, {config.element_table} e "
            f"WHERE t._id = e.parent_id AND e.element = '{escaped}'"
        )

    def contains(self, table_name: str, key_name: str, value: str) -> list[int]:
        """Parent ``_id`` values whose ``key_name`` array contains ``value``."""
        result = self.sdb.db.execute(self.containment_sql(table_name, key_name, value))
        return sorted(row[0] for row in result.rows)


def _element_as_text(element) -> str | None:
    if element is None:
        return None
    if isinstance(element, bool):
        return "true" if element else "false"
    if isinstance(element, bytes):
        return element.hex()
    return str(element)


def _sanitize(key_name: str) -> str:
    return "".join(ch if ch.isalnum() else "_" for ch in key_name)
