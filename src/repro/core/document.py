"""Document parsing, type inference, and flattening.

Sinew accepts "any data represented as a combination of required, optional,
nested, and repeated fields" (paper section 3).  This module normalises an
input document (a JSON string or an already-parsed mapping) into the shapes
the rest of the system consumes:

* ``parse_document`` -- syntax validation + dict form (the loader's first
  step);
* ``infer_sql_type`` -- the JSON-to-SQL type mapping of section 3.2.1
  (an *attribute* is a (key, type) pair, so the same key name may map to
  several attributes when values are multi-typed, e.g. NoBench's ``dyn1``);
* ``flatten`` -- dotted-path flattening of nested objects, producing the
  logical columns of the universal relation (``user.id`` etc.).  The parent
  object itself remains a value (paper: "the nested object remains
  referenceable by the original key").
"""

from __future__ import annotations

import json
from typing import Any, Iterator, Mapping

from ..rdbms.errors import ExecutionError
from ..rdbms.types import SqlType


class DocumentError(ExecutionError):
    """The input is not a valid document (bad JSON, non-object root...)."""


def parse_document(document: str | Mapping[str, Any]) -> dict[str, Any]:
    """Validate and normalise one input document.

    Accepts a JSON text or a mapping.  The root must be an object, because
    each document becomes one row of the universal relation.
    """
    if isinstance(document, str):
        try:
            parsed = json.loads(document)
        except json.JSONDecodeError as error:
            raise DocumentError(f"invalid JSON: {error}") from None
    elif isinstance(document, Mapping):
        parsed = dict(document)
    else:
        raise DocumentError(
            f"document must be a JSON string or mapping, got {type(document).__name__}"
        )
    if not isinstance(parsed, dict):
        raise DocumentError("document root must be a JSON object")
    for key in parsed:
        if not isinstance(key, str) or not key:
            raise DocumentError(f"document keys must be non-empty strings: {key!r}")
    return parsed


def infer_sql_type(value: Any) -> SqlType:
    """The loader's JSON-value to SQL-type mapping."""
    if isinstance(value, bool):
        return SqlType.BOOLEAN
    if isinstance(value, int):
        return SqlType.INTEGER
    if isinstance(value, float):
        return SqlType.REAL
    if isinstance(value, str):
        return SqlType.TEXT
    if isinstance(value, dict):
        return SqlType.BYTEA  # nested document (serialized sub-record)
    if isinstance(value, (list, tuple)):
        return SqlType.ARRAY
    if value is None:
        raise DocumentError("cannot infer a type for null")
    raise DocumentError(f"unsupported JSON value type: {type(value).__name__}")


def flatten(document: Mapping[str, Any], prefix: str = "") -> Iterator[tuple[str, Any]]:
    """Yield ``(dotted_key, value)`` for every addressable logical column.

    Nested objects contribute both the parent key (with the dict value) and
    each flattened subkey.  Arrays are left opaque (section 4.2 discusses
    the storage options for them separately).  ``None`` values are skipped:
    JSON null is treated as key absence, matching the sparse-data model.
    """
    for key, value in document.items():
        if value is None:
            continue
        dotted = f"{prefix}{key}"
        yield dotted, value
        if isinstance(value, dict):
            yield from flatten(value, prefix=f"{dotted}.")


def resolve_path(document: Mapping[str, Any], dotted_key: str) -> Any:
    """Navigate a dotted path through nested dicts; None when absent.

    Longest-key-first semantics: a literal key containing a dot wins over
    path navigation (``{"a.b": 1}`` resolves ``a.b`` to 1).
    """
    if dotted_key in document:
        return document[dotted_key]
    head, separator, rest = dotted_key.partition(".")
    if not separator:
        return None
    child = document.get(head)
    if isinstance(child, dict):
        return resolve_path(child, rest)
    return None


def document_bytes(document: Mapping[str, Any]) -> int:
    """Size of the document's canonical JSON text (the 'Original' column of
    Tables 3 and 4)."""
    return len(json.dumps(document, separators=(",", ":")).encode("utf-8"))
