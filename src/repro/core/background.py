"""The background materializer daemon (paper sections 3.1.4 and 5).

The paper describes column materialization as an *incremental,
interruptible background process* that runs concurrently with the loader,
serialized only by the catalog latch.  :class:`MaterializerDaemon` is that
process: a worker thread that repeatedly takes bounded
:meth:`~repro.core.materializer.ColumnMaterializer.step` slices over every
collection with dirty columns, blocking on the latch so foreground loads
and the daemon take turns instead of failing.

Lifecycle
---------
``idle -> running <-> paused -> stopped`` via :meth:`start`, :meth:`pause`,
:meth:`resume`, :meth:`stop`.  Any exception escaping the work loop moves
the daemon to ``crashed`` (recorded in ``last_error``) *without cleanup*:
whatever the catalog and heap held at that instant is the state recovery
must cope with -- exactly how tests exercise crash safety through the
fault-injection points (:mod:`repro.testing.faults`).

Crash recovery
--------------
Restarting a crashed daemon first runs :meth:`recover`: every collection is
re-scanned for ``dirty`` columns, their per-column progress cursors
(persisted in the table catalog as
:attr:`~repro.core.catalog.ColumnState.cursor`) are validated (a cursor
beyond the current row horizon is reset so the column is conservatively
re-scanned), and materialization resumes *mid-column*.  Recovery relies on
two invariants maintained by the materializer and loader:

1. every row move is atomic and removes the value from its source side, so
   re-examining an already-moved row is a no-op;
2. the dirty bit is cleared only after the cursor reaches the row horizon
   under the latch, so a crash anywhere earlier leaves the column dirty and
   the ``COALESCE(physical, extract(...))`` rewrite still answers queries
   correctly.

Together these make every crash point idempotent: re-running ``step``
converges to the same clean state the uninterrupted run would have reached.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..latching import TrackedLock
from ..rdbms.errors import ConcurrencyError, DegradedError
from .catalog import SinewCatalog
from .materializer import ColumnMaterializer

#: Row budget of one materializer slice; small enough to yield the latch
#: to a waiting loader frequently.
DEFAULT_STEP_ROWS = 256

#: How long the worker sleeps when no collection has dirty columns.
DEFAULT_IDLE_SLEEP = 0.02


@dataclass
class DaemonStatus:
    """Point-in-time snapshot of the daemon (``\\daemon`` / ``status()``)."""

    state: str
    steps: int
    rows_examined: int
    rows_moved: int
    columns_completed: int
    latch_waits: int
    latch_timeouts: int
    recoveries: int
    last_error: str | None
    backlog: dict[str, int] = field(default_factory=dict)
    #: wall-clock time of the last crash (``time.time()``), None if never
    last_error_at: float | None = None
    #: slices skipped because the WAL was in read-only degraded mode
    degraded_skips: int = 0

    @property
    def idle(self) -> bool:
        """True when no dirty columns remain anywhere."""
        return not self.backlog

    def lines(self) -> list[str]:
        """Human-readable rendering (the shell's ``\\daemon`` output)."""
        backlog = (
            ", ".join(f"{t}({n})" for t, n in sorted(self.backlog.items()))
            or "(empty)"
        )
        return [
            f"state:        {self.state}",
            f"steps:        {self.steps}",
            f"rows moved:   {self.rows_moved} (examined {self.rows_examined})",
            f"columns done: {self.columns_completed}",
            f"latch waits:  {self.latch_waits} ({self.latch_timeouts} timeout(s))",
            f"recoveries:   {self.recoveries}",
            f"backlog:      {backlog}",
            f"last error:   {self.last_error or '(none)'}",
            "crashed at:   "
            + (
                time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(self.last_error_at))
                if self.last_error_at is not None
                else "(never)"
            ),
        ]


@dataclass
class RecoveryReport:
    """What :meth:`MaterializerDaemon.recover` found and fixed."""

    dirty_columns: int = 0
    cursors_clamped: int = 0
    tables: list[str] = field(default_factory=list)


class MaterializerDaemon:
    """Worker thread driving :class:`ColumnMaterializer` incrementally."""

    def __init__(
        self,
        materializer: ColumnMaterializer,
        catalog: SinewCatalog,
        collections: Callable[[], Iterable[str]],
        *,
        step_rows: int = DEFAULT_STEP_ROWS,
        idle_sleep: float = DEFAULT_IDLE_SLEEP,
    ):
        self.materializer = materializer
        self.catalog = catalog
        self.collections = collections
        self.step_rows = step_rows
        self.idle_sleep = idle_sleep
        #: optional FaultInjector; fires the ``daemon.*`` points
        self.faults = None

        self._thread: threading.Thread | None = None
        self._stop_requested = threading.Event()
        self._pause_requested = threading.Event()
        self._wake = threading.Event()
        # Leaf mutex: guards the stats/state fields only and is never held
        # across a latch acquisition (TrackedLock lets the latch-order
        # tracker verify exactly that under REPRO_DEBUG_LATCHES=1).
        self._lock = TrackedLock("daemon.state")

        self.state = "idle"
        self.steps = 0
        self.rows_examined = 0
        self.rows_moved = 0
        self.columns_completed = 0
        self.latch_timeouts = 0
        self.recoveries = 0
        self.last_error: str | None = None
        self.last_error_at: float | None = None
        self.degraded_skips = 0

    # ------------------------------------------------------------------
    # controls
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start (or restart) the worker thread.

        Restarting after a crash runs :meth:`recover` first, resuming any
        mid-column materialization from its persisted cursor.
        """
        if self.is_alive():
            raise ConcurrencyError("materializer daemon is already running")
        if self.state == "crashed":
            self.recover()
        self._stop_requested.clear()
        self._wake.set()
        # honour a pause requested before start: the worker comes up parked
        self.state = "paused" if self._pause_requested.is_set() else "running"
        self._thread = threading.Thread(
            target=self._run, name="sinew-materializer", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        """Ask the worker to finish its current slice and exit."""
        self._stop_requested.set()
        self._wake.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
            if thread.is_alive():  # pragma: no cover - defensive
                raise ConcurrencyError("materializer daemon did not stop in time")
        if self.state not in ("crashed",):
            self.state = "stopped"

    def pause(self) -> None:
        """Suspend work after the current slice (the latch is not held
        between slices, so a paused daemon never blocks the loader)."""
        self._pause_requested.set()
        if self.state == "running":
            self.state = "paused"

    def resume(self) -> None:
        self._pause_requested.clear()
        self._wake.set()
        if self.state == "paused":
            self.state = "running"

    def kick(self) -> None:
        """Wake an idle worker (called after loads dirty new columns)."""
        self._wake.set()

    def is_alive(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------

    def recover(self) -> RecoveryReport:
        """Re-scan dirty columns and validate their progress cursors.

        Idempotent and cheap (catalog-only): cursors past the current row
        horizon are reset for a conservative full re-scan, stale cursors on
        clean columns are cleared, and
        every dirty column is counted so the restarted worker knows its
        backlog.  The actual data repair is the normal ``step`` loop --
        see the module docstring for why resuming is always safe.
        """
        report = RecoveryReport()
        for table_name in list(self.collections()):
            table = self.materializer.db.table(table_name)
            horizon = table.allocated_rids
            touched = False
            for state in self.catalog.table(table_name).columns.values():
                if state.dirty:
                    report.dirty_columns += 1
                    touched = True
                    if state.cursor > horizon:
                        # a cursor beyond the row horizon can no longer be
                        # trusted: conservatively re-scan from the start
                        # (row moves are idempotent, so this is always safe)
                        state.cursor = 0
                        report.cursors_clamped += 1
                elif state.cursor:
                    state.cursor = 0
                    report.cursors_clamped += 1
            if touched:
                report.tables.append(table_name)
        with self._lock:
            self.recoveries += 1
            self.last_error = None
            self.last_error_at = None
        return report

    # ------------------------------------------------------------------
    # status
    # ------------------------------------------------------------------

    def backlog(self) -> dict[str, int]:
        """Dirty-column count per collection (empty when fully settled)."""
        out: dict[str, int] = {}
        for table_name in list(self.collections()):
            n = len(self.catalog.table(table_name).dirty_columns())
            if n:
                out[table_name] = n
        return out

    def status(self) -> DaemonStatus:
        with self._lock:
            return DaemonStatus(
                state=self.state,
                steps=self.steps,
                rows_examined=self.rows_examined,
                rows_moved=self.rows_moved,
                columns_completed=self.columns_completed,
                latch_waits=self.catalog.latch_stats.waits,
                latch_timeouts=self.latch_timeouts,
                recoveries=self.recoveries,
                last_error=self.last_error,
                backlog=self.backlog(),
                last_error_at=self.last_error_at,
                degraded_skips=self.degraded_skips,
            )

    def wait_until_idle(self, timeout: float = 10.0) -> bool:
        """Block until no dirty columns remain (or the daemon dies).

        Returns True when the backlog drained; False on timeout or crash.
        Intended for tests and synchronization points like shutdown.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if not self.backlog():
                return True
            if not self.is_alive():
                return False
            time.sleep(0.005)
        return False

    # ------------------------------------------------------------------
    # the worker loop
    # ------------------------------------------------------------------

    def _run(self) -> None:
        try:
            while not self._stop_requested.is_set():
                if self._pause_requested.is_set():
                    self._wake.wait(0.05)
                    self._wake.clear()
                    continue
                worked = self._sweep()
                if not worked and not self._stop_requested.is_set():
                    self._wake.wait(self.idle_sleep)
                    self._wake.clear()
        except BaseException as error:  # crash: freeze state, no cleanup
            with self._lock:
                self.state = "crashed"
                self.last_error = f"{type(error).__name__}: {error}"
                self.last_error_at = time.time()
            return
        with self._lock:
            if self.state != "crashed":
                self.state = "stopped"

    def _sweep(self) -> bool:
        """One pass over every collection; returns True if progress was made."""
        worked = False
        for table_name in list(self.collections()):
            if self._stop_requested.is_set() or self._pause_requested.is_set():
                break
            if not self.catalog.table(table_name).dirty_columns():
                continue
            if self.faults is not None:
                self.faults.fire("daemon.before_step", table=table_name)
            try:
                report = self.materializer.step(table_name, self.step_rows)
            except ConcurrencyError:
                # Latch timeout: the loader is busy; yield and retry later.
                with self._lock:
                    self.latch_timeouts += 1
                continue
            except DegradedError:
                # Row moves are writes; while the WAL is read-only the
                # daemon idles instead of crashing and resumes after
                # ``try_recover`` brings the log back.
                with self._lock:
                    self.degraded_skips += 1
                break
            with self._lock:
                self.steps += 1
                self.rows_examined += report.rows_examined
                self.rows_moved += report.rows_moved
                self.columns_completed += len(report.columns_completed)
            if self.faults is not None:
                self.faults.fire("daemon.after_step", table=table_name)
            worked = worked or bool(
                report.rows_examined or report.columns_completed
            )
        return worked
