"""Sinew's custom binary serialization format (paper section 4.1).

Layout of one serialized document::

    +-----------+---------------------+--------------------+-------+------+
    | n_attrs   | attr ids (sorted)   | value offsets      | len   | body |
    | uint32    | n_attrs x uint32    | n_attrs x uint32   | u32   | ...  |
    +-----------+---------------------+--------------------+-------+------+

* attribute ids come from the global catalog dictionary and are stored
  **sorted**, so key lookup is a binary search (O(log n)); the paper keeps
  ids and offsets in two separate runs to maximise cache locality of the
  binary search, which this layout preserves;
* ``offsets[i]`` is the byte offset of attribute i's value within the body;
  the value's length is ``offsets[i+1] - offsets[i]`` (or ``len -
  offsets[i]`` for the last attribute), so no per-value length words are
  needed;
* the body holds type-dependent binary encodings; nested objects are
  recursively serialized documents, giving the "nested object is itself a
  serialized data column" behaviour of section 6.1.

Value encodings
---------------
========  =====================================================
INTEGER   8-byte signed little-endian
REAL      8-byte IEEE-754 double
BOOLEAN   1 byte (0/1)
TEXT      UTF-8 bytes
BYTEA     nested serialized document (or raw bytes)
ARRAY     u32 count, then per element: u8 type tag, u32 byte
          length, encoded element
========  =====================================================
"""

from __future__ import annotations

import struct
from bisect import bisect_left
from typing import Any, Iterator, Sequence

from ..rdbms.errors import ExecutionError
from ..rdbms.types import SqlType

_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")

#: One-byte tags used inside ARRAY bodies (arrays are heterogeneous in
#: JSON, so elements are self-describing).
_TAG_NULL = 0
_TAG_INT = 1
_TAG_REAL = 2
_TAG_BOOL = 3
_TAG_TEXT = 4
_TAG_DOC = 5
_TAG_ARRAY = 6

_TAG_OF_TYPE = {
    SqlType.INTEGER: _TAG_INT,
    SqlType.REAL: _TAG_REAL,
    SqlType.BOOLEAN: _TAG_BOOL,
    SqlType.TEXT: _TAG_TEXT,
    SqlType.BYTEA: _TAG_DOC,
    SqlType.ARRAY: _TAG_ARRAY,
}


def encode_value(value: Any, sql_type: SqlType) -> bytes:
    """Encode one non-NULL value with its catalog-declared type."""
    if sql_type is SqlType.INTEGER:
        return _I64.pack(value)
    if sql_type is SqlType.REAL:
        return _F64.pack(value)
    if sql_type is SqlType.BOOLEAN:
        return b"\x01" if value else b"\x00"
    if sql_type is SqlType.TEXT:
        return value.encode("utf-8")
    if sql_type is SqlType.BYTEA:
        return bytes(value)
    if sql_type is SqlType.ARRAY:
        return encode_array(value)
    raise ExecutionError(f"cannot serialize type {sql_type}")


def decode_value(data: bytes, sql_type: SqlType) -> Any:
    """Decode one value previously produced by :func:`encode_value`."""
    if sql_type is SqlType.INTEGER:
        return _I64.unpack(data)[0]
    if sql_type is SqlType.REAL:
        return _F64.unpack(data)[0]
    if sql_type is SqlType.BOOLEAN:
        return data != b"\x00"
    if sql_type is SqlType.TEXT:
        return data.decode("utf-8")
    if sql_type is SqlType.BYTEA:
        return bytes(data)
    if sql_type is SqlType.ARRAY:
        return decode_array(data)
    raise ExecutionError(f"cannot deserialize type {sql_type}")


def encode_array(values: Sequence[Any]) -> bytes:
    """Self-describing array encoding (heterogeneous elements allowed)."""
    parts = [_U32.pack(len(values))]
    for element in values:
        if element is None:
            parts.append(bytes([_TAG_NULL]))
            parts.append(_U32.pack(0))
            continue
        if isinstance(element, bool):
            tag, encoded = _TAG_BOOL, (b"\x01" if element else b"\x00")
        elif isinstance(element, int):
            tag, encoded = _TAG_INT, _I64.pack(element)
        elif isinstance(element, float):
            tag, encoded = _TAG_REAL, _F64.pack(element)
        elif isinstance(element, str):
            tag, encoded = _TAG_TEXT, element.encode("utf-8")
        elif isinstance(element, (bytes, bytearray)):
            tag, encoded = _TAG_DOC, bytes(element)
        elif isinstance(element, (list, tuple)):
            tag, encoded = _TAG_ARRAY, encode_array(element)
        else:
            raise ExecutionError(
                f"cannot serialize array element of type {type(element).__name__}"
            )
        parts.append(bytes([tag]))
        parts.append(_U32.pack(len(encoded)))
        parts.append(encoded)
    return b"".join(parts)


def decode_array(data: bytes) -> list[Any]:
    (count,) = _U32.unpack_from(data, 0)
    position = 4
    out: list[Any] = []
    for _ in range(count):
        tag = data[position]
        (length,) = _U32.unpack_from(data, position + 1)
        start = position + 5
        chunk = data[start : start + length]
        position = start + length
        if tag == _TAG_NULL:
            out.append(None)
        elif tag == _TAG_INT:
            out.append(_I64.unpack(chunk)[0])
        elif tag == _TAG_REAL:
            out.append(_F64.unpack(chunk)[0])
        elif tag == _TAG_BOOL:
            out.append(chunk != b"\x00")
        elif tag == _TAG_TEXT:
            out.append(chunk.decode("utf-8"))
        elif tag == _TAG_DOC:
            out.append(bytes(chunk))
        elif tag == _TAG_ARRAY:
            out.append(decode_array(chunk))
        else:
            raise ExecutionError(f"corrupt array: unknown tag {tag}")
    return out


def serialize(attributes: Sequence[tuple[int, SqlType, Any]]) -> bytes:
    """Serialize a document given ``(attr_id, type, value)`` triples.

    NULL-valued attributes are *omitted entirely* -- absence is encoded by
    absence, which is where the format's space advantage over Avro comes
    from (Appendix A).  Attribute ids must be unique; they are sorted here.
    """
    present = [(aid, t, v) for aid, t, v in attributes if v is not None]
    present.sort(key=lambda item: item[0])
    n = len(present)
    encoded = [encode_value(value, sql_type) for _aid, sql_type, value in present]

    header = bytearray()
    header += _U32.pack(n)
    for aid, _t, _v in present:
        header += _U32.pack(aid)
    offset = 0
    for chunk in encoded:
        header += _U32.pack(offset)
        offset += len(chunk)
    header += _U32.pack(offset)  # total body length
    return bytes(header) + b"".join(encoded)


class DecodedHeader:
    """A fully parsed document header: ids, offsets, and the body base.

    Parsing the header once and reusing it across key lookups is what the
    per-query extraction cache amortises; each lookup is then a single
    binary search plus one slice decode, with no re-unpacking.
    """

    __slots__ = ("data", "n", "ids", "offsets", "body_base")

    def __init__(self, data: bytes):
        self.data = data
        n = _U32.unpack_from(data, 0)[0]
        self.n = n
        if n:
            self.ids = struct.unpack_from(f"<{n}I", data, 4)
            offsets_base = 4 + 4 * n
            self.offsets = struct.unpack_from(f"<{n + 1}I", data, offsets_base)
            self.body_base = offsets_base + 4 * (n + 1)
        else:
            self.ids = ()
            self.offsets = (0,)
            self.body_base = 8

    def position_of(self, attr_id: int) -> int:
        """Binary-search position of ``attr_id`` in the id run, or -1."""
        position = bisect_left(self.ids, attr_id)
        if position < self.n and self.ids[position] == attr_id:
            return position
        return -1

    def has(self, attr_id: int) -> bool:
        return self.position_of(attr_id) >= 0

    def raw(self, position: int) -> bytes:
        start = self.body_base + self.offsets[position]
        end = self.body_base + self.offsets[position + 1]
        return self.data[start:end]

    def extract(self, attr_id: int, sql_type: SqlType) -> Any:
        # open-coded position_of + raw: this is the per-row hot path
        ids = self.ids
        position = bisect_left(ids, attr_id)
        if position >= self.n or ids[position] != attr_id:
            return None
        base = self.body_base
        offsets = self.offsets
        return decode_value(
            self.data[base + offsets[position] : base + offsets[position + 1]],
            sql_type,
        )


def decode_header(data: bytes) -> DecodedHeader:
    """Parse a document header once, for repeated key lookups."""
    return DecodedHeader(data)


def attribute_count(data: bytes) -> int:
    return _U32.unpack_from(data, 0)[0]


def attribute_ids(data: bytes) -> list[int]:
    """The sorted attribute ids present in a serialized document."""
    n = attribute_count(data)
    return list(struct.unpack_from(f"<{n}I", data, 4)) if n else []


def has_attribute(data: bytes, attr_id: int) -> bool:
    """Key-existence test: binary search over the header only.

    This is the fast path the paper contrasts with BSON, where existence
    checks still walk the record.
    """
    n = _U32.unpack_from(data, 0)[0]
    if n == 0:
        return False
    ids = struct.unpack_from(f"<{n}I", data, 4)
    position = bisect_left(ids, attr_id)
    return position < n and ids[position] == attr_id


def extract(data: bytes, attr_id: int, sql_type: SqlType) -> Any:
    """Random-access extraction of one attribute; None when absent.

    Cost is O(log n) in the number of attributes: one binary search in the
    id run, one offset lookup, one slice decode.
    """
    n = _U32.unpack_from(data, 0)[0]
    if n == 0:
        return None
    ids = struct.unpack_from(f"<{n}I", data, 4)
    position = bisect_left(ids, attr_id)
    if position >= n or ids[position] != attr_id:
        return None
    offsets_base = 4 + 4 * n
    start_offset, end_offset = struct.unpack_from(
        "<II", data, offsets_base + 4 * position
    )
    body_base = offsets_base + 4 * (n + 1)
    return decode_value(
        data[body_base + start_offset : body_base + end_offset], sql_type
    )


def extract_many(
    data: bytes, wanted: Sequence[tuple[int, SqlType]]
) -> list[Any]:
    """Extract several attributes from one document (amortises the header
    unpack across keys, as Appendix A's 10-key task does)."""
    n = _U32.unpack_from(data, 0)[0]
    if n == 0:
        return [None] * len(wanted)
    ids = struct.unpack_from(f"<{n}I", data, 4)
    offsets_base = 4 + 4 * n
    offsets = struct.unpack_from(f"<{n + 1}I", data, offsets_base)
    body_base = offsets_base + 4 * (n + 1)
    out: list[Any] = []
    for attr_id, sql_type in wanted:
        position = bisect_left(ids, attr_id)
        if position >= n or ids[position] != attr_id:
            out.append(None)
            continue
        start, end = offsets[position], offsets[position + 1]
        out.append(decode_value(data[body_base + start : body_base + end], sql_type))
    return out


def iterate(data: bytes) -> Iterator[tuple[int, bytes]]:
    """Yield ``(attr_id, raw_value_bytes)`` pairs (deserialization path)."""
    n = _U32.unpack_from(data, 0)[0]
    if n == 0:
        return
    ids = struct.unpack_from(f"<{n}I", data, 4)
    offsets_base = 4 + 4 * n
    offsets = struct.unpack_from(f"<{n + 1}I", data, offsets_base)
    body_base = offsets_base + 4 * (n + 1)
    for index in range(n):
        yield ids[index], data[
            body_base + offsets[index] : body_base + offsets[index + 1]
        ]


def remove_attribute(data: bytes, attr_id: int, sql_type_of) -> bytes:
    """Return a copy of the document without ``attr_id``.

    ``sql_type_of`` maps attr_id -> SqlType (the catalog dictionary).  Used
    by the column materializer when moving a value out of the reservoir
    into a physical column.
    """
    kept: list[tuple[int, SqlType, Any]] = []
    for aid, raw in iterate(data):
        if aid == attr_id:
            continue
        sql_type = sql_type_of(aid)
        kept.append((aid, sql_type, decode_value(raw, sql_type)))
    return serialize(kept)


def add_attribute(data: bytes, attr_id: int, sql_type: SqlType, value: Any, sql_type_of) -> bytes:
    """Return a copy of the document with ``attr_id`` set to ``value``.

    Used by the materializer when dematerializing a physical column back
    into the reservoir, and by Sinew's UPDATE path for virtual columns.
    """
    kept: list[tuple[int, SqlType, Any]] = []
    for aid, raw in iterate(data):
        if aid == attr_id:
            continue
        existing_type = sql_type_of(aid)
        kept.append((aid, existing_type, decode_value(raw, existing_type)))
    if value is not None:
        kept.append((attr_id, sql_type, value))
    return serialize(kept)


def serialized_size(data: bytes) -> int:
    """Total byte size of a serialized document (Table 3 / 4 metric)."""
    return len(data)
