"""Sinew's catalog (paper section 3.1.2).

The catalog has two parts, exactly as in Figure 4:

* a **global attribute dictionary** mapping ``(key_name, key_type)`` pairs
  -- *attributes* -- to compact integer ids.  The ids are what the
  serialization format stores, so the dictionary doubles as the
  dictionary-encoding of key names that makes Sinew's representation the
  most compact in Table 3;
* a **per-table catalog** recording, for every attribute seen in a table:
  its occurrence count, whether it is stored as a physical column or
  virtually in the column reservoir, and the ``dirty`` flag that marks
  partially-materialized columns.

The catalog also owns the loader/materializer **latch** ("the materializer
and loader are not allowed to run concurrently, which we implement via a
latch in the catalog" -- section 3.1.4).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from ..latching import TrackedLock, latch_tracker, requires_latch
from ..rdbms.errors import CatalogError, ConcurrencyError
from ..rdbms.types import SqlType

#: Default bound on how long a blocking latch acquisition may wait before
#: giving up with a clear :class:`ConcurrencyError` (seconds).
DEFAULT_LATCH_TIMEOUT = 10.0


@dataclass
class LatchStats:
    """Accounting for the loader/materializer latch (``\\daemon`` surface)."""

    acquisitions: int = 0
    #: acquisitions that found the latch held and had to block
    waits: int = 0
    wait_seconds: float = 0.0
    #: blocking acquisitions that gave up after their timeout
    timeouts: int = 0
    #: non-blocking acquisitions that failed immediately
    contentions: int = 0


@dataclass(frozen=True)
class Attribute:
    """One entry of the global dictionary: an id for a (key, type) pair."""

    attr_id: int
    key_name: str
    key_type: SqlType


@dataclass
class ColumnState:
    """Per-table bookkeeping for one attribute (Figure 4b)."""

    attr_id: int
    count: int = 0
    materialized: bool = False
    dirty: bool = False
    #: physical column name once materialized (usually the key name; may be
    #: suffixed on a name/type collision).
    physical_name: str | None = None
    #: materializer progress cursor: next rid to examine while this column
    #: is dirty.  Lives in the catalog (not the materializer) so a crashed
    #: materialization resumes mid-column on restart (section 3.1.4's
    #: interruptible background process).
    cursor: int = 0
    #: queries that referenced this attribute since the last analyzer pass
    #: (the "query patterns" input of section 3.1.3; the rewriter maintains
    #: it, the analyzer consumes and resets it).
    access_count: int = 0
    #: schema epoch at this column's most recent direction flip.  The
    #: materializer refuses to move rows while any in-flight query was
    #: planned before this epoch: such a plan predates the COALESCE bridge
    #: (or still reads the physical side bare after a dematerialize flip),
    #: so a move could hide values from it mid-scan.  Runtime-only -- not
    #: logged; recovery restarts with no in-flight queries.
    flip_epoch: int = 0

    def density(self, n_documents: int) -> float:
        """Fraction of the table's documents containing this attribute."""
        if n_documents <= 0:
            return 0.0
        return self.count / n_documents


def column_state_payload(table_name: str, state: "ColumnState") -> dict:
    """WAL CATALOG payload capturing one column's full state.

    Logged by everything that flips materialization flags (the analyzer,
    ``SinewDB.materialize``/``dematerialize``, the materializer's
    finish path) so recovery replays the flips in log order.
    """
    return {
        "op": "state",
        "table": table_name,
        "attr_id": state.attr_id,
        "count": state.count,
        "materialized": state.materialized,
        "dirty": state.dirty,
        "physical_name": state.physical_name,
        "cursor": state.cursor,
    }


@dataclass
class TableCatalog:
    """All catalog state for one Sinew table."""

    table_name: str
    n_documents: int = 0
    columns: dict[int, ColumnState] = field(default_factory=dict)

    def state(self, attr_id: int) -> ColumnState:
        if attr_id not in self.columns:
            self.columns[attr_id] = ColumnState(attr_id)
        return self.columns[attr_id]

    def dirty_columns(self) -> list[ColumnState]:
        return [state for state in self.columns.values() if state.dirty]

    def materialized_columns(self) -> list[ColumnState]:
        return [state for state in self.columns.values() if state.materialized]


class SinewCatalog:
    """Global dictionary + per-table catalogs + the loader latch."""

    def __init__(self):
        self._attributes: dict[tuple[str, SqlType], Attribute] = {}
        self._by_id: dict[int, Attribute] = {}
        self._by_name: dict[str, list[Attribute]] = {}
        self._next_id = 1
        self.tables: dict[str, TableCatalog] = {}
        self._latch = threading.Lock()
        self.latch_stats = LatchStats()
        #: owner label while the latch is held (status/debugging surface)
        self.latch_owner: str | None = None
        #: bumped on every materialization direction flip; queries register
        #: the epoch they were planned under (see :meth:`query_scope`)
        self.schema_epoch = 0
        #: bumped on anything that can change a *rewritten* query without
        #: being a direction flip: loads (new attributes / occurrence
        #: counts), logical UPDATE/DELETE, collection DDL, and the
        #: materializer's finish path (which may drop a physical column).
        #: Cached plans validate against :meth:`plan_token`, which folds
        #: both epochs together.
        self.data_epoch = 0
        self._active_queries: dict[int, int] = {}
        self._active_lock = TrackedLock("catalog.active")
        self._next_query_token = 0

    # ------------------------------------------------------------------
    # global attribute dictionary
    # ------------------------------------------------------------------

    def attribute_id(self, key_name: str, key_type: SqlType) -> int:
        """Get-or-create the id of an attribute.

        This is the loader's hot path: "the cost of adding a new attribute
        to the schema is just the cost to insert the new attribute into the
        catalog during serialization the first time it appears".
        """
        key = (key_name, key_type)
        attribute = self._attributes.get(key)
        if attribute is None:
            attribute = Attribute(self._next_id, key_name, key_type)
            self._next_id += 1
            self._attributes[key] = attribute
            self._by_id[attribute.attr_id] = attribute
            self._by_name.setdefault(key_name, []).append(attribute)
        return attribute.attr_id

    def ensure_attribute(self, attr_id: int, key_name: str, key_type: SqlType) -> None:
        """Install an attribute under a *forced* id (WAL/checkpoint replay).

        Serialized documents store attribute ids, so recovery must rebuild
        the dictionary with the exact ids the log recorded -- a drifted id
        would silently rebind every stored key.  Raises on a conflicting
        existing binding.
        """
        existing = self._by_id.get(attr_id)
        if existing is not None:
            if (existing.key_name, existing.key_type) != (key_name, key_type):
                raise CatalogError(
                    f"attribute id {attr_id} is already bound to "
                    f"{existing.key_name!r} ({existing.key_type}), cannot "
                    f"rebind to {key_name!r} ({key_type})"
                )
            return
        attribute = Attribute(attr_id, key_name, key_type)
        self._attributes[(key_name, key_type)] = attribute
        self._by_id[attr_id] = attribute
        self._by_name.setdefault(key_name, []).append(attribute)
        if attr_id >= self._next_id:
            self._next_id = attr_id + 1

    def lookup_id(self, key_name: str, key_type: SqlType) -> int | None:
        """Id of an existing attribute, or None (read-only lookup)."""
        attribute = self._attributes.get((key_name, key_type))
        return attribute.attr_id if attribute else None

    def attribute(self, attr_id: int) -> Attribute:
        if attr_id not in self._by_id:
            raise CatalogError(f"unknown attribute id: {attr_id}")
        return self._by_id[attr_id]

    def type_of(self, attr_id: int) -> SqlType:
        return self.attribute(attr_id).key_type

    def attributes_named(self, key_name: str) -> list[Attribute]:
        """Every attribute sharing a key name (multi-typed keys)."""
        return list(self._by_name.get(key_name, ()))

    def known_key(self, key_name: str) -> bool:
        return key_name in self._by_name

    def all_attributes(self) -> Iterator[Attribute]:
        return iter(self._by_id.values())

    def __len__(self) -> int:
        return len(self._by_id)

    # ------------------------------------------------------------------
    # per-table catalogs
    # ------------------------------------------------------------------

    def table(self, table_name: str) -> TableCatalog:
        if table_name not in self.tables:
            self.tables[table_name] = TableCatalog(table_name)
        return self.tables[table_name]

    def record_occurrence(self, table_name: str, attr_id: int, count: int = 1) -> None:
        self.table(table_name).state(attr_id).count += count

    def logical_columns(self, table_name: str) -> list[tuple[str, SqlType, str]]:
        """The universal-relation view of a table.

        Returns ``(key_name, type, storage)`` triples where storage is
        ``physical``, ``dirty`` or ``virtual`` -- what the user sees when
        inspecting the evolving logical schema.
        """
        table = self.table(table_name)
        out: list[tuple[str, SqlType, str]] = []
        for attr_id, state in sorted(table.columns.items()):
            attribute = self.attribute(attr_id)
            if state.materialized and not state.dirty:
                storage = "physical"
            elif state.dirty:
                storage = "dirty"
            else:
                storage = "virtual"
            out.append((attribute.key_name, attribute.key_type, storage))
        return out

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Checkpoint image of the dictionary + every per-table catalog."""
        return {
            "attributes": [
                (a.attr_id, a.key_name, a.key_type.value)
                for a in self._by_id.values()
            ],
            "next_id": self._next_id,
            "tables": {
                name: {
                    "n_documents": table.n_documents,
                    "columns": [
                        (
                            s.attr_id,
                            s.count,
                            s.materialized,
                            s.dirty,
                            s.physical_name,
                            s.cursor,
                            s.access_count,
                        )
                        for s in table.columns.values()
                    ],
                }
                for name, table in self.tables.items()
            },
        }

    def restore_state(self, state: dict) -> None:
        """Rebuild a fresh catalog from a checkpoint image."""
        for attr_id, key_name, type_value in state["attributes"]:
            self.ensure_attribute(attr_id, key_name, SqlType(type_value))
        self._next_id = max(self._next_id, state["next_id"])
        for name, table_state in state["tables"].items():
            table = self.table(name)
            table.n_documents = table_state["n_documents"]
            for (
                attr_id,
                count,
                materialized,
                dirty,
                physical_name,
                cursor,
                access_count,
            ) in table_state["columns"]:
                table.columns[attr_id] = ColumnState(
                    attr_id,
                    count=count,
                    materialized=materialized,
                    dirty=dirty,
                    physical_name=physical_name,
                    cursor=cursor,
                    access_count=access_count,
                )

    # ------------------------------------------------------------------
    # loader / materializer latch
    # ------------------------------------------------------------------

    @contextmanager
    def exclusive_latch(
        self,
        owner: str,
        *,
        blocking: bool = True,
        timeout: float = DEFAULT_LATCH_TIMEOUT,
    ):
        """Mutual exclusion between the loader and the materializer.

        By default acquisition **waits** (bounded by ``timeout`` seconds)
        when the other of loader/materializer holds the latch -- the paper's
        concurrent-but-mutually-exclusive protocol.  ``blocking=False``
        keeps the old fail-fast mode (raise immediately on contention),
        which tests use to assert the exclusion itself.

        Raises :class:`ConcurrencyError` on contention (non-blocking) or on
        timeout (blocking); the latch is *always* released on exception
        unwind inside the body, so a crash while holding it can never wedge
        the system.
        """
        tracker = latch_tracker()
        if tracker is not None:
            # Report intent before the attempt so ordering is validated
            # even when the fast path succeeds without contention.
            tracker.before_acquire("catalog", blocking=blocking)
        acquired = self._latch.acquire(blocking=False)
        if not acquired:
            if not blocking:
                self.latch_stats.contentions += 1
                raise ConcurrencyError(
                    f"catalog latch is held by {self.latch_owner or 'unknown'}; "
                    f"{owner} must wait for the other of loader/materializer "
                    "to finish"
                )
            self.latch_stats.waits += 1
            started = time.monotonic()
            acquired = self._latch.acquire(timeout=timeout)
            self.latch_stats.wait_seconds += time.monotonic() - started
            if not acquired:
                self.latch_stats.timeouts += 1
                raise ConcurrencyError(
                    f"{owner} timed out after {timeout:.3f}s waiting for the "
                    f"catalog latch (held by {self.latch_owner or 'unknown'})"
                )
        try:
            self.latch_stats.acquisitions += 1
            self.latch_owner = owner
            if tracker is not None:
                tracker.after_acquire("catalog")
            yield
        finally:
            self.latch_owner = None
            self._latch.release()
            if tracker is not None:
                tracker.released("catalog")

    @requires_latch("catalog")
    def stamp_flip(self, state: ColumnState) -> None:
        """Reset a column's migration cursor and stamp its flip epoch.

        The shared first half of every materialization direction flip:
        the caller holds the exclusive latch, calls this, then writes the
        flags (``dirty`` before ``materialized`` -- rule SNW402) and logs
        the catalog record.
        """
        state.cursor = 0
        state.flip_epoch = self.bump_schema_epoch()

    # ------------------------------------------------------------------
    # schema epochs (query-vs-materializer drain barrier)
    # ------------------------------------------------------------------

    def bump_schema_epoch(self) -> int:
        """Record a materialization direction flip; returns the new epoch.

        Callers flip the catalog flags under :meth:`exclusive_latch` and
        stamp the column's :attr:`ColumnState.flip_epoch` with the result.
        """
        with self._active_lock:
            self.schema_epoch += 1
            return self.schema_epoch

    def bump_data_epoch(self) -> int:
        """Record a non-flip catalog change that can stale cached plans."""
        with self._active_lock:
            self.data_epoch += 1
            return self.data_epoch

    def plan_token(self) -> tuple[int, int]:
        """The plan-cache validity token: ``(schema_epoch, data_epoch)``.

        A cached rewritten plan is valid exactly while this token matches
        the one stamped at prepare time: the rewrite bakes in the catalog
        flags (bare read / COALESCE bridge / pure extraction), the
        attribute dictionary, and the occurrence counts the analyzer used
        for provably-NULL pruning -- any of those moving must force a
        re-prepare (DESIGN.md section 12).
        """
        with self._active_lock:
            return (self.schema_epoch, self.data_epoch)

    @contextmanager
    def query_scope(self):
        """Register an in-flight query at its plan-time schema epoch.

        A query's rewritten plan bakes in the catalog flags it observed
        (bare physical read, COALESCE bridge, or pure extraction).  The
        materializer consults :meth:`oldest_active_epoch` and defers row
        moves for any column whose direction flipped *after* some active
        query was planned -- that query's plan cannot see the destination
        side, so moving a value mid-scan would make it vanish.
        """
        with self._active_lock:
            token = self._next_query_token
            self._next_query_token += 1
            self._active_queries[token] = self.schema_epoch
        try:
            yield
        finally:
            with self._active_lock:
                self._active_queries.pop(token, None)

    def oldest_active_epoch(self) -> int | None:
        """Epoch of the oldest in-flight query, or None when idle."""
        with self._active_lock:
            return min(self._active_queries.values(), default=None)

    # ------------------------------------------------------------------
    # reflection into the RDBMS (introspection tables)
    # ------------------------------------------------------------------

    def sync_to_rdbms(self, db) -> None:
        """Materialise the catalog as ordinary relations, as Figure 4 shows.

        Creates/refreshes ``_sinew_attributes`` (the global dictionary) and
        one ``_sinew_catalog_<table>`` relation per Sinew table so users can
        inspect the catalog with plain SQL.
        """
        from ..rdbms.types import SqlType as T

        if db.has_table("_sinew_attributes"):
            db.truncate_table("_sinew_attributes")
        else:
            db.create_table(
                "_sinew_attributes",
                [("_id", T.INTEGER), ("key_name", T.TEXT), ("key_type", T.TEXT)],
            )
        db.insert_rows(
            "_sinew_attributes",
            [
                (a.attr_id, a.key_name, a.key_type.value)
                for a in self.all_attributes()
            ],
        )
        for table_name, table in self.tables.items():
            reflected = f"_sinew_catalog_{table_name}"
            if db.has_table(reflected):
                db.truncate_table(reflected)
            else:
                db.create_table(
                    reflected,
                    [
                        ("_id", T.INTEGER),
                        ("count", T.INTEGER),
                        ("materialized", T.BOOLEAN),
                        ("dirty", T.BOOLEAN),
                        ("cursor", T.INTEGER),
                    ],
                )
            db.insert_rows(
                reflected,
                [
                    (
                        state.attr_id,
                        state.count,
                        state.materialized,
                        state.dirty,
                        state.cursor,
                    )
                    for state in table.columns.values()
                ],
            )
