"""Per-query decode cache for reservoir extraction.

Sinew's serialization (section 4.1) makes a *single* key lookup cheap, but
a query touching k virtual columns used to re-parse the same row's document
header k times -- once per ``extract_key_*`` call -- and a dirty-column
``COALESCE`` bridge added yet another parse.  The :class:`ExtractionContext`
amortises that: one context lives for the duration of one query (installed
through the function registry's query-listener hooks) and memoises

* the parsed header (attr ids + value offsets) of every reservoir value
  seen, keyed by the *identity* of the bytes object, and
* resolved nested sub-document slices, so dotted-key navigation re-reads
  a parent chain at most once per row.

Identity keying is what makes invalidation trivial: the cache pins every
cached ``bytes`` object with a strong reference, so an ``id()`` can never
be reused while its entry is alive, and any concurrent row mutation (the
background materializer replaces the whole tuple, and serialized documents
are immutable ``bytes``) produces a *new* object that simply misses the
cache.  Stale data can therefore never be served; at worst a replaced row
costs one extra decode.  See DESIGN.md section 8.
"""

from __future__ import annotations

from ..rdbms.cost import ExtractionStats
from ..rdbms.types import SqlType
from .serializer import DecodedHeader

#: Rows are processed one at a time, so a handful of entries suffices; the
#: bound exists to keep memory flat on joins that interleave many rows.
DEFAULT_CACHE_CAPACITY = 256


class ExtractionContext:
    """Query-scoped memo of decoded headers and sub-document slices."""

    def __init__(
        self,
        stats: ExtractionStats | None = None,
        enabled: bool = True,
        capacity: int = DEFAULT_CACHE_CAPACITY,
    ):
        self.stats = stats if stats is not None else ExtractionStats()
        self.enabled = enabled
        self.capacity = max(1, capacity)
        # id(bytes) -> (the bytes object, its parsed header); the stored
        # bytes reference pins the id against reuse, and dict insertion
        # order gives FIFO eviction
        self._headers: dict[int, tuple[bytes, DecodedHeader]] = {}
        # (id(parent bytes), child attr id) -> (parent bytes, child bytes)
        self._subdocs: dict[tuple[int, int], tuple[bytes, bytes | None]] = {}

    def header(self, data: bytes) -> DecodedHeader:
        """The parsed header of ``data``, decoded at most once per object."""
        if not self.enabled:
            self.stats.header_decodes += 1
            return DecodedHeader(data)
        key = id(data)
        entry = self._headers.get(key)
        if entry is not None and entry[0] is data:
            self.stats.header_cache_hits += 1
            return entry[1]
        self.stats.header_decodes += 1
        header = DecodedHeader(data)
        if len(self._headers) >= self.capacity:
            self._headers.pop(next(iter(self._headers)))
        self._headers[key] = (data, header)
        return header

    def subdocument(self, header: DecodedHeader, parent_id: int) -> bytes | None:
        """The nested document stored under ``parent_id``, sliced once.

        Returns the *same* bytes object on repeat calls, so recursing into
        it hits the header cache by identity.
        """
        if not self.enabled:
            self.stats.subdoc_decodes += 1
            return header.extract(parent_id, SqlType.BYTEA)
        key = (id(header.data), parent_id)
        entry = self._subdocs.get(key)
        if entry is not None and entry[0] is header.data:
            self.stats.subdoc_cache_hits += 1
            return entry[1]
        self.stats.subdoc_decodes += 1
        sub_document = header.extract(parent_id, SqlType.BYTEA)
        if len(self._subdocs) >= self.capacity:
            self._subdocs.pop(next(iter(self._subdocs)))
        self._subdocs[key] = (header.data, sub_document)
        return sub_document
