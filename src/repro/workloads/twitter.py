"""A Twitter-firehose-shaped workload (paper sections 3.1.1, Table 1/2,
Appendix B).

The paper's motivating dataset is 10 million tweets from the Twitter API:
13 nullable top-level attributes expanding to ~23 flattened keys, a nested
``user`` object, optional entity collections, and ``delete`` records --
"upwards of 150 optional attributes" when fully flattened, with sparsity
"between less than 1% all the way up to 100%".

This generator reproduces that *shape* synthetically and deterministically:

* dense core fields (``id_str``, ``text``, ``retweet_count``, ``user.*``);
* ``in_reply_to_screen_name`` at ~30% density (needed by query T4);
* ``user.lang`` drawn from a skewed language distribution in which ``msa``
  is rare (query T3 filters on it);
* optional blocks (``coordinates``, ``place``, ``entities.*`` and a tail
  of rarely-set fields) at descending densities from 50% down to <1%,
  pushing the flattened attribute count past 150;
* a separate ``deletes`` stream of ``{"delete": {"status": {...}}}``
  records referencing tweet/user ids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

_LANGS = ["en"] * 55 + ["ja"] * 15 + ["es"] * 10 + ["pt"] * 8 + ["ar"] * 6 + [
    "fr",
    "tr",
    "id",
    "ko",
    "ru",
] + ["msa"]  # msa: ~1% of tweets

_WORDS = (
    "just watched the game tonight amazing win cannot believe it "
    "new post on my blog check it out link in bio coffee time "
    "monday again feeling good about this release big news coming"
).split()

#: The long tail of rarely-present optional attributes (sub-1% to 20%),
#: there to reproduce the ~150-attribute flattened schema and its sparsity.
_RARE_FIELDS = [
    ("contributors", 0.002),
    ("current_user_retweet", 0.004),
    ("filter_level", 0.2),
    ("possibly_sensitive", 0.1),
    ("scopes", 0.005),
    ("truncated", 0.15),
    ("withheld_copyright", 0.001),
    ("withheld_in_countries", 0.003),
    ("withheld_scope", 0.002),
] + [(f"experiment_{index:02d}", 0.01 + 0.002 * index) for index in range(20)]


def _mix(seed: int, record: int, salt: int) -> int:
    x = (seed * 0x9E3779B97F4A7C15 + record * 2654435761 + salt * 0x517CC1B7) & (
        2**64 - 1
    )
    x ^= x >> 33
    x = (x * 0xFF51AFD7ED558CCD) & (2**64 - 1)
    x ^= x >> 29
    return x


def _chance(seed: int, record: int, salt: int, probability: float) -> bool:
    return (_mix(seed, record, salt) % 1_000_000) < probability * 1_000_000


@dataclass
class TwitterGenerator:
    """Deterministic synthetic tweets + delete records."""

    n_tweets: int
    n_users: int | None = None
    seed: int = 7

    def __post_init__(self):
        if self.n_users is None:
            # ~1.3 tweets per user on average, like a firehose slice
            self.n_users = max(1, int(self.n_tweets * 0.75))

    # ------------------------------------------------------------------
    # tweets
    # ------------------------------------------------------------------

    def user_of(self, record: int) -> int:
        return _mix(self.seed, record, 1) % self.n_users

    def screen_name(self, user_id: int) -> str:
        return f"user_{user_id}"

    def lang_of(self, user_id: int) -> str:
        return _LANGS[_mix(self.seed, user_id, 2) % len(_LANGS)]

    def tweet(self, record: int) -> dict[str, Any]:
        user_id = self.user_of(record)
        seed = self.seed
        text = " ".join(
            _WORDS[_mix(seed, record, 10 + w) % len(_WORDS)] for w in range(8)
        )
        document: dict[str, Any] = {
            "id_str": str(500_000_000 + record),
            "text": text,
            "created_at": f"2013-08-{1 + record % 28:02d}",
            "retweet_count": int(_mix(seed, record, 3) % 1000)
            if _mix(seed, record, 4) % 10 < 9
            else int(_mix(seed, record, 5) % 100000),
            "favorite_count": int(_mix(seed, record, 6) % 500),
            "source": "web" if record % 3 else "mobile",
            "user": {
                "id": user_id,
                "id_str": str(user_id),
                "screen_name": self.screen_name(user_id),
                "lang": self.lang_of(user_id),
                "friends_count": int(_mix(seed, user_id, 7) % 5000),
                "followers_count": int(_mix(seed, user_id, 8) % 100000),
                "statuses_count": int(_mix(seed, user_id, 9) % 50000),
                "verified": _mix(seed, user_id, 11) % 100 == 0,
            },
        }
        if _chance(seed, record, 20, 0.30):
            replied_user = _mix(seed, record, 21) % self.n_users
            document["in_reply_to_screen_name"] = self.screen_name(replied_user)
            document["in_reply_to_status_id_str"] = str(
                500_000_000 + _mix(seed, record, 22) % max(1, record + 1)
            )
        if _chance(seed, record, 30, 0.5):
            document["entities"] = {
                "hashtags": [
                    f"#tag{_mix(seed, record, 31 + h) % 500}"
                    for h in range(_mix(seed, record, 32) % 3)
                ],
                "urls": [
                    f"http://t.co/{_mix(seed, record, 33):x}"[:18]
                    for _ in range(_mix(seed, record, 34) % 2)
                ],
            }
        if _chance(seed, record, 40, 0.02):
            document["coordinates"] = {
                "type": "Point",
                "lon": (_mix(seed, record, 41) % 360000) / 1000.0 - 180.0,
                "lat": (_mix(seed, record, 42) % 180000) / 1000.0 - 90.0,
            }
        if _chance(seed, record, 50, 0.05):
            document["place"] = {
                "id": f"place{_mix(seed, record, 51) % 1000}",
                "country_code": ["US", "JP", "BR", "GB", "MY"][
                    _mix(seed, record, 52) % 5
                ],
            }
        for salt, (field_name, probability) in enumerate(_RARE_FIELDS, start=60):
            if _chance(seed, record, salt, probability):
                document[field_name] = f"v{_mix(seed, record, salt + 1000) % 16}"
        return document

    def tweets(self) -> Iterator[dict[str, Any]]:
        for record in range(self.n_tweets):
            yield self.tweet(record)

    # ------------------------------------------------------------------
    # delete records
    # ------------------------------------------------------------------

    def delete_record(self, record: int) -> dict[str, Any]:
        target = _mix(self.seed, record, 90) % self.n_tweets
        return {
            "delete": {
                "status": {
                    "id_str": str(500_000_000 + target),
                    "user_id": self.user_of(target),
                }
            }
        }

    def deletes(self, n_deletes: int) -> Iterator[dict[str, Any]]:
        for record in range(n_deletes):
            yield self.delete_record(record)


#: The four analysis queries of Table 1, in this engine's SQL dialect.
TABLE1_QUERIES: dict[str, str] = {
    "T1": 'SELECT DISTINCT "user.id" FROM tweets',
    "T2": 'SELECT SUM(retweet_count) FROM tweets GROUP BY "user.id"',
    "T3": (
        'SELECT t1."user.id" FROM tweets t1, deletes d1, deletes d2 '
        'WHERE t1.id_str = d1."delete.status.id_str" '
        'AND d1."delete.status.user_id" = d2."delete.status.user_id" '
        "AND t1.\"user.lang\" = 'msa'"
    ),
    "T4": (
        'SELECT t1."user.screen_name", t2."user.screen_name" '
        "FROM tweets t1, tweets t2, tweets t3 "
        'WHERE t1."user.screen_name" = t3."user.screen_name" '
        'AND t1."user.screen_name" = t2.in_reply_to_screen_name '
        'AND t2."user.screen_name" = t3.in_reply_to_screen_name'
    ),
}

#: The attributes Table 2's "physical" condition materializes.
TABLE2_PHYSICAL_ATTRIBUTES: list[tuple[str, str]] = [
    ("id_str", "text"),
    ("retweet_count", "integer"),
    ("in_reply_to_screen_name", "text"),
    ("user.id", "integer"),
    ("user.lang", "text"),
    ("user.screen_name", "text"),
    ("user.friends_count", "integer"),
    ("delete.status.id_str", "text"),
    ("delete.status.user_id", "integer"),
]

#: Appendix B's three queries (Table 5).
APPENDIX_B_QUERIES: dict[str, str] = {
    "projection": 'SELECT "user.id" FROM tweets',
    "selection": "SELECT * FROM tweets WHERE \"user.lang\" = 'en'",
    "order_by": 'SELECT id_str FROM tweets ORDER BY "user.friends_count" DESC',
}
