"""Non-NoBench workloads: the Twitter-shaped dataset of Tables 1-2 and
Appendix B."""

from .twitter import (
    APPENDIX_B_QUERIES,
    TABLE1_QUERIES,
    TABLE2_PHYSICAL_ATTRIBUTES,
    TwitterGenerator,
)

__all__ = [
    "APPENDIX_B_QUERIES",
    "TABLE1_QUERIES",
    "TABLE2_PHYSICAL_ATTRIBUTES",
    "TwitterGenerator",
]
