"""Reproduction of *Sinew: A SQL System for Multi-Structured Data*
(Tahara, Diamond & Abadi, SIGMOD 2014).

Packages
--------
``repro.rdbms``
    A self-contained relational engine standing in for PostgreSQL.
``repro.core``
    Sinew itself: serialization format, catalog, schema analyzer, column
    materializer, loader, query rewriter, text index, and the ``SinewDB``
    facade.
``repro.baselines``
    The paper's comparison systems: a MongoDB-like document store, an
    entity-attribute-value shredder, a Postgres-JSON-style text column,
    and Avro/Protocol-Buffers-like serializers.
``repro.nobench`` / ``repro.workloads``
    The NoBench benchmark generator and queries, and the Twitter-shaped
    workload used by Tables 1-2 and Appendix B.
``repro.harness``
    Timing, cost accounting, and table formatting for the benchmark suite.
"""

__version__ = "1.0.0"
