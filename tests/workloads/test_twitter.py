"""Unit tests for the Twitter-shaped workload generator."""

from collections import Counter

import pytest

from repro.core.document import flatten
from repro.workloads.twitter import (
    APPENDIX_B_QUERIES,
    TABLE1_QUERIES,
    TABLE2_PHYSICAL_ATTRIBUTES,
    TwitterGenerator,
)

N = 3000


@pytest.fixture(scope="module")
def generator():
    return TwitterGenerator(N)


@pytest.fixture(scope="module")
def tweets(generator):
    return list(generator.tweets())


class TestShape:
    def test_deterministic(self):
        assert list(TwitterGenerator(50).tweets()) == list(TwitterGenerator(50).tweets())

    def test_core_fields_dense(self, tweets):
        for tweet in tweets[:100]:
            assert {"id_str", "text", "retweet_count", "user"} <= set(tweet)
            assert {"id", "screen_name", "lang", "friends_count"} <= set(tweet["user"])

    def test_unique_tweet_ids(self, tweets):
        assert len({t["id_str"] for t in tweets}) == N

    def test_flattened_attribute_count_past_150(self, tweets):
        keys = set()
        for tweet in tweets:
            keys.update(key for key, _v in flatten(tweet))
        # "upwards of 150 optional attributes" in the fully flattened view
        assert len(keys) >= 45  # scaled-down shape: dozens of distinct paths

    def test_reply_density_about_30_percent(self, tweets):
        n_replies = sum(1 for t in tweets if "in_reply_to_screen_name" in t)
        assert 0.2 < n_replies / N < 0.4

    def test_sparsity_spectrum(self, tweets):
        counts = Counter()
        for tweet in tweets:
            for key in tweet:
                counts[key] += 1
        densities = sorted(count / N for count in counts.values())
        assert densities[0] < 0.02  # sub-1% tail fields exist
        assert densities[-1] == 1.0  # and fully dense core fields

    def test_msa_language_rare_but_present(self, tweets):
        langs = Counter(t["user"]["lang"] for t in tweets)
        assert 0 < langs["msa"] / N < 0.05
        assert langs["en"] > langs["msa"]


class TestDeletes:
    def test_reference_real_tweets_and_users(self, generator, tweets):
        tweet_ids = {t["id_str"] for t in tweets}
        for record in generator.deletes(200):
            status = record["delete"]["status"]
            assert status["id_str"] in tweet_ids
            assert 0 <= status["user_id"] < generator.n_users


class TestQueryCatalog:
    def test_table1_queries_parse(self):
        from repro.rdbms.sql.parser import parse

        for sql in TABLE1_QUERIES.values():
            parse(sql)

    def test_appendix_b_queries_parse(self):
        from repro.rdbms.sql.parser import parse

        for sql in APPENDIX_B_QUERIES.values():
            parse(sql)

    def test_physical_attribute_list_types_resolve(self):
        from repro.rdbms.types import type_from_name

        for _key, type_name in TABLE2_PHYSICAL_ATTRIBUTES:
            type_from_name(type_name)
