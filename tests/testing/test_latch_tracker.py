"""The runtime latch-order detector (lockdep counterpart of SNW4xx).

Covers the tracker in isolation (cycle + self-deadlock detection on the
order graph), the :class:`TrackedLock` wrapper, the environment-variable
enablement path, and the wiring through the real engine latches
(``catalog``, ``catalog.active``, ``daemon.state``, ``executor.pool``).
"""

from __future__ import annotations

import threading

import pytest

from repro.core import SinewDB
from repro.latching import (
    DEBUG_LATCHES_ENV,
    TrackedLock,
    install_latch_tracker,
    latch_tracker,
)
from repro.rdbms.executor import ExecutorPool, partition_morsels
from repro.testing import (
    LatchOrderError,
    LatchOrderTracker,
    disable_latch_tracking,
    enable_latch_tracking,
)


@pytest.fixture()
def tracker():
    tracker = enable_latch_tracking()
    try:
        yield tracker
    finally:
        disable_latch_tracking()


class TestOrderGraph:
    def test_two_lock_cycle_raises(self):
        tracker = LatchOrderTracker()
        # learn the order a -> b
        tracker.before_acquire("a")
        tracker.after_acquire("a")
        tracker.before_acquire("b")
        tracker.after_acquire("b")
        tracker.released("b")
        tracker.released("a")
        # now attempt b -> a: closes the cycle, potential deadlock
        tracker.before_acquire("b")
        tracker.after_acquire("b")
        with pytest.raises(LatchOrderError, match="order inversion"):
            tracker.before_acquire("a")
        assert tracker.violations, "violation must be recorded for post-run asserts"
        assert "a -> b" in tracker.violations[0]

    def test_transitive_cycle_raises(self):
        tracker = LatchOrderTracker()
        for first, second in [("a", "b"), ("b", "c")]:
            tracker.before_acquire(first)
            tracker.after_acquire(first)
            tracker.before_acquire(second)
            tracker.after_acquire(second)
            tracker.released(second)
            tracker.released(first)
        tracker.before_acquire("c")
        tracker.after_acquire("c")
        with pytest.raises(LatchOrderError, match="a -> b -> c"):
            tracker.before_acquire("a")

    def test_consistent_order_is_clean(self):
        tracker = LatchOrderTracker()
        for _ in range(3):
            tracker.before_acquire("a")
            tracker.after_acquire("a")
            tracker.before_acquire("b")
            tracker.after_acquire("b")
            tracker.released("b")
            tracker.released("a")
        assert tracker.violations == []
        assert tracker.edges() == {"a": frozenset({"b"})}
        assert tracker.acquisitions == 6

    def test_blocking_self_reacquire_raises(self):
        tracker = LatchOrderTracker()
        tracker.before_acquire("a")
        tracker.after_acquire("a")
        with pytest.raises(LatchOrderError, match="self-deadlock"):
            tracker.before_acquire("a")

    def test_nonblocking_attempts_are_exempt(self):
        tracker = LatchOrderTracker()
        tracker.before_acquire("a")
        tracker.after_acquire("a")
        # a try-lock can fail but never deadlock
        tracker.before_acquire("a", blocking=False)
        assert tracker.violations == []

    def test_release_tolerates_untracked_latch(self):
        tracker = LatchOrderTracker()
        tracker.released("never-acquired")
        assert tracker.held() == ()


class TestTrackedLock:
    def test_opposite_order_nesting_raises(self, tracker):
        lock_a = TrackedLock("fixture.a")
        lock_b = TrackedLock("fixture.b")
        with lock_a:
            with lock_b:
                pass
        with pytest.raises(LatchOrderError):
            with lock_b:
                with lock_a:
                    pass
        # the raising acquisition never took the underlying lock
        assert not lock_a.locked()
        assert not lock_b.locked()

    def test_untracked_when_disabled(self):
        disable_latch_tracking()
        lock = TrackedLock("fixture.untracked")
        with lock:
            assert lock.locked()
        assert not lock.locked()

    def test_env_var_installs_tracker(self, monkeypatch):
        install_latch_tracker(None)
        monkeypatch.setenv(DEBUG_LATCHES_ENV, "1")
        try:
            installed = latch_tracker()
            assert isinstance(installed, LatchOrderTracker)
            assert latch_tracker() is installed
        finally:
            disable_latch_tracking()


class TestEngineWiring:
    def test_catalog_latch_and_active_lock_report(self, tracker):
        sdb = SinewDB("latch_wiring")
        sdb.create_collection("t")
        sdb.load("t", [{"k": i} for i in range(20)])
        sdb.settle("t")
        assert sdb.query("SELECT count(*) FROM t").scalar() == 20
        assert {"catalog", "catalog.active"} <= tracker.names_seen
        # the only cross-latch edge the engine may form: the flip path
        # bumps the epoch (catalog.active) while holding the big latch
        assert "catalog" not in tracker.edges().get("catalog.active", frozenset())
        assert tracker.violations == []

    def test_executor_pool_lock_reports(self, tracker):
        pool = ExecutorPool(2)
        try:
            morsels = partition_morsels(10_000, morsel_rows=1024)
            results = pool.map_morsels(lambda m: m.end_rid - m.start_rid, morsels)
            assert sum(results) == 10_000
        finally:
            pool.shutdown()
        assert "executor.pool" in tracker.names_seen
        assert tracker.violations == []

    def test_daemon_lock_reports(self, tracker):
        sdb = SinewDB("latch_daemon")
        sdb.create_collection("t")
        sdb.load("t", [{"k": i} for i in range(10)])
        sdb.daemon.start()
        try:
            sdb.daemon.kick()
            status = sdb.daemon.status()
            assert status.state in {"idle", "running", "sleeping"}
        finally:
            sdb.daemon.stop()
        assert "daemon.state" in tracker.names_seen
        assert tracker.violations == []

    def test_contended_loader_vs_materializer_is_clean(self, tracker):
        sdb = SinewDB("latch_contend")
        sdb.create_collection("t")
        sdb.load("t", [{"k": i, "v": f"x{i}"} for i in range(50)])
        sdb.settle("t")
        errors: list[BaseException] = []

        def loader_thread():
            try:
                for _ in range(5):
                    sdb.load("t", [{"k": 1, "v": "y"}])
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def materializer_thread():
            try:
                for _ in range(5):
                    sdb.materializer_step("t", 50)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=loader_thread),
            threading.Thread(target=materializer_thread),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert tracker.violations == []
        assert tracker.acquisitions > 0
