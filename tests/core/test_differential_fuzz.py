"""Differential fuzzing: SinewDB vs. the Postgres-JSON baseline.

A seeded corpus of random documents is loaded into four stores -- the
pgjson baseline plus three Sinew layouts (all-virtual, fully materialized,
and dirty mid-materialization) -- and random predicates are executed
against all four.  Whatever the physical layout, the answer multiset must
be identical: column storage, the COALESCE rewrite for dirty columns, and
the serialized reservoir are pure optimizations (paper section 3.1).

Runs in the stress lane (``pytest -m slow``).
"""

import random

import pytest

pytest.importorskip("hypothesis")

from hypothesis import example, given, settings, strategies as st

from repro.baselines.pgjson import PgJsonStore
from repro.core import SinewDB
from repro.rdbms.types import SqlType

pytestmark = pytest.mark.slow

# ---------------------------------------------------------------------------
# the document corpus: fixed key pool, stable types, seeded randomness
# ---------------------------------------------------------------------------

TEXT_POOL = ["alpha", "beta", "gamma", "delta"]


def _make_doc(rng):
    doc = {}
    if rng.random() < 0.9:
        doc["a"] = rng.randint(0, 50)
    if rng.random() < 0.7:
        doc["s"] = rng.choice(TEXT_POOL)
    if rng.random() < 0.6:
        doc["flag"] = rng.random() < 0.5
    if rng.random() < 0.5:
        doc["c"] = round(rng.uniform(-5.0, 5.0), 3)
    if rng.random() < 0.5:
        doc["nested"] = {"k": rng.randint(0, 20)}
    return doc


_RNG = random.Random(20260806)
DOCS = [_make_doc(_RNG) for _ in range(120)]


@pytest.fixture(scope="module")
def stores():
    pg = PgJsonStore()
    pg.create_collection("t")
    pg.load("t", DOCS)

    virtual = SinewDB("fuzz_virtual")
    virtual.create_collection("t")
    virtual.load("t", DOCS)

    settled = SinewDB("fuzz_settled")
    settled.create_collection("t")
    settled.load("t", DOCS)
    settled.materialize("t", "a", SqlType.INTEGER)
    settled.materialize("t", "s", SqlType.TEXT)
    settled.materialize("t", "flag", SqlType.BOOLEAN)
    settled.materialize("t", "nested.k", SqlType.INTEGER)
    settled.run_materializer("t")

    dirty = SinewDB("fuzz_dirty")
    dirty.create_collection("t")
    dirty.load("t", DOCS)
    dirty.materialize("t", "a", SqlType.INTEGER)
    dirty.materialize("t", "s", SqlType.TEXT)
    dirty.materializer_step("t", max_rows=len(DOCS) // 3)  # mid-move

    return pg, {"virtual": virtual, "settled": settled, "dirty": dirty}


# ---------------------------------------------------------------------------
# the predicate generator: (sinew_sql, pgjson_sql) pairs
# ---------------------------------------------------------------------------

_COMPARISONS = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])


@st.composite
def predicates(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        kind = draw(
            st.sampled_from(["int", "real", "text", "flag", "nested", "null"])
        )
        if kind == "int":
            op = draw(_COMPARISONS)
            value = draw(st.integers(min_value=-5, max_value=55))
            return f"a {op} {value}", f"json_get_num(data, 'a') {op} {value}"
        if kind == "real":
            op = draw(_COMPARISONS)
            value = round(draw(st.floats(min_value=-6, max_value=6)), 2)
            return f"c {op} {value}", f"json_get_num(data, 'c') {op} {value}"
        if kind == "text":
            value = draw(st.sampled_from(TEXT_POOL + ["mauve"]))
            op = draw(st.sampled_from(["=", "<>"]))
            return f"s {op} '{value}'", f"json_get_text(data, 's') {op} '{value}'"
        if kind == "flag":
            literal = draw(st.sampled_from(["true", "false"]))
            return (
                f"flag = {literal}",
                f"json_get_bool(data, 'flag') = {literal}",
            )
        if kind == "nested":
            op = draw(_COMPARISONS)
            value = draw(st.integers(min_value=-2, max_value=22))
            return (
                f'"nested.k" {op} {value}',
                f"json_get_num(data, 'nested.k') {op} {value}",
            )
        # null / existence checks (absence == SQL NULL on both engines)
        key = draw(st.sampled_from(["a", "s", "c", "flag"]))
        if draw(st.booleans()):
            return f"{key} IS NULL", f"NOT json_exists(data, '{key}')"
        return f"{key} IS NOT NULL", f"json_exists(data, '{key}')"
    left = draw(predicates(depth=depth - 1))
    combinator = draw(st.sampled_from(["AND", "OR", "NOT"]))
    if combinator == "NOT":
        return f"NOT ({left[0]})", f"NOT ({left[1]})"
    right = draw(predicates(depth=depth - 1))
    return (
        f"({left[0]}) {combinator} ({right[0]})",
        f"({left[1]}) {combinator} ({right[1]})",
    )


def _normalize(rows):
    """Numbers compare as floats (json_get_num always yields REAL)."""
    out = []
    for row in rows:
        out.append(
            tuple(
                float(cell)
                if isinstance(cell, (int, float)) and not isinstance(cell, bool)
                else cell
                for cell in row
            )
        )
    return sorted(out, key=repr)


@given(predicate=predicates())
@example(predicate=("a > 10", "json_get_num(data, 'a') > 10"))
@example(predicate=("s IS NULL", "NOT json_exists(data, 's')"))
@example(
    predicate=(
        '("nested.k" >= 5) AND (flag = true)',
        "(json_get_num(data, 'nested.k') >= 5) AND (json_get_bool(data, 'flag') = true)",
    )
)
@settings(max_examples=120, deadline=None)
def test_all_layouts_agree_with_pgjson(stores, predicate):
    sinew_pred, pg_pred = predicate
    pg, layouts = stores
    expected = _normalize(
        pg.query(
            "SELECT json_get_num(data, 'a'), json_get_text(data, 's') "
            f"FROM t WHERE {pg_pred}"
        ).rows
    )
    for layout, sdb in layouts.items():
        got = _normalize(
            sdb.query(f"SELECT a, s FROM t WHERE {sinew_pred}").rows
        )
        assert got == expected, (
            f"layout {layout!r} diverged from pgjson on: {sinew_pred}"
        )


@pytest.mark.parametrize("key", ["a", "s", "c", "flag", "nested", "nested.k", "missing"])
def test_extract_key_any_matches_pgjson_text(stores, key):
    """The untyped downcast renders every type exactly like json_get_text.

    Virtual layout only: the settled/dirty layouts have moved some keys
    out of the reservoir, so raw ``data`` extraction is not comparable
    there by design.
    """
    import json as json_module

    pg, layouts = stores
    expected = pg.query(
        f"SELECT json_get_text(data, '{key}') FROM t ORDER BY id"
    ).column(0)
    got = layouts["virtual"].db.execute(
        f"SELECT extract_key_any(data, '{key}') FROM t ORDER BY _id"
    ).column(0)
    assert len(got) == len(expected)
    for ours, theirs in zip(got, expected):
        if theirs is not None and theirs.lstrip()[:1] in ("{", "["):
            # containers: canonical key order may differ, values must not
            assert json_module.loads(ours) == json_module.loads(theirs)
        else:
            assert ours == theirs, f"key {key!r}: {ours!r} != {theirs!r}"


def test_corpus_is_nontrivial():
    """Guard: the seeded corpus exercises presence *and* absence."""
    assert any("a" not in d for d in DOCS)
    assert any("nested" in d for d in DOCS)
    assert any("flag" in d and d["flag"] for d in DOCS)
    assert 100 <= len(DOCS) <= 200
